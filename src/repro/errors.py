"""Exception hierarchy for the framework.

All library-raised exceptions derive from :class:`GraphAnalyticsError` so
callers can catch framework failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class GraphAnalyticsError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class GraphFormatError(GraphAnalyticsError):
    """A graph representation is structurally invalid (bad offsets, out of
    range column indices, mismatched array lengths, ...)."""


class GraphViewError(GraphAnalyticsError):
    """A graph view (CSR/CSC/COO/...) required by an operation is missing
    and cannot be derived, or an unknown view name was requested."""


class FrontierError(GraphAnalyticsError):
    """Invalid frontier operation (e.g. vertex out of range, popping from a
    drained queue frontier, mixing vertex and edge frontiers)."""


class ExecutionPolicyError(GraphAnalyticsError):
    """An operator was invoked with an execution policy it does not
    support, or an unknown policy object."""


class ConvergenceError(GraphAnalyticsError):
    """An iterative loop failed to converge within its iteration budget."""


class PartitionError(GraphAnalyticsError):
    """Invalid partitioning request or malformed partition assignment."""


class CommunicationError(GraphAnalyticsError):
    """Misuse of the message-passing substrate (unknown destination rank,
    sending after channels are closed, ...)."""


class GraphIOError(GraphAnalyticsError):
    """A graph file could not be parsed."""


class CancellationError(GraphAnalyticsError):
    """Base class for cooperative cancellation (deadline or explicit).

    Deliberately *not* a :class:`ResilienceError`: cancellation is a
    caller decision, never a transient fault, so no retry policy ever
    considers it retryable.
    """


class DeadlineExceeded(CancellationError):
    """A run crossed its absolute monotonic deadline.

    Raised at cooperative checkpoints (superstep boundaries, scheduler
    wait loops, retry attempts) — never mid-mutation, so pools,
    workspaces, and schedulers are reusable afterwards.
    """


class QueryCancelled(CancellationError):
    """A run was explicitly cancelled via its
    :class:`~repro.resilience.deadline.CancelToken` (server shutdown,
    client disconnect, operator action)."""


class ServiceError(GraphAnalyticsError):
    """Base class for the query service (:mod:`repro.service`)."""


class ProtocolError(ServiceError):
    """A malformed service request or response (unknown op, missing
    fields, oversized or non-JSON frame)."""


class CatalogError(ServiceError):
    """A graph catalog entry is unknown, unloadable, or conflicting."""


class AdmissionRejected(ServiceError):
    """The admission controller shed a query (queue full, tenant over
    its concurrency cap, or the wait for a slot outlived the deadline).

    The 429-equivalent: the query never started, so retrying later is
    always safe.  ``reason`` is one of ``"queue_full"``,
    ``"tenant_cap"``, or ``"timeout"``.
    """

    def __init__(self, message: str, *, reason: str = "queue_full") -> None:
        super().__init__(message)
        self.reason = reason


class BreakerOpen(ServiceError):
    """The circuit breaker for a (graph, algorithm) pair is open: recent
    executions kept failing, so new ones are rejected until the cooldown
    elapses and a half-open probe succeeds."""


class ResilienceError(GraphAnalyticsError):
    """Base class for the fault-tolerance subsystem (:mod:`repro.resilience`)."""


class FaultInjected(ResilienceError):
    """A fault deliberately injected by the chaos harness.

    Retry policies treat this as transient by default, so a run under
    chaos with retries enabled recovers; a run without them fails loudly
    at exactly the injection site.
    """


class RetryExhausted(ResilienceError):
    """A retried operation failed on every permitted attempt.

    The final underlying exception is chained as ``__cause__``;
    ``attempts`` records how many were made.
    """

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class CheckpointError(ResilienceError):
    """A checkpoint could not be saved, loaded, or restored (missing
    store, shape/dtype mismatch against the live arrays, ...)."""


class StallDetected(ResilienceError):
    """The progress watchdog saw outstanding work but no completions for
    longer than the configured stall timeout."""


class AggregateWorkerError(GraphAnalyticsError):
    """Several workers failed in one parallel run.

    Exception-group style: ``failures`` holds ``(worker_id, exception)``
    pairs for every worker that died, so multi-worker failures are
    diagnosable instead of only the first being reported.
    """

    def __init__(self, failures) -> None:
        self.failures = list(failures)
        parts = "; ".join(
            f"worker {wid}: {type(exc).__name__}: {exc}"
            for wid, exc in self.failures
        )
        super().__init__(
            f"{len(self.failures)} workers failed: {parts}"
        )
