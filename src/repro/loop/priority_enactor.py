"""Priority-ordered enactor: the loop structure for bucketed frontiers.

Completes the enactor family (BSP :class:`~repro.loop.enactor.Enactor`,
asynchronous :class:`~repro.loop.async_enactor.AsyncEnactor`): drives a
:class:`~repro.frontier.bucketed.BucketedFrontier` bucket by bucket,
running the algorithm's step over the current bucket to a fixed point
before rotating to the next — the loop skeleton delta-stepping and
near-far share, extracted so new priority algorithms only supply their
relaxation step.

The step contract extends the BSP one with priorities: ``step`` receives
the current bucket's vertex ids and returns ``(ids, priorities)`` of
the elements it re-activated; the enactor re-buckets them (same-bucket
improvements re-enter the inner fixed point, later buckets wait).

Like the BSP enactor, this loop is a recovery seam: under a
:class:`~repro.resilience.ResiliencePolicy` each step call runs beneath
chaos fault points and retry, and the full bucket table is checkpointed
every ``checkpoint_every`` drained buckets so
:meth:`PriorityEnactor.resume_from_checkpoint` restarts mid-run.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import CheckpointError, ConvergenceError
from repro.frontier.bucketed import BucketedFrontier
from repro.graph.graph import Graph
from repro.observability.probe import active_probe
from repro.resilience.chaos import active_injector
from repro.resilience.deadline import active_token
from repro.resilience.checkpoint import (
    KIND_PRIORITY,
    Checkpoint,
    snapshot_arrays,
)
from repro.resilience.policy import ResiliencePolicy
from repro.utils.counters import IterationStats, RunStats

#: ``step(bucket_ids, bucket_index) -> (activated_ids, activated_priorities)``
PriorityStepFn = Callable[[np.ndarray, int], Tuple[np.ndarray, np.ndarray]]


class PriorityEnactor:
    """Runs a priority step function bucket by bucket to exhaustion."""

    def __init__(
        self,
        graph: Graph,
        *,
        max_buckets: int = 1_000_000,
        collect_stats: bool = True,
    ) -> None:
        if max_buckets < 0:
            raise ValueError(f"max_buckets must be >= 0, got {max_buckets}")
        self.graph = graph
        self.max_buckets = max_buckets
        self.collect_stats = collect_stats

    def run(
        self,
        frontier: BucketedFrontier,
        step: PriorityStepFn,
        *,
        resilience: Optional[ResiliencePolicy] = None,
        state_arrays: Optional[Dict[str, np.ndarray]] = None,
        _start_buckets: int = 0,
    ) -> RunStats:
        """Drain every bucket; return per-bucket stats.

        Raises :class:`~repro.errors.ConvergenceError` past
        ``max_buckets`` processed buckets (a diverging priority loop —
        e.g. a non-monotone step that keeps lowering priorities — fails
        loudly).  ``resilience``/``state_arrays`` enable per-step retry
        and bucket-granular checkpointing, as in the BSP enactor.
        """
        stats = RunStats()
        probe = active_probe()
        degrees = self.graph.csr().degrees() if self.collect_stats else None
        injector = resilience.active_chaos() if resilience else None
        checkpointing = (
            resilience is not None
            and resilience.checkpoint_every > 0
            and resilience.store is not None
            and state_arrays is not None
        )
        token = active_token()
        buckets_done = _start_buckets
        while not frontier.is_exhausted():
            if token is not None:
                token.check(f"bucket:{frontier.current_bucket}")
            if buckets_done >= self.max_buckets:
                raise ConvergenceError(
                    f"priority loop exceeded max_buckets={self.max_buckets}"
                )
            t0 = time.perf_counter()
            edges_touched = 0
            processed = 0
            # Inner fixed point over the current bucket: the step may
            # re-activate elements back into it.
            with probe.span("bucket", bucket=frontier.current_bucket) as span:
                while frontier.size():
                    # The inner fixed point can dominate a run (all-light
                    # delta-stepping), so it is a checkpoint too.
                    if token is not None:
                        token.check(f"bucket:{frontier.current_bucket}")
                    ids = frontier.take_current()
                    processed += ids.shape[0]
                    if self.collect_stats and ids.size:
                        edges_touched += int(degrees[ids].sum())
                    activated_ids, activated_priorities = self._run_step(
                        step, ids, frontier.current_bucket, injector, resilience
                    )
                    if len(activated_ids):
                        frontier.add_with_priorities(
                            activated_ids, activated_priorities
                        )
                span.set("frontier_size", processed)
                span.set("edges_expanded", edges_touched)
                # Superstep summary hook (see the BSP enactor): what the
                # drained bucket re-activated into later buckets.
                span.set("output_frontier_size", int(frontier.total_size()))
            if self.collect_stats:
                stats.record(
                    IterationStats(
                        iteration=frontier.current_bucket,
                        frontier_size=processed,
                        edges_touched=edges_touched,
                        seconds=time.perf_counter() - t0,
                    )
                )
            buckets_done += 1
            if (
                checkpointing
                and buckets_done % resilience.checkpoint_every == 0
            ):
                self._save_checkpoint(
                    frontier, buckets_done, resilience, state_arrays
                )
            if not frontier.advance_bucket():
                break
        stats.converged = True
        if probe.enabled and self.collect_stats:
            probe.metrics.record_run(stats)
        return stats

    def resume_from_checkpoint(
        self,
        step: PriorityStepFn,
        *,
        resilience: ResiliencePolicy,
        state_arrays: Dict[str, np.ndarray],
    ) -> RunStats:
        """Continue a crashed priority run from its last checkpoint.

        Restores value arrays in place and rebuilds the full bucket
        table (current bucket index included) from the snapshot.
        """
        if resilience.store is None:
            raise CheckpointError(
                "resume requested but the resilience policy has no store"
            )
        ckpt = resilience.store.latest()
        if ckpt is None:
            raise CheckpointError("resume requested but no checkpoint saved")
        if ckpt.kind != KIND_PRIORITY:
            raise CheckpointError(
                f"expected a {KIND_PRIORITY!r} checkpoint, got {ckpt.kind!r}"
            )
        ckpt.restore_arrays(state_arrays)
        frontier = BucketedFrontier(ckpt.capacity, float(ckpt.extra["delta"]))
        frontier.current_bucket = int(ckpt.extra["current_bucket"])
        for bucket, ids in ckpt.extra["buckets"].items():
            frontier._buckets[int(bucket)] = list(ids)
        resilience.counters.increment("checkpoints_restored")
        return self.run(
            frontier,
            step,
            resilience=resilience,
            state_arrays=state_arrays,
            _start_buckets=ckpt.superstep,
        )

    # -- resilience plumbing -----------------------------------------------------------

    def _run_step(
        self,
        step: PriorityStepFn,
        ids: np.ndarray,
        bucket_index: int,
        injector,
        resilience: Optional[ResiliencePolicy],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One relaxation call under fault points and retry; ``ids`` are
        already drained from the frontier, so every retry re-runs over
        the identical batch (faults inject before any mutation).  An
        ambient injector without a policy aborts the run (unprotected
        baseline)."""
        if resilience is None:
            ambient = active_injector()
            if ambient is not None:
                ambient.maybe_fail_task(f"bucket:{bucket_index}")
            return step(ids, bucket_index)

        def attempt():
            if injector is not None:
                injector.maybe_fail_task(f"bucket:{bucket_index}")
            return step(ids, bucket_index)

        return resilience.execute(attempt, site=f"bucket:{bucket_index}")

    def _save_checkpoint(
        self,
        frontier: BucketedFrontier,
        buckets_done: int,
        resilience: ResiliencePolicy,
        state_arrays: Dict[str, np.ndarray],
    ) -> None:
        with active_probe().span("checkpoint:save", superstep=buckets_done):
            self._save_checkpoint_body(
                frontier, buckets_done, resilience, state_arrays
            )

    def _save_checkpoint_body(
        self,
        frontier: BucketedFrontier,
        buckets_done: int,
        resilience: ResiliencePolicy,
        state_arrays: Dict[str, np.ndarray],
    ) -> None:
        previous = resilience.store.latest()
        # The whole bucket table goes into `extra` (JSON-friendly: string
        # bucket keys, plain int lists) — the current bucket is drained at
        # this point, so pending work lives entirely in later buckets.
        buckets = {
            str(b): [int(v) for v in ids]
            for b, ids in frontier._buckets.items()
            if ids
        }
        resilience.store.save(
            Checkpoint(
                superstep=buckets_done,
                frontier_indices=frontier.to_indices(),
                capacity=frontier.capacity,
                arrays=snapshot_arrays(state_arrays, previous),
                kind=KIND_PRIORITY,
                extra={
                    "current_bucket": int(frontier.current_bucket),
                    "delta": float(frontier.delta),
                    "buckets": buckets,
                },
            )
        )
        resilience.counters.increment("checkpoints_saved")


def sssp_bucketed(
    graph: Graph,
    source: int,
    *,
    delta: Optional[float] = None,
    policy=None,
    resilience: Optional[ResiliencePolicy] = None,
):
    """SSSP on the priority enactor — light-edge delta-stepping expressed
    as ~20 lines of step function (the refactoring payoff the enactor
    exists for).  All edges are treated as "light" (relaxed inside the
    bucket fixed point), which is correct for any delta and simply does
    a little extra work versus the specialized light/heavy split in
    :func:`repro.algorithms.sssp.sssp_delta_stepping`.
    """
    from repro.algorithms.sssp import SSSPResult
    from repro.execution.atomics import bulk_min_relax
    from repro.types import INF, VALUE_DTYPE
    from repro.utils.validation import check_vertex_in_range

    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    csr = graph.csr()
    if delta is None:
        delta = float(csr.values.mean()) if graph.n_edges else 1.0
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")

    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[source] = 0.0

    def step(ids, bucket_index):
        srcs, dsts, _, weights = csr.expand_vertices(ids)
        if srcs.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        candidates = dist[srcs] + weights
        improved = bulk_min_relax(dist, dsts, candidates)
        winners = dsts[improved]
        return winners.astype(np.int64), dist[winners].astype(np.float64)

    frontier = BucketedFrontier(n, delta)
    frontier.add_with_priority(source, 0.0)
    enactor = PriorityEnactor(graph)
    stats = enactor.run(
        frontier, step, resilience=resilience, state_arrays={"dist": dist}
    )
    return SSSPResult(distances=dist, source=source, stats=stats)
