"""Priority-ordered enactor: the loop structure for bucketed frontiers.

Completes the enactor family (BSP :class:`~repro.loop.enactor.Enactor`,
asynchronous :class:`~repro.loop.async_enactor.AsyncEnactor`): drives a
:class:`~repro.frontier.bucketed.BucketedFrontier` bucket by bucket,
running the algorithm's step over the current bucket to a fixed point
before rotating to the next — the loop skeleton delta-stepping and
near-far share, extracted so new priority algorithms only supply their
relaxation step.

The step contract extends the BSP one with priorities: ``step`` receives
the current bucket's vertex ids and returns ``(ids, priorities)`` of
the elements it re-activated; the enactor re-buckets them (same-bucket
improvements re-enter the inner fixed point, later buckets wait).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError
from repro.frontier.bucketed import BucketedFrontier
from repro.graph.graph import Graph
from repro.utils.counters import IterationStats, RunStats

#: ``step(bucket_ids, bucket_index) -> (activated_ids, activated_priorities)``
PriorityStepFn = Callable[[np.ndarray, int], Tuple[np.ndarray, np.ndarray]]


class PriorityEnactor:
    """Runs a priority step function bucket by bucket to exhaustion."""

    def __init__(
        self,
        graph: Graph,
        *,
        max_buckets: int = 1_000_000,
        collect_stats: bool = True,
    ) -> None:
        if max_buckets < 0:
            raise ValueError(f"max_buckets must be >= 0, got {max_buckets}")
        self.graph = graph
        self.max_buckets = max_buckets
        self.collect_stats = collect_stats

    def run(self, frontier: BucketedFrontier, step: PriorityStepFn) -> RunStats:
        """Drain every bucket; return per-bucket stats.

        Raises :class:`~repro.errors.ConvergenceError` past
        ``max_buckets`` processed buckets (a diverging priority loop —
        e.g. a non-monotone step that keeps lowering priorities — fails
        loudly).
        """
        stats = RunStats()
        degrees = self.graph.csr().degrees() if self.collect_stats else None
        buckets_done = 0
        while not frontier.is_exhausted():
            if buckets_done >= self.max_buckets:
                raise ConvergenceError(
                    f"priority loop exceeded max_buckets={self.max_buckets}"
                )
            t0 = time.perf_counter()
            edges_touched = 0
            processed = 0
            # Inner fixed point over the current bucket: the step may
            # re-activate elements back into it.
            while frontier.size():
                ids = frontier.take_current()
                processed += ids.shape[0]
                if self.collect_stats and ids.size:
                    edges_touched += int(degrees[ids].sum())
                activated_ids, activated_priorities = step(
                    ids, frontier.current_bucket
                )
                if len(activated_ids):
                    frontier.add_with_priorities(
                        activated_ids, activated_priorities
                    )
            if self.collect_stats:
                stats.record(
                    IterationStats(
                        iteration=frontier.current_bucket,
                        frontier_size=processed,
                        edges_touched=edges_touched,
                        seconds=time.perf_counter() - t0,
                    )
                )
            buckets_done += 1
            if not frontier.advance_bucket():
                break
        stats.converged = True
        return stats


def sssp_bucketed(
    graph: Graph,
    source: int,
    *,
    delta: Optional[float] = None,
    policy=None,
):
    """SSSP on the priority enactor — light-edge delta-stepping expressed
    as ~20 lines of step function (the refactoring payoff the enactor
    exists for).  All edges are treated as "light" (relaxed inside the
    bucket fixed point), which is correct for any delta and simply does
    a little extra work versus the specialized light/heavy split in
    :func:`repro.algorithms.sssp.sssp_delta_stepping`.
    """
    from repro.algorithms.sssp import SSSPResult
    from repro.execution.atomics import bulk_min_relax
    from repro.types import INF, VALUE_DTYPE
    from repro.utils.validation import check_vertex_in_range

    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    csr = graph.csr()
    if delta is None:
        delta = float(csr.values.mean()) if graph.n_edges else 1.0
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")

    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[source] = 0.0

    def step(ids, bucket_index):
        srcs, dsts, _, weights = csr.expand_vertices(ids)
        if srcs.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        candidates = dist[srcs] + weights
        improved = bulk_min_relax(dist, dsts, candidates)
        winners = dsts[improved]
        return winners.astype(np.int64), dist[winners].astype(np.float64)

    frontier = BucketedFrontier(n, delta)
    frontier.add_with_priority(source, 0.0)
    enactor = PriorityEnactor(graph)
    stats = enactor.run(frontier, step)
    return SSSPResult(distances=dist, source=source, stats=stats)
