"""The asynchronous enactor: the barrier-free counterpart of Listing 4.

Where the BSP enactor alternates whole-frontier supersteps with a
convergence check, the asynchronous enactor has **no iterations at
all**: every active vertex is an independent task on the scheduler's
queue, a task may enqueue new tasks (its activated neighbors — this is
also exactly the message-passing reading: the queue entry *is* the
message), and the "loop" completes at quiescence.

Tasks must be *monotone* — safe under re-execution and stale reads —
which label-correcting algorithms (SSSP relaxation, BFS level-settling
with atomic min, CC label propagation) satisfy; the framework cannot
check this, so the contract is documented here and verified per
algorithm by the equivalence tests.

Monotonicity also powers the failure story: with a
:class:`~repro.resilience.ResiliencePolicy` individual tasks retry in
place, supervision restarts dead workers, and after repeated parallel
failures the enactor **degrades to sequential execution** — the same
tasks drained from a local queue on the calling thread, which by the
paper's policy-independence claim yields the same results, just slower.
"""

from __future__ import annotations

import collections
import threading
from typing import Iterable, List, Optional, Union

from repro.frontier.base import Frontier
from repro.graph.graph import Graph
from repro.execution.scheduler import AsyncScheduler, ProcessFn
from repro.observability.probe import active_probe
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.supervisor import run_with_fallback
from repro.utils.counters import IterationStats, RunStats
from repro.utils.timing import WallClock


class AsyncEnactor:
    """Runs a per-vertex process function to quiescence.

    Parameters
    ----------
    graph:
        Graph being processed.
    num_workers:
        Scheduler worker threads.
    timeout:
        Overall quiescence deadline in seconds (``None`` = unbounded);
        the safety valve replacing the BSP enactor's ``max_iterations``.
    resilience:
        Optional fault tolerance: task retry and worker supervision go
        to the scheduler; when supervision allows degradation, repeated
        parallel failures fall back to a sequential drain.
    collect_stats:
        Account tasks/edges/wall time into :attr:`last_stats` — the same
        :class:`~repro.utils.counters.RunStats` shape (and, under an
        ambient probe, the same ``loop.*`` metric names) the BSP
        enactors report, so profiles are uniform across timing models.
        The whole run is one pseudo-iteration, since asynchrony has no
        supersteps.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        num_workers: int = 4,
        timeout: Optional[float] = 120.0,
        resilience: Optional[ResiliencePolicy] = None,
        collect_stats: bool = True,
    ) -> None:
        self.graph = graph
        self.resilience = resilience
        self.scheduler = AsyncScheduler(num_workers, resilience=resilience)
        self.timeout = timeout
        self.collect_stats = collect_stats
        #: Stats of the most recent :meth:`run` (empty before any run).
        self.last_stats = RunStats()

    def run(
        self,
        initial: Union[Frontier, Iterable[int]],
        process: ProcessFn,
    ) -> int:
        """Process ``initial`` and everything it transitively activates.

        ``process(vertex, push)`` handles one active vertex and calls
        ``push(u)`` for every vertex it re-activates.  Returns the total
        number of tasks processed (≥ the number of distinct vertices
        touched, since re-activation re-processes); per-run accounting
        lands in :attr:`last_stats`.
        """
        if isinstance(initial, Frontier):
            items = [int(v) for v in initial.to_indices()]
        else:
            items = [int(v) for v in initial]

        probe = active_probe()
        counted = process
        edges = [0]
        if self.collect_stats:
            degrees = self.graph.csr().degrees()
            edges_lock = threading.Lock()

            def counted(item: int, push) -> None:  # noqa: F811
                process(item, push)
                d = int(degrees[item])
                with edges_lock:
                    edges[0] += d

        def parallel() -> int:
            return self.scheduler.run(
                counted, items, self.graph.n_vertices, timeout=self.timeout
            )

        def execute() -> int:
            resilience = self.resilience
            if resilience is None or resilience.supervision is None:
                return parallel()
            return run_with_fallback(
                parallel,
                lambda: self._run_sequential(items, counted),
                config=resilience.supervision,
                counters=resilience.counters,
            )

        clock = WallClock()
        with probe.span(
            "async:run",
            seed_items=len(items),
            workers=self.scheduler.num_workers,
        ) as span:
            with clock.measure():
                processed = execute()
            span.set("tasks_processed", processed)
            span.set("edges_expanded", edges[0])
        if self.collect_stats:
            stats = RunStats()
            stats.record(
                IterationStats(
                    iteration=0,
                    frontier_size=processed,
                    edges_touched=edges[0],
                    seconds=clock.elapsed,
                )
            )
            stats.converged = True
            self.last_stats = stats
            if probe.enabled:
                probe.metrics.record_run(stats)
        return processed

    def _run_sequential(self, items: List[int], process: ProcessFn) -> int:
        """Degraded mode: drain the task graph on the calling thread.

        Re-executing from the original seed items is safe because tasks
        are monotone — work already done by failed parallel attempts
        only makes the sequential pass faster.  Task retry still
        applies (chaos task faults remain survivable); worker death is
        meaningless without workers and is not consulted.
        """
        from repro.resilience.deadline import active_token

        token = active_token()
        resilience = self.resilience
        queue = collections.deque(items)
        processed = 0
        while queue:
            if token is not None and processed % 64 == 0:
                token.check("async:sequential-drain")
            item = queue.popleft()
            resilience.execute(
                lambda item=item: process(item, queue.append),
                site=f"seq-task:{item}",
            )
            processed += 1
        return processed

