"""The asynchronous enactor: the barrier-free counterpart of Listing 4.

Where the BSP enactor alternates whole-frontier supersteps with a
convergence check, the asynchronous enactor has **no iterations at
all**: every active vertex is an independent task on the scheduler's
queue, a task may enqueue new tasks (its activated neighbors — this is
also exactly the message-passing reading: the queue entry *is* the
message), and the "loop" completes at quiescence.

Tasks must be *monotone* — safe under re-execution and stale reads —
which label-correcting algorithms (SSSP relaxation, BFS level-settling
with atomic min, CC label propagation) satisfy; the framework cannot
check this, so the contract is documented here and verified per
algorithm by the equivalence tests.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from repro.frontier.base import Frontier
from repro.graph.graph import Graph
from repro.execution.scheduler import AsyncScheduler, ProcessFn


class AsyncEnactor:
    """Runs a per-vertex process function to quiescence.

    Parameters
    ----------
    graph:
        Graph being processed.
    num_workers:
        Scheduler worker threads.
    timeout:
        Overall quiescence deadline in seconds (``None`` = unbounded);
        the safety valve replacing the BSP enactor's ``max_iterations``.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        num_workers: int = 4,
        timeout: Optional[float] = 120.0,
    ) -> None:
        self.graph = graph
        self.scheduler = AsyncScheduler(num_workers)
        self.timeout = timeout

    def run(
        self,
        initial: Union[Frontier, Iterable[int]],
        process: ProcessFn,
    ) -> int:
        """Process ``initial`` and everything it transitively activates.

        ``process(vertex, push)`` handles one active vertex and calls
        ``push(u)`` for every vertex it re-activates.  Returns the total
        number of tasks processed (≥ the number of distinct vertices
        touched, since re-activation re-processes).
        """
        if isinstance(initial, Frontier):
            items = [int(v) for v in initial.to_indices()]
        else:
            items = [int(v) for v in initial]
        return self.scheduler.run(
            process, items, self.graph.n_vertices, timeout=self.timeout
        )
