"""Composable convergence conditions for iterative loops.

A condition is asked after every superstep whether the loop is done.
Algorithms combine them: SSSP/BFS converge on an empty frontier
(Listing 4's ``while (f.size() != 0)``); PageRank on a value fixed
point OR an iteration cap; Pregel programs on unanimous halt votes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.frontier.base import Frontier


@dataclass
class LoopState:
    """What a convergence condition may inspect after a superstep.

    ``context`` is an algorithm-owned scratch dict (e.g. PageRank puts
    its per-iteration delta there) so conditions stay decoupled from
    algorithm internals.
    """

    iteration: int = 0
    frontier: Optional[Frontier] = None
    context: Dict[str, object] = field(default_factory=dict)


class ConvergenceCondition(abc.ABC):
    """Predicate over :class:`LoopState`; True means "stop, converged"."""

    @abc.abstractmethod
    def __call__(self, state: LoopState) -> bool: ...

    def reset(self) -> None:
        """Clear internal memory (for conditions that track history)."""

    def __or__(self, other: "ConvergenceCondition") -> "AnyOf":
        return AnyOf([self, other])

    def __and__(self, other: "ConvergenceCondition") -> "AllOf":
        return AllOf([self, other])


class EmptyFrontier(ConvergenceCondition):
    """Converged when the frontier has no active elements — the native
    stopping rule of traversal algorithms."""

    def __call__(self, state: LoopState) -> bool:
        return state.frontier is None or state.frontier.is_empty()

    def __repr__(self) -> str:
        return "EmptyFrontier()"


class MaxIterations(ConvergenceCondition):
    """Converged after a fixed superstep budget (PageRank's classic cap)."""

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        self.limit = limit

    def __call__(self, state: LoopState) -> bool:
        return state.iteration >= self.limit

    def __repr__(self) -> str:
        return f"MaxIterations({self.limit})"


class ValuesConverged(ConvergenceCondition):
    """Converged when a value vector stops moving: fixed-point detection.

    ``get_values`` extracts the current vector from the loop state (or
    captures it from the algorithm's closure); the condition compares
    successive snapshots under the L1 or L-infinity norm.
    """

    def __init__(
        self,
        get_values: Callable[[LoopState], np.ndarray],
        *,
        tolerance: float = 1e-6,
        norm: str = "l1",
    ) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        if norm not in ("l1", "linf"):
            raise ValueError(f"norm must be 'l1' or 'linf', got {norm!r}")
        self.get_values = get_values
        self.tolerance = tolerance
        self.norm = norm
        self._previous: Optional[np.ndarray] = None

    def __call__(self, state: LoopState) -> bool:
        current = np.asarray(self.get_values(state), dtype=np.float64)
        if self._previous is None or self._previous.shape != current.shape:
            self._previous = current.copy()
            return False
        diff = np.abs(current - self._previous)
        delta = float(diff.sum() if self.norm == "l1" else diff.max(initial=0.0))
        self._previous = current.copy()
        state.context["delta"] = delta
        return delta <= self.tolerance

    def reset(self) -> None:
        self._previous = None

    def __repr__(self) -> str:
        return f"ValuesConverged(tolerance={self.tolerance}, norm={self.norm!r})"


class HaltFlag(ConvergenceCondition):
    """Converged when an external flag is raised — the hook vote-to-halt
    engines and interactive cancellation use."""

    def __init__(self) -> None:
        self.halted = False

    def halt(self) -> None:
        """Raise the flag: the loop stops after the current superstep."""
        self.halted = True

    def __call__(self, state: LoopState) -> bool:
        return self.halted

    def reset(self) -> None:
        self.halted = False

    def __repr__(self) -> str:
        return f"HaltFlag(halted={self.halted})"


class AnyOf(ConvergenceCondition):
    """Disjunction: stop when any sub-condition holds."""

    def __init__(self, conditions: Sequence[ConvergenceCondition]) -> None:
        if not conditions:
            raise ValueError("AnyOf requires at least one condition")
        self.conditions = list(conditions)

    def __call__(self, state: LoopState) -> bool:
        # No short-circuit: stateful conditions (ValuesConverged) must
        # observe every superstep to keep their history coherent.
        results = [cond(state) for cond in self.conditions]
        return any(results)

    def reset(self) -> None:
        for cond in self.conditions:
            cond.reset()

    def __repr__(self) -> str:
        return f"AnyOf({self.conditions!r})"


class AllOf(ConvergenceCondition):
    """Conjunction: stop only when every sub-condition holds."""

    def __init__(self, conditions: Sequence[ConvergenceCondition]) -> None:
        if not conditions:
            raise ValueError("AllOf requires at least one condition")
        self.conditions = list(conditions)

    def __call__(self, state: LoopState) -> bool:
        results = [cond(state) for cond in self.conditions]
        return all(results)

    def reset(self) -> None:
        for cond in self.conditions:
            cond.reset()

    def __repr__(self) -> str:
        return f"AllOf({self.conditions!r})"
