"""Iterative loop structure and convergence — essential component 4.

"Loop structure/convergence condition(s) to organize and schedule the
computation and completion of a graph algorithm."

* :class:`~repro.loop.enactor.Enactor` — the bulk-synchronous while-loop
  of Listing 4: run a step (one or more operator calls) per superstep
  until a convergence condition holds.
* :class:`~repro.loop.async_enactor.AsyncEnactor` — the asynchronous
  counterpart: per-vertex tasks on the scheduler, completion by
  quiescence instead of an empty frontier.
* :mod:`~repro.loop.convergence` — composable conditions (empty
  frontier, iteration budget, value fixed point, explicit halt votes).
"""

from repro.loop.convergence import (
    ConvergenceCondition,
    EmptyFrontier,
    MaxIterations,
    ValuesConverged,
    HaltFlag,
    AnyOf,
    AllOf,
    LoopState,
)
from repro.loop.enactor import Enactor
from repro.loop.async_enactor import AsyncEnactor
from repro.loop.priority_enactor import PriorityEnactor, sssp_bucketed

__all__ = [
    "PriorityEnactor",
    "sssp_bucketed",
    "ConvergenceCondition",
    "EmptyFrontier",
    "MaxIterations",
    "ValuesConverged",
    "HaltFlag",
    "AnyOf",
    "AllOf",
    "LoopState",
    "Enactor",
    "AsyncEnactor",
]
