"""The bulk-synchronous enactor: Listing 4's while-loop, reified.

An :class:`Enactor` owns the loop scaffolding every BSP graph algorithm
shares — iterate, call the algorithm's per-superstep step function
(itself built from operators), evaluate the convergence condition,
record stats — so algorithm modules contain only their operator
composition and lambdas, exactly as the paper's SSSP listing contains
only the expand call and its condition.

Owning the loop also makes the enactor the recovery seam: with a
:class:`~repro.resilience.ResiliencePolicy` the enactor runs each
superstep under chaos fault points and retry (safe because supersteps
are monotone and faults inject at superstep entry, before any mutation),
and snapshots ``(frontier, value arrays, context)`` every
``checkpoint_every`` supersteps so :meth:`resume_from_checkpoint`
restarts a crashed run from the last completed superstep instead of
superstep 0.  Algorithm step functions never see any of this.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.errors import CheckpointError, ConvergenceError
from repro.frontier.base import Frontier
from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.loop.convergence import (
    ConvergenceCondition,
    EmptyFrontier,
    LoopState,
)
from repro.observability.probe import active_probe
from repro.execution.workspace import Workspace
from repro.resilience.chaos import active_injector
from repro.resilience.deadline import active_token
from repro.resilience.checkpoint import Checkpoint, snapshot_arrays
from repro.resilience.policy import ResiliencePolicy
from repro.utils.counters import IterationStats, RunStats

#: ``step(frontier, state) -> next_frontier`` — one superstep of the
#: algorithm, composed of operator calls.
StepFn = Callable[[Frontier, LoopState], Frontier]

#: Named per-vertex value arrays an algorithm registers for checkpointing.
StateArrays = Dict[str, np.ndarray]


class Enactor:
    """Runs a step function to convergence under the BSP timing model.

    Parameters
    ----------
    graph:
        Graph being processed (used for work accounting).
    convergence:
        Condition checked *after* each superstep; defaults to
        :class:`~repro.loop.convergence.EmptyFrontier`.
    max_iterations:
        Hard safety cap; exceeding it raises
        :class:`~repro.errors.ConvergenceError` (a diverging algorithm
        should fail loudly, not spin).
    collect_stats:
        Record per-iteration frontier sizes / timings (tiny overhead;
        disable for microbenchmarks).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        convergence: Optional[ConvergenceCondition] = None,
        max_iterations: int = 1_000_000,
        collect_stats: bool = True,
    ) -> None:
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        self.graph = graph
        self.convergence = convergence or EmptyFrontier()
        self.max_iterations = max_iterations
        self.collect_stats = collect_stats
        #: Pooled scratch buffers, reused across this enactor's supersteps.
        #: Algorithms thread it into operators via ``workspace=``; sharing
        #: one workspace across concurrently-running enactors is not safe.
        self.workspace = Workspace()

    def run(
        self,
        initial_frontier: Frontier,
        step: StepFn,
        *,
        context: Optional[dict] = None,
        resilience: Optional[ResiliencePolicy] = None,
        state_arrays: Optional[StateArrays] = None,
        _start_iteration: int = 0,
    ) -> RunStats:
        """Drive ``step`` until the convergence condition holds.

        The condition is evaluated once before the first superstep (a
        pre-converged input runs zero steps) and after every superstep.
        Returns the :class:`~repro.utils.counters.RunStats` record.

        ``resilience`` adds superstep retry / chaos / checkpointing;
        ``state_arrays`` names the algorithm's value arrays so
        checkpoints can snapshot and restore them.
        """
        self.convergence.reset()
        state = LoopState(iteration=_start_iteration, frontier=initial_frontier)
        if context:
            state.context.update(context)
        stats = RunStats()
        probe = active_probe()
        degrees = self.graph.csr().degrees() if self.collect_stats else None
        checkpointing = (
            resilience is not None
            and resilience.checkpoint_every > 0
            and resilience.store is not None
            and state_arrays is not None
        )

        if self.convergence(state):
            stats.converged = True
            return self._finish(stats, probe)

        # Cooperative cancellation: the ambient token (installed per
        # query thread by the service layer) is polled once per
        # superstep, between mutations, so a timed-out query stops at
        # the next boundary with every pool and workspace reusable.
        token = active_token()
        frontier = initial_frontier
        while True:
            if token is not None:
                token.check(f"superstep:{state.iteration}")
            if state.iteration >= self.max_iterations:
                raise ConvergenceError(
                    f"loop exceeded max_iterations={self.max_iterations} "
                    f"without converging (frontier size "
                    f"{frontier.size() if frontier is not None else 'n/a'})"
                )
            in_size = frontier.size() if frontier is not None else 0
            edges_touched = 0
            if self.collect_stats:
                if frontier is not None and in_size:
                    active = (
                        frontier.indices_view()
                        if isinstance(frontier, SparseFrontier)
                        else frontier.to_indices()
                    )
                    edges_touched = int(degrees.take(active).sum())
                t0 = time.perf_counter()
            with probe.span(
                "superstep",
                iteration=state.iteration,
                frontier_size=in_size,
                edges_expanded=edges_touched,
            ) as span:
                frontier = self._run_step(step, frontier, state, resilience)
                if probe.enabled:
                    # Superstep summary hook: the output frontier size
                    # closes the loop for the analysis engine's frontier
                    # timeline.  Guarded so the disabled path never pays
                    # for frontier.size().
                    span.set(
                        "output_frontier_size",
                        frontier.size() if frontier is not None else 0,
                    )
            state.iteration += 1
            state.frontier = frontier
            if self.collect_stats:
                stats.record(
                    IterationStats(
                        iteration=state.iteration - 1,
                        frontier_size=in_size,
                        edges_touched=edges_touched,
                        seconds=time.perf_counter() - t0,
                    )
                )
            if self.convergence(state):
                stats.converged = True
                return self._finish(stats, probe)
            if (
                checkpointing
                and state.iteration % resilience.checkpoint_every == 0
            ):
                self._save_checkpoint(state, frontier, resilience, state_arrays)

    def _finish(self, stats: RunStats, probe) -> RunStats:
        """Fold the finished run into the ambient metrics registry."""
        if probe.enabled:
            probe.metrics.record_run(stats)
        return stats

    def resume_from_checkpoint(
        self,
        step: StepFn,
        *,
        resilience: ResiliencePolicy,
        state_arrays: StateArrays,
        context: Optional[dict] = None,
    ) -> RunStats:
        """Continue a crashed run from its last saved checkpoint.

        Restores the snapshot's value arrays into ``state_arrays`` **in
        place**, rebuilds the frontier, and re-enters the loop at the
        saved superstep.  The returned stats cover the resumed portion
        only.  Raises :class:`~repro.errors.CheckpointError` when no
        checkpoint exists.
        """
        if resilience.store is None:
            raise CheckpointError(
                "resume requested but the resilience policy has no store"
            )
        ckpt = resilience.store.latest()
        if ckpt is None:
            raise CheckpointError("resume requested but no checkpoint saved")
        ckpt.restore_arrays(state_arrays)
        frontier = SparseFrontier.from_indices(
            ckpt.frontier_indices, ckpt.capacity
        )
        resilience.counters.increment("checkpoints_restored")
        merged = dict(ckpt.context)
        if context:
            merged.update(context)
        return self.run(
            frontier,
            step,
            context=merged,
            resilience=resilience,
            state_arrays=state_arrays,
            _start_iteration=ckpt.superstep,
        )

    # -- resilience plumbing -----------------------------------------------------------

    def _run_step(
        self,
        step: StepFn,
        frontier: Frontier,
        state: LoopState,
        resilience: Optional[ResiliencePolicy],
    ) -> Frontier:
        """One superstep, under this run's fault points and retry.

        Chaos injects at superstep *entry* — before the step mutates
        anything — so a retried attempt re-executes from identical
        state; a mid-step crash is the checkpoint/resume path's job.

        Without a policy an *ambient* injector still applies; its faults
        then abort the run — the unprotected baseline behavior.
        """
        if resilience is None:
            ambient = active_injector()
            if ambient is not None:
                ambient.maybe_fail_task(f"superstep:{state.iteration}")
            return step(frontier, state)
        injector = resilience.active_chaos()

        def attempt() -> Frontier:
            if injector is not None:
                injector.maybe_fail_task(f"superstep:{state.iteration}")
            return step(frontier, state)

        return resilience.execute(
            attempt, site=f"superstep:{state.iteration}"
        )

    def _save_checkpoint(
        self,
        state: LoopState,
        frontier: Frontier,
        resilience: ResiliencePolicy,
        state_arrays: StateArrays,
    ) -> None:
        with active_probe().span("checkpoint:save", superstep=state.iteration):
            previous = resilience.store.latest()
            resilience.store.save(
                Checkpoint(
                    superstep=state.iteration,
                    frontier_indices=frontier.to_indices()
                    if frontier is not None
                    else np.empty(0, dtype=np.int64),
                    capacity=frontier.capacity
                    if frontier is not None
                    else self.graph.n_vertices,
                    arrays=snapshot_arrays(state_arrays, previous),
                    context=dict(state.context),
                )
            )
            resilience.counters.increment("checkpoints_saved")
