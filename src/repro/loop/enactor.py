"""The bulk-synchronous enactor: Listing 4's while-loop, reified.

An :class:`Enactor` owns the loop scaffolding every BSP graph algorithm
shares — iterate, call the algorithm's per-superstep step function
(itself built from operators), evaluate the convergence condition,
record stats — so algorithm modules contain only their operator
composition and lambdas, exactly as the paper's SSSP listing contains
only the expand call and its condition.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

from repro.errors import ConvergenceError
from repro.frontier.base import Frontier
from repro.graph.graph import Graph
from repro.loop.convergence import (
    ConvergenceCondition,
    EmptyFrontier,
    LoopState,
)
from repro.utils.counters import IterationStats, RunStats

#: ``step(frontier, state) -> next_frontier`` — one superstep of the
#: algorithm, composed of operator calls.
StepFn = Callable[[Frontier, LoopState], Frontier]


class Enactor:
    """Runs a step function to convergence under the BSP timing model.

    Parameters
    ----------
    graph:
        Graph being processed (used for work accounting).
    convergence:
        Condition checked *after* each superstep; defaults to
        :class:`~repro.loop.convergence.EmptyFrontier`.
    max_iterations:
        Hard safety cap; exceeding it raises
        :class:`~repro.errors.ConvergenceError` (a diverging algorithm
        should fail loudly, not spin).
    collect_stats:
        Record per-iteration frontier sizes / timings (tiny overhead;
        disable for microbenchmarks).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        convergence: Optional[ConvergenceCondition] = None,
        max_iterations: int = 1_000_000,
        collect_stats: bool = True,
    ) -> None:
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        self.graph = graph
        self.convergence = convergence or EmptyFrontier()
        self.max_iterations = max_iterations
        self.collect_stats = collect_stats

    def run(
        self,
        initial_frontier: Frontier,
        step: StepFn,
        *,
        context: Optional[dict] = None,
    ) -> RunStats:
        """Drive ``step`` until the convergence condition holds.

        The condition is evaluated once before the first superstep (a
        pre-converged input runs zero steps) and after every superstep.
        Returns the :class:`~repro.utils.counters.RunStats` record.
        """
        self.convergence.reset()
        state = LoopState(iteration=0, frontier=initial_frontier)
        if context:
            state.context.update(context)
        stats = RunStats()
        degrees = self.graph.csr().degrees() if self.collect_stats else None

        if self.convergence(state):
            stats.converged = True
            return stats

        frontier = initial_frontier
        while True:
            if state.iteration >= self.max_iterations:
                raise ConvergenceError(
                    f"loop exceeded max_iterations={self.max_iterations} "
                    f"without converging (frontier size "
                    f"{frontier.size() if frontier is not None else 'n/a'})"
                )
            in_size = frontier.size() if frontier is not None else 0
            if self.collect_stats:
                edges_touched = (
                    int(degrees[frontier.to_indices()].sum())
                    if frontier is not None and in_size
                    else 0
                )
                t0 = time.perf_counter()
            frontier = step(frontier, state)
            state.iteration += 1
            state.frontier = frontier
            if self.collect_stats:
                stats.record(
                    IterationStats(
                        iteration=state.iteration - 1,
                        frontier_size=in_size,
                        edges_touched=edges_touched,
                        seconds=time.perf_counter() - t0,
                    )
                )
            if self.convergence(state):
                stats.converged = True
                return stats
