"""Command-line interface: ``repro <command>``.

Gives the library a shell-usable surface, mirroring the driver binaries
GPU graph frameworks ship:

* ``repro generate`` — synthesize a seeded graph to any supported format;
* ``repro info``     — structural summary of a graph file;
* ``repro convert``  — transcode between graph file formats;
* ``repro run``      — run an algorithm and print (or save) results;
* ``repro profile``  — run an algorithm under the observability probe and
  export traces (Chrome/Perfetto), event logs (JSONL), or a summary;
* ``repro explain``  — trace analysis: critical path, per-layer time
  attribution, worker imbalance, frontier timeline, diagnosis — from a
  trace file or a run-ledger id;
* ``repro diff``     — the regression gate: compare two runs or two
  ``BENCH_*.json`` entries, exit nonzero on regression;
* ``repro ledger``   — list or show run-ledger records (every ``run``/
  ``profile`` appends one under ``.repro/runs/``);
* ``repro partition``— partition and report quality metrics;
* ``repro stream``   — replay a windowed edge stream against a dynamic
  graph, alternating mutation batches with incremental queries, and
  report freshness vs full-recompute cost;
* ``repro table1``   — print the regenerated capability matrix;
* ``repro verify``   — the conformance harness: differential matrix
  (algorithm × policy × direction × representation × fused over the
  adversarial graph pool), metamorphic oracles, the dynamic
  (incremental==full) oracle, and the par_nosync race checker; every
  mismatch prints a one-line repro command.

Every command is a thin shell over the public API, so scripted use and
programmatic use stay equivalent.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np


# -- file format plumbing ----------------------------------------------------------


def _load_graph(path: str, *, directed: bool = True):
    from repro.graph.io import (
        load_graph_npz,
        read_dimacs,
        read_edgelist,
        read_matrix_market,
    )

    if path.endswith(".npz"):
        return load_graph_npz(path)
    if path.endswith(".mtx"):
        return read_matrix_market(path)
    if path.endswith(".gr"):
        return read_dimacs(path, directed=directed)
    return read_edgelist(path, directed=directed)


def _save_graph(graph, path: str) -> None:
    from repro.graph.io import (
        save_graph_npz,
        write_dimacs,
        write_edgelist,
        write_matrix_market,
    )

    if path.endswith(".npz"):
        save_graph_npz(graph, path)
    elif path.endswith(".mtx"):
        write_matrix_market(graph, path)
    elif path.endswith(".gr"):
        write_dimacs(graph, path)
    else:
        write_edgelist(graph, path)


# -- commands ------------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: synthesize a seeded graph to a file."""
    from repro.graph import generators as gen

    kind = args.kind
    if kind == "rmat":
        g = gen.rmat(
            args.scale,
            args.edge_factor,
            weighted=args.weighted,
            directed=not args.undirected,
            seed=args.seed,
        )
    elif kind == "er":
        n = 1 << args.scale
        g = gen.erdos_renyi_gnm(
            n,
            n * args.edge_factor,
            weighted=args.weighted,
            directed=not args.undirected,
            seed=args.seed,
        )
    elif kind == "grid":
        side = int(np.sqrt(1 << args.scale))
        g = gen.grid_2d(side, side, weighted=args.weighted, seed=args.seed)
    elif kind == "ws":
        g = gen.watts_strogatz(
            1 << args.scale, args.edge_factor, 0.05, seed=args.seed
        )
        if args.weighted:
            g = gen.with_random_weights(g, seed=args.seed)
    elif kind == "ba":
        g = gen.barabasi_albert(
            1 << args.scale, max(1, args.edge_factor // 2), seed=args.seed
        )
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(kind)
    _save_graph(g, args.output)
    print(
        f"wrote {args.output}: {g.n_vertices} vertices, {g.n_edges} edges "
        f"({g.properties.describe()})"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """``repro info``: structural summary of a graph file."""
    g = _load_graph(args.graph, directed=not args.undirected)
    degrees = g.out_degrees()
    info = {
        "path": args.graph,
        "n_vertices": g.n_vertices,
        "n_edges": g.n_edges,
        "properties": g.properties.describe(),
        "degree_min": int(degrees.min(initial=0)),
        "degree_max": int(degrees.max(initial=0)),
        "degree_mean": round(float(degrees.mean()) if degrees.size else 0.0, 3),
        "views": list(g.materialized_views()),
    }
    if args.components:
        from repro.algorithms import connected_components

        info["n_components"] = connected_components(g).n_components
    if args.stats:
        from repro.graph.stats import summarize

        summary = summarize(g, diameter_probes=2, seed=0)
        info["degree_skew"] = round(summary["degree"].skew, 3)
        info["degree_gini"] = round(summary["degree"].gini, 3)
        info["diameter_lower_bound"] = summary["diameter_lower_bound"]
        info["hints"] = summary["hints"]
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        for k, v in info.items():
            print(f"{k:>14}: {v}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """``repro convert``: transcode between graph file formats."""
    g = _load_graph(args.input, directed=not args.undirected)
    _save_graph(g, args.output)
    print(f"converted {args.input} -> {args.output}")
    return 0


def _build_resilience(args: argparse.Namespace):
    """Translate the ``run`` command's chaos/checkpoint flags into a
    :class:`~repro.resilience.ResiliencePolicy` (``None`` when every
    flag is at its quiet default)."""
    if not (0.0 <= args.chaos_rate <= 1.0):
        raise SystemExit(
            f"--chaos-rate must be in [0, 1], got {args.chaos_rate}"
        )
    if args.checkpoint_every < 0:
        raise SystemExit(
            f"--checkpoint-every must be >= 0, got {args.checkpoint_every}"
        )
    if args.retry_attempts < 1:
        raise SystemExit(
            f"--retry-attempts must be >= 1, got {args.retry_attempts}"
        )
    if not (args.chaos_rate > 0 or args.checkpoint_every > 0):
        return None
    if args.algorithm not in ("sssp", "bfs", "cc"):
        raise SystemExit(
            f"--chaos-rate/--checkpoint-every support sssp, bfs, and cc "
            f"(enactor-driven algorithms), not {args.algorithm!r}"
        )
    from repro.resilience import (
        FaultInjector,
        ResiliencePolicy,
        RetryPolicy,
    )

    chaos = (
        FaultInjector.uniform(seed=args.chaos_seed, rate=args.chaos_rate)
        if args.chaos_rate > 0
        else None
    )
    return ResiliencePolicy(
        chaos=chaos,
        retry=RetryPolicy(
            max_attempts=args.retry_attempts, base_delay=0.0, max_delay=0.0
        ),
        checkpoint_every=args.checkpoint_every,
    )


def _export_probe(probe, args: argparse.Namespace, algorithm: str) -> None:
    """Write the probe's telemetry to whichever outputs were requested."""
    from repro.observability.export import (
        write_chrome_trace,
        write_events_jsonl,
    )

    if getattr(args, "trace", None):
        write_chrome_trace(
            probe, args.trace, process_name=f"repro:{algorithm}"
        )
        print(f"chrome trace written to {args.trace}")
    if getattr(args, "events", None):
        write_events_jsonl(probe, args.events, algorithm=algorithm)
        print(f"event log written to {args.events}")


def _append_ledger_record(
    args: argparse.Namespace,
    *,
    kind: str,
    algorithm: str,
    metrics: dict,
    stats=None,
    probe=None,
    config_keys: Sequence[str] = (),
) -> None:
    """Append one run-ledger record (quietly skipped when disabled).

    The analysis engine's attribution is embedded when the run collected
    spans, so ``repro explain <run-id>`` can answer from the ledger
    alone.  Recording failures never fail the command — telemetry must
    not break runs.
    """
    from repro.observability import ledger as ledger_mod

    if getattr(args, "no_ledger", False) or not ledger_mod.ledger_enabled():
        return
    analysis = None
    if probe is not None and probe.enabled and probe.trace and len(probe.tracer):
        from repro.observability.analysis import analyze_probe

        analysis = analyze_probe(probe).to_dict()
    config = {
        key: getattr(args, key)
        for key in config_keys
        if getattr(args, key, None) is not None
    }
    record = ledger_mod.make_record(
        kind=kind,
        algorithm=algorithm,
        config=config,
        metrics=metrics,
        stats=stats,
        analysis=analysis,
    )
    try:
        run_id = ledger_mod.RunLedger(
            getattr(args, "ledger_dir", None)
        ).append(record)
    except OSError as exc:
        print(f"ledger: not recorded ({exc})", file=sys.stderr)
        return
    # stderr: --json consumers own stdout.
    print(f"ledger: {run_id}", file=sys.stderr)


def _add_ledger_args(p: argparse.ArgumentParser) -> None:
    """Ledger controls shared by the recording subcommands."""
    p.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip the .repro/runs ledger record for this invocation",
    )
    p.add_argument("--ledger-dir", help="ledger root (default .repro/runs)")


class _SigtermInterrupt:
    """Route SIGTERM to :class:`KeyboardInterrupt` (main thread only).

    A run killed by a supervisor's TERM then takes exactly the Ctrl-C
    path: flush whatever telemetry exists, append an ``interrupted``
    ledger record, exit 130.  Off the main thread (tests driving
    :func:`main` from a worker) signal installation is skipped — the
    KeyboardInterrupt path itself still works.
    """

    def __enter__(self) -> "_SigtermInterrupt":
        import signal
        import threading

        self._prev = None
        if threading.current_thread() is threading.main_thread():
            try:
                self._prev = signal.signal(signal.SIGTERM, self._raise)
            except ValueError:  # pragma: no cover - non-main interpreter
                self._prev = None
        return self

    @staticmethod
    def _raise(signum, frame) -> None:
        raise KeyboardInterrupt

    def __exit__(self, exc_type, exc, tb) -> None:
        import signal

        if self._prev is not None:
            signal.signal(signal.SIGTERM, self._prev)


#: Conventional exit code for "terminated by interrupt" (128 + SIGINT).
INTERRUPT_EXIT = 130


def _interrupted_exit(
    args: argparse.Namespace,
    *,
    kind: str,
    algorithm: str,
    probe,
    seconds: float,
) -> int:
    """The SIGINT/SIGTERM epilogue for recording commands.

    Whatever the run produced before the interrupt is flushed — the
    probe's trace buffer to the requested export files, and an
    ``interrupted: true`` record to the run ledger — so a killed run
    still leaves evidence, then the conventional 130 is returned.
    """
    if probe is not None:
        try:
            _export_probe(probe, args, algorithm)
        except Exception as exc:  # noqa: BLE001 - already dying
            print(f"interrupt: trace export failed ({exc})", file=sys.stderr)
    _append_ledger_record(
        args,
        kind=kind,
        algorithm=algorithm,
        metrics={"seconds": seconds, "interrupted": True},
        probe=probe,
    )
    print(
        f"interrupted: partial telemetry flushed ({kind} {algorithm}, "
        f"{seconds:.2f}s in)",
        file=sys.stderr,
    )
    return INTERRUPT_EXIT


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: execute an algorithm and report stats.

    With ``--trace``/``--events`` the run happens under an ambient
    :class:`~repro.observability.probe.Probe` and the telemetry is
    exported afterwards — ``repro run`` and ``repro profile`` share the
    same instrumentation, they differ in emphasis (results vs telemetry).
    Every run appends a run-ledger record (``--no-ledger`` opts out).
    SIGINT/SIGTERM flush partial telemetry and exit 130.
    """
    import time as time_mod

    t0 = time_mod.perf_counter()
    probe = None
    try:
        with _SigtermInterrupt():
            if getattr(args, "trace", None) or getattr(args, "events", None):
                from repro.observability.probe import Probe

                probe = Probe()
                with probe:
                    code = _run_body(args, probe=probe)
                _export_probe(probe, args, args.algorithm)
                return code
            return _run_body(args)
    except KeyboardInterrupt:
        return _interrupted_exit(
            args,
            kind="run",
            algorithm=args.algorithm,
            probe=probe,
            seconds=time_mod.perf_counter() - t0,
        )


def _run_body(args: argparse.Namespace, probe=None) -> int:
    """The ``run`` command's algorithm dispatch (probe-agnostic)."""
    import time as time_mod

    import repro.algorithms as alg

    g = _load_graph(args.graph, directed=not args.undirected)
    name = args.algorithm
    resilience = _build_resilience(args)
    t0 = time_mod.perf_counter()
    backend = getattr(args, "backend", "native")
    if name == "sssp":
        result = alg.sssp(
            g,
            args.source,
            policy=args.policy,
            resilience=resilience,
            backend=backend,
        )
        values = result.distances
        stats = result.stats
    elif name == "bfs":
        result = alg.bfs(
            g,
            args.source,
            direction=args.direction,
            resilience=resilience,
            backend=backend,
        )
        values = result.levels
        stats = result.stats
    elif name == "pagerank":
        result = alg.pagerank(g, backend=backend)
        values = result.ranks
        stats = result.stats
    elif name == "cc":
        result = alg.connected_components(
            g, resilience=resilience, backend=backend
        )
        values = result.labels
        stats = result.stats
        print(f"components: {result.n_components}")
    elif name == "scc":
        result = alg.strongly_connected_components(g)
        values = result.labels
        stats = result.stats
        print(f"strongly connected components: {result.n_components}")
    elif name == "tc":
        result = alg.triangle_count(g)
        print(f"triangles: {result.total}")
        _append_ledger_record(
            args,
            kind="run",
            algorithm=name,
            metrics={"seconds": time_mod.perf_counter() - t0,
                     "triangles": int(result.total)},
            probe=probe,
            config_keys=("graph", "policy", "seed"),
        )
        return 0
    elif name == "kcore":
        result = alg.kcore_decomposition(g)
        values = result.core_numbers
        stats = result.stats
        print(f"degeneracy: {result.max_core}")
    elif name == "color":
        result = alg.graph_coloring(g, seed=args.seed)
        values = result.colors
        stats = result.stats
        print(f"colors: {result.n_colors}")
    elif name == "ppr":
        result = alg.personalized_pagerank(g, args.source, backend=backend)
        values = result.ranks
        stats = result.stats
    elif name == "mis":
        result = alg.maximal_independent_set(g, seed=args.seed)
        values = result.in_set
        stats = result.stats
        print(f"independent set size: {result.size}")
    elif name == "ktruss":
        result = alg.ktruss_decomposition(g)
        print(f"max truss: {result.max_truss}")
        _append_ledger_record(
            args,
            kind="run",
            algorithm=name,
            metrics={"seconds": time_mod.perf_counter() - t0,
                     "max_truss": int(result.max_truss)},
            probe=probe,
            config_keys=("graph", "policy", "seed"),
        )
        return 0
    elif name == "communities":
        result = alg.label_propagation_communities(g, seed=args.seed)
        values = result.labels
        stats = result.stats
        print(
            f"communities: {result.n_communities} "
            f"(Q={alg.modularity(g, result.labels):.3f})"
        )
    else:  # pragma: no cover
        raise ValueError(name)
    seconds = time_mod.perf_counter() - t0
    print(
        f"{name}: {stats.num_iterations} supersteps, "
        f"{stats.total_edges_touched} edges touched, "
        f"{stats.mteps:.3f} MTEPS"
    )
    _append_ledger_record(
        args,
        kind="run",
        algorithm=name,
        metrics={
            "seconds": seconds,
            "iterations": stats.num_iterations,
            "edges_expanded": stats.total_edges_touched,
            "mteps": stats.mteps,
            "converged": stats.converged,
            "n_vertices": g.n_vertices,
            "n_edges": g.n_edges,
        },
        stats=stats,
        probe=probe,
        config_keys=("graph", "policy", "direction", "source", "seed"),
    )
    if resilience is not None:
        active = resilience.counters.as_dict()
        if resilience.chaos is not None:
            active["faults_injected"] = resilience.chaos.total_faults
        print(
            "resilience: "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(active.items()))
                or "no events"
            )
        )
    if args.output:
        np.save(args.output, values)
        print(f"values written to {args.output}")
    elif args.head:
        print(f"first {args.head} values: {np.asarray(values)[: args.head]}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: run an algorithm under the probe, export traces.

    With no graph argument a seeded weighted grid is generated, so
    ``repro profile sssp --trace out.json`` works standalone (the CI
    smoke-profile job relies on this).  SIGINT/SIGTERM flush the ledger
    and exit 130, like ``repro run``.
    """
    import time as time_mod

    t0 = time_mod.perf_counter()
    try:
        with _SigtermInterrupt():
            return _profile_body(args)
    except KeyboardInterrupt:
        return _interrupted_exit(
            args,
            kind="profile",
            algorithm=args.algorithm,
            probe=None,
            seconds=time_mod.perf_counter() - t0,
        )


def _profile_body(args: argparse.Namespace) -> int:
    from repro.observability.export import render_summary
    from repro.observability.profile import profile_algorithm

    if args.graph:
        g = _load_graph(args.graph, directed=not args.undirected)
    else:
        from repro.graph import generators as gen

        side = int(np.sqrt(1 << args.scale))
        g = gen.grid_2d(side, side, weighted=True, seed=args.seed)
        print(
            f"profiling on generated {side}x{side} grid "
            f"({g.n_vertices} vertices, {g.n_edges} edges)"
        )
    report = profile_algorithm(
        g,
        args.algorithm,
        source=args.source,
        policy=args.policy,
        num_workers=args.workers,
        trace=not args.no_spans,
        backend=getattr(args, "backend", "native"),
    )
    if args.json:
        print(json.dumps(report.summary_metrics(), indent=2, sort_keys=True))
    else:
        print(render_summary(report.probe, top=args.top))
        print(
            f"\n{args.algorithm}: {report.seconds * 1e3:.1f} ms end-to-end "
            f"({len(report.probe.tracer) if report.probe.trace else 0} spans)"
        )
    _export_probe(report.probe, args, args.algorithm)
    _append_ledger_record(
        args,
        kind="profile",
        algorithm=args.algorithm,
        metrics=report.summary_metrics(),
        stats=report.stats,
        probe=report.probe,
        config_keys=("graph", "scale", "policy", "workers", "source", "seed"),
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """``repro verify``: run the conformance harness; exit 1 on any
    divergence.

    Four suites — differential matrix, metamorphic relations, dynamic
    (incremental==full) oracle, race checker — all run by default;
    ``--metamorphic`` / ``--dynamic`` / ``--races`` narrow to those
    suites, and any matrix-axis filter (``--policy``, ``--direction``,
    ``--representation``, ``--fused``) narrows to the matrix alone,
    which is how the printed repro commands replay a single cell.
    """
    from repro.verify import (
        check_races,
        run_dynamic,
        run_matrix,
        run_metamorphic,
        spec_names,
    )
    from repro.verify.graph_pool import GraphPool

    if args.list:
        from repro.verify import get_spec

        pool = GraphPool(seed=args.seed, quick=not args.full)
        for name in spec_names():
            spec = get_spec(name)
            axes = [a for a in spec.axes.policies if a is not None]
            print(
                f"{name:12s} baseline={spec.baseline_name:22s} "
                f"comparator={spec.comparator_name:22s} "
                f"policies={','.join(axes) or '-'}"
            )
        print(f"graphs: {', '.join(c.name for c in pool.cases())}")
        return 0

    quick = not args.full
    axis_filtered = any(
        x is not None
        for x in (
            args.policy,
            args.direction,
            args.representation,
            args.backend,
        )
    ) or args.fused != "both"
    explicit = bool(args.metamorphic or args.races or args.dynamic)
    # An explicit --metamorphic composes with --backend (the relations
    # run per-backend); every other axis filter narrows to the matrix.
    run_m = ((not explicit and not args.no_matrix) or axis_filtered) and not (
        args.metamorphic and not args.races and not args.dynamic
    )
    run_meta = (args.metamorphic or not explicit) and (
        not axis_filtered or args.metamorphic
    )
    run_dyn = (args.dynamic or not explicit) and not axis_filtered
    run_r = (args.races or not explicit) and not axis_filtered

    fused_filter = None
    if args.fused == "on":
        fused_filter = [True]
    elif args.fused == "off":
        fused_filter = [False]
    # Matrix variants carry None for the native backend (the axis
    # default); the CLI spells it "native".
    backend_filter = None
    if args.backend is not None:
        backend_filter = [None if args.backend == "native" else args.backend]

    failed = False
    records = {}
    if args.algo:
        known = set(spec_names())
        unknown = [a for a in args.algo if a not in known]
        if unknown:
            raise SystemExit(
                f"unknown algorithm(s) {', '.join(sorted(unknown))}; "
                f"see `repro verify --list`"
            )
    if args.graph:
        pool_names = {
            c.name for c in GraphPool(seed=args.seed, quick=quick).cases()
        }
        unknown = [g for g in args.graph if g not in pool_names]
        if unknown:
            mode_hint = "" if args.full else " (full-only graph? add --full)"
            raise SystemExit(
                f"unknown graph(s) {', '.join(sorted(unknown))}"
                f"{mode_hint}; see `repro verify --list`"
            )
    if run_m:
        report = run_matrix(
            seed=args.seed,
            quick=quick,
            algos=args.algo,
            graphs=args.graph,
            policies=args.policy,
            directions=args.direction,
            representations=args.representation,
            fused=fused_filter,
            backends=backend_filter,
        )
        mode = "quick" if quick else "full"
        print(
            f"matrix: {report.cells_run} cells, {report.cells_passed} "
            f"passed, {len(report.mismatches)} mismatches "
            f"({mode}, seed {args.seed}, {report.seconds:.1f}s)"
        )
        for m in report.mismatches[:20]:
            print(f"  MISMATCH {m.cell.label()}: {m.detail}")
            print(f"    replay: {m.repro}")
        if len(report.mismatches) > 20:
            print(f"  ... and {len(report.mismatches) - 20} more")
        records["matrix"] = report.to_record()
        failed = failed or not report.ok
    if run_meta:
        meta_backends = (
            (args.backend,) if args.backend else ("native", "linalg")
        )
        meta = run_metamorphic(
            seed=args.seed,
            quick=quick,
            graphs=args.graph,
            backends=meta_backends,
        )
        print(
            f"metamorphic: {meta.checks_run} checks, "
            f"{len(meta.failures)} failures ({meta.seconds:.1f}s)"
        )
        for f in meta.failures[:20]:
            print(f"  FAILED {f.relation} [{f.algo} on {f.graph}]: {f.detail}")
            print(f"    replay: {f.repro}")
        records["metamorphic"] = meta.to_record()
        failed = failed or not meta.ok
    if run_dyn:
        dyn = run_dynamic(seed=args.seed, quick=quick, graphs=args.graph)
        print(
            f"dynamic: {dyn.checks_run} checks, "
            f"{len(dyn.failures)} failures ({dyn.seconds:.1f}s)"
        )
        for f in dyn.failures[:20]:
            print(
                f"  FAILED {f.check} [{f.algo} on {f.graph}, "
                f"{f.policy}]: {f.detail}"
            )
            print(f"    replay: {f.repro}")
        records["dynamic"] = dyn.to_record()
        failed = failed or not dyn.ok
    if run_r:
        try:
            races = check_races(
                seed=args.seed,
                trials=args.trials,
                quick=quick,
                algos=args.algo if args.races else None,
                graphs=args.graph,
            )
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]) if exc.args else str(exc))
        print(
            f"races: {races.runs} perturbed runs, "
            f"{len(races.findings)} findings, "
            f"{len(races.benign)} benign ({races.seconds:.1f}s)"
        )
        for f in races.findings[:20]:
            print(f"  RACE {f.algo} on {f.graph} ({f.kind}): {f.detail}")
            print(f"    replay: {f.repro}")
        records["races"] = races.to_record()
        failed = failed or not races.ok

    _append_ledger_record(
        args,
        kind="verify",
        algorithm=",".join(args.algo) if args.algo else "all",
        metrics={"ok": not failed, **records},
        config_keys=("seed", "full"),
    )
    if args.json:
        print(json.dumps({"ok": not failed, **records}, indent=2))
    if failed:
        print("verify: FAILED", file=sys.stderr)
        return 1
    print("verify: ok")
    return 0


# -- trace analysis / ledger / regression commands -------------------------------------


def _render_ledger_analysis(record: dict) -> str:
    """Human rendering of a ledger record's stored analysis summary."""
    lines = [
        f"run {record['run_id']} — {record.get('kind')} "
        f"{record.get('algorithm')} at {record.get('created_at')}"
    ]
    metrics = record.get("metrics", {})
    if "seconds" in metrics:
        lines.append(f"  seconds: {metrics['seconds'] * 1e3:.3f} ms")
    for key in ("iterations", "edges_expanded", "mteps", "converged"):
        if key in metrics:
            lines.append(f"  {key}: {metrics[key]}")
    analysis = record.get("analysis")
    if analysis:
        wall = analysis.get("wall_seconds", 0.0) or 0.0
        lines.append(
            f"  traced wall: {wall * 1e3:.3f} ms over "
            f"{analysis.get('span_count', 0)} spans "
            f"(coverage {analysis.get('coverage', 0.0):.1%})"
        )
        layers = analysis.get("layers", {})
        denom = max(wall, sum(layers.values()))  # parallel runs exceed wall
        for layer, seconds in sorted(layers.items(), key=lambda kv: -kv[1]):
            share = seconds / denom if denom > 0 else 0.0
            lines.append(f"    {layer:<12} {seconds * 1e3:>9.3f} ms {share:>7.1%}")
        lines.append(
            f"  imbalance factor: {analysis.get('imbalance_factor', 1.0):.2f}x"
        )
        path = analysis.get("critical_path", [])
        if path:
            lines.append("  critical path:")
            for entry in path:
                lines.append(
                    f"    {entry['name']:<28} x{entry['count']:<6} "
                    f"{entry['seconds'] * 1e3:>9.3f} ms {entry['share']:>7.1%}"
                )
        lines.append(f"  diagnosis: {analysis.get('diagnosis', '(none)')}")
    supersteps = record.get("supersteps", [])
    if supersteps:
        lines.append(f"  supersteps recorded: {len(supersteps)}")
    return "\n".join(lines)


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: trace analysis of a file or a ledger run id."""
    import os

    target = args.target
    if os.path.exists(target):
        from repro.observability.analysis import analyze_file

        report = analyze_file(target)
        if report.span_count == 0:
            print(f"{target}: no spans to analyze", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render(max_timeline_rows=args.timeline_rows))
        return 0
    from repro.observability.ledger import RunLedger

    ledger = RunLedger(args.ledger_dir)
    record = ledger.get(target)
    if record is None:
        print(
            f"{target}: neither a trace file nor a (unique) run id in "
            f"{ledger.path}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(_render_ledger_analysis(record))
        trace = record.get("trace")
        if trace:
            from repro.observability.analysis import (
                nodes_from_span_dicts,
                render_span_tree,
            )

            qid = record.get("qid") or record["run_id"]
            lines = [f"  span tree ({len(trace)} spans, trace id {qid}):"]
            for line in render_span_tree(nodes_from_span_dicts(trace)).splitlines():
                lines.append(f"    {line}")
            if record.get("incident"):
                lines.append(f"  incident file: {record['incident']}")
            print("\n".join(lines))
    return 0


def _resolve_diff_side(ledger, target: str) -> tuple:
    """A diff operand: a JSON file path or a ledger run id.

    Returns ``(label, payload)``; raises ``SystemExit`` when unresolvable.
    """
    import os

    if os.path.exists(target):
        from repro.observability.regression import load_comparable

        return os.path.basename(target), load_comparable(target)
    record = ledger.get(target)
    if record is None:
        raise SystemExit(
            f"{target}: neither a JSON file nor a (unique) run id in "
            f"{ledger.path}"
        )
    return str(record["run_id"]), record


def cmd_diff(args: argparse.Namespace) -> int:
    """``repro diff``: the regression gate between two runs/entries."""
    from repro.observability.ledger import RunLedger
    from repro.observability.regression import DEFAULT_THRESHOLD, compare

    ledger = RunLedger(args.ledger_dir)
    label_a, payload_a = _resolve_diff_side(ledger, args.baseline)
    label_b, payload_b = _resolve_diff_side(ledger, args.candidate)
    try:
        report = compare(
            payload_a,
            payload_b,
            threshold=(
                args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
            ),
            baseline_label=label_a,
            candidate_label=label_b,
        )
    except ValueError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return report.exit_code()


def cmd_ledger(args: argparse.Namespace) -> int:
    """``repro ledger``: list recent records, or show one by id."""
    from repro.observability.ledger import RunLedger

    ledger = RunLedger(args.ledger_dir)

    def warn_skipped() -> None:
        if ledger.skipped_lines:
            print(
                f"warning: skipped {ledger.skipped_lines} corrupt ledger "
                f"line(s) in {ledger.path} (a crashed writer left torn "
                f"records; history shown is what remained parseable)",
                file=sys.stderr,
            )

    if args.run_id:
        record = ledger.get(args.run_id)
        warn_skipped()
        if record is None:
            print(f"{args.run_id}: not found in {ledger.path}", file=sys.stderr)
            return 1
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    records = ledger.tail(args.last)
    warn_skipped()
    if not records:
        print(f"no records in {ledger.path}")
        return 0
    print(f"{'run id':<26} {'kind':<10} {'algorithm':<18} {'seconds':>10}  created")
    for record in records:
        seconds = record.get("metrics", {}).get("seconds")
        cell = f"{seconds * 1e3:.2f} ms" if isinstance(seconds, (int, float)) else "-"
        print(
            f"{record['run_id']:<26} {record.get('kind', '?'):<10} "
            f"{record.get('algorithm', '?'):<18} {cell:>10}  "
            f"{record.get('created_at', '?')}"
        )
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    """``repro partition``: partition a graph and report quality."""
    from repro import partition as part

    g = _load_graph(args.graph, directed=not args.undirected)
    fns = {
        "random": lambda: part.random_partition(g, args.parts, seed=args.seed),
        "contiguous": lambda: part.contiguous_partition(g, args.parts),
        "ldg": lambda: part.ldg_partition(g, args.parts, seed=args.seed),
        "fennel": lambda: part.fennel_partition(g, args.parts, seed=args.seed),
        "metis": lambda: part.metis_like_partition(g, args.parts, seed=args.seed),
    }
    p = fns[args.method]()
    print(
        f"{args.method} k={args.parts}: edge_cut={part.edge_cut(g, p)} "
        f"balance={part.load_balance(p):.3f} "
        f"comm_volume={part.communication_volume(g, p)}"
    )
    if args.output:
        np.save(args.output, p.assignment)
        print(f"assignment written to {args.output}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the long-running deadline-driven query daemon.

    Loads/generates the catalog once, recovers the query journal (any
    query in flight when a previous process died is marked aborted),
    then serves JSONL queries over TCP until a client sends the
    ``shutdown`` op (exit 0) or SIGINT/SIGTERM arrives (in-flight
    queries are cancelled at their next superstep boundary, connection
    threads joined, exit 130).
    """
    import os
    import signal
    import threading

    from repro.errors import CatalogError, ServiceError
    from repro.service import (
        GraphCatalog,
        GraphQueryServer,
        QueryService,
        ServiceConfig,
        parse_graph_spec,
    )

    catalog = GraphCatalog(data_dir=args.data_dir)
    try:
        restored = catalog.restore()
        for spec_text in args.graph or []:
            catalog.add(parse_graph_spec(spec_text))
    except CatalogError as exc:
        raise SystemExit(f"catalog: {exc}") from exc
    if not len(catalog):
        raise SystemExit(
            "serve needs at least one --graph (name=path or name=kind:scale),"
            " or a --data-dir whose catalog manifest has entries"
        )
    if restored:
        print(f"catalog restored from manifest: {sorted(restored)}",
              file=sys.stderr)

    config = ServiceConfig(
        max_concurrent=args.max_concurrent,
        max_queue_depth=args.max_queue_depth,
        per_tenant_limit=args.tenant_limit,
        default_timeout_s=args.default_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        cache_ttl_s=args.cache_ttl,
        retry_attempts=args.retry_attempts,
        record_ledger=not args.no_ledger,
        observe=args.observe,
        flight_capacity=args.flight_capacity,
    )
    try:
        service = QueryService(
            catalog, data_dir=args.data_dir, config=config
        )
    except ServiceError as exc:
        raise SystemExit(f"serve: {exc}") from exc
    if service.recovered:
        print(
            f"journal recovery: {len(service.recovered)} in-flight "
            f"queries from a previous process marked aborted",
            file=sys.stderr,
        )

    server = GraphQueryServer(service, host=args.host, port=args.port)
    interrupted = threading.Event()

    def on_signal(signum, frame) -> None:
        interrupted.set()

    previous = {}
    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, on_signal)
            except ValueError:  # pragma: no cover - non-main interpreter
                pass
    server.start()
    host, port = server.address
    print(
        f"serving {sorted(catalog.names())} on {host}:{port} "
        f"(pid {os.getpid()}, {config.max_concurrent} slots)"
    )
    sys.stdout.flush()
    try:
        while not interrupted.is_set():
            if service.shutdown_requested.wait(timeout=0.1):
                break
    finally:
        server.stop()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        stats = service.stats()
        codes = ", ".join(f"{k}={v}" for k, v in stats["codes"].items())
        print(f"served: {codes or 'no queries'}", file=sys.stderr)
    if interrupted.is_set():
        print("interrupted: in-flight queries cancelled, journal flushed",
              file=sys.stderr)
        return INTERRUPT_EXIT
    return 0


def _render_latency_table(latency: dict) -> str:
    """Human rendering of the per-(graph, algorithm) latency summaries
    (the ``latency_ms`` section of `stats`/`metrics` responses)."""
    lines = [
        f"{'graph/algo':<24} {'count':>7} {'p50':>9} {'p95':>9} "
        f"{'p99':>9} {'max':>9}"
    ]
    keys = sorted(k for k in latency if k != "_all")
    if "_all" in latency:
        keys.append("_all")
    for key in keys:
        entry = latency[key]
        cells = " ".join(
            f"{entry.get(col, 0.0):>9.2f}" for col in ("p50", "p95", "p99", "max")
        )
        lines.append(f"{key:<24} {int(entry.get('count', 0)):>7} {cells}")
    return "\n".join(lines)


def _render_top(snapshot: dict) -> str:
    """One ``repro top`` frame from a metrics snapshot."""
    queries = snapshot.get("queries", {})
    responses = queries.get("responses", {})
    codes = ", ".join(
        f"{code}={count}" for code, count in sorted(responses.items())
    )
    workers = snapshot.get("workers", {})
    trace = snapshot.get("trace", {})
    incidents = snapshot.get("incidents", {})
    admission = snapshot.get("admission", {})
    cache = snapshot.get("cache", {})
    lines = [
        f"repro top — uptime {snapshot.get('uptime_s', 0.0):.1f}s",
        f"  responses: {codes or '(none yet)'}",
        f"  admission: active={admission.get('active', 0)} "
        f"waiting={admission.get('waiting', 0)} "
        f"admitted={admission.get('admitted', 0)} "
        f"shed={admission.get('shed_queue_full', 0) + admission.get('shed_tenant_cap', 0) + admission.get('shed_timeout', 0)}",
        f"  cache: entries={cache.get('entries', 0)} "
        f"hit_ratio={cache.get('hit_ratio', 0.0):.2f} "
        f"stale_served={cache.get('stale_served', 0)}",
        f"  workers: n={workers.get('num_workers', 0)} "
        f"busy={workers.get('busy_fraction', 0.0):.1%} "
        f"restarts={workers.get('restarts', 0)}",
        f"  trace: buffered={trace.get('buffered_spans', 0)} "
        f"dropped={trace.get('dropped_spans', 0)}   "
        f"incidents: dumped={incidents.get('dumped', 0)} "
        f"dir={incidents.get('dir', '-')}",
    ]
    breakers = snapshot.get("breakers") or {}
    tripped = {
        key: entry for key, entry in breakers.items()
        if entry.get("state") != "closed"
    }
    if tripped:
        cells = ", ".join(
            f"{key}={entry.get('state')}" for key, entry in sorted(tripped.items())
        )
        lines.append(f"  breakers: {cells}")
    latency = queries.get("latency_ms") or {}
    if latency:
        lines.append("")
        lines.extend(
            "  " + row for row in _render_latency_table(latency).splitlines()
        )
    epochs = snapshot.get("epochs") or {}
    lagging = {
        name: entry for name, entry in epochs.items() if entry.get("lag")
    }
    if lagging:
        cells = ", ".join(
            f"{name} lag={entry['lag']}" for name, entry in sorted(lagging.items())
        )
        lines.append(f"  epochs: {cells}")
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: poll a running server's metrics op and render a
    terminal dashboard (latency percentiles, admission, cache, workers,
    breakers).  Needs the server started with ``--observe`` for the
    latency/worker sections; the rest works regardless."""
    import time as _time

    from repro.errors import ServiceError
    from repro.service import ServiceClient

    iterations = 0
    try:
        with ServiceClient(
            args.host, args.port, timeout=args.connect_timeout
        ) as client:
            while True:
                snapshot = client.metrics()
                if not args.no_clear and sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")
                print(_render_top(snapshot))
                sys.stdout.flush()
                iterations += 1
                if args.iterations and iterations >= args.iterations:
                    return 0
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, ServiceError) as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 1


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: one request against a running ``repro serve``.

    Prints the full JSON response; exits 0 for 200/206, 1 otherwise, so
    shell scripts can branch on degradation.
    """
    from repro.errors import ServiceError
    from repro.service import ServiceClient

    params = {}
    for kv in args.param or []:
        key, sep, value = kv.partition("=")
        if not sep:
            raise SystemExit(f"--param must look like key=value, got {kv!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value  # bare strings need no quoting
    if args.op == "query" and not (args.graph and args.algorithm):
        raise SystemExit("query op needs GRAPH and ALGORITHM arguments")
    if args.op == "mutate" and not args.graph:
        raise SystemExit("mutate op needs a GRAPH argument")

    def parse_edge(text: str, *, flag: str) -> list:
        parts = text.split(",")
        try:
            if flag == "--insert" and len(parts) == 3:
                return [int(parts[0]), int(parts[1]), float(parts[2])]
            if len(parts) == 2:
                return [int(parts[0]), int(parts[1])]
        except ValueError:
            pass
        raise SystemExit(f"{flag} must look like SRC,DST"
                         + ("[,W]" if flag == "--insert" else "")
                         + f", got {text!r}")

    try:
        with ServiceClient(
            args.host, args.port, timeout=args.connect_timeout
        ) as client:
            if args.op == "query":
                resp = client.query(
                    args.graph,
                    args.algorithm,
                    params,
                    timeout_s=args.timeout,
                    tenant=args.tenant,
                )
            elif args.op == "mutate":
                resp = client.mutate(
                    args.graph,
                    insert=[parse_edge(e, flag="--insert")
                            for e in args.insert or []],
                    remove=[parse_edge(e, flag="--remove")
                            for e in args.remove or []],
                    tenant=args.tenant,
                )
            elif args.op == "metrics" and args.format == "prom":
                resp = client.request({"op": "metrics", "format": "prom"})
            else:
                resp = client.request({"op": args.op})
    except (OSError, ServiceError) as exc:
        print(f"query: {exc}", file=sys.stderr)
        return 1
    ok = resp.get("code") in (200, 206)
    if ok and args.op == "metrics" and args.format == "prom":
        print(resp.get("result", {}).get("text", ""), end="")
        return 0
    print(json.dumps(resp, indent=2, sort_keys=True))
    if ok and args.op == "stats":
        latency = resp.get("result", {}).get("latency_ms") or {}
        if latency:
            print(_render_latency_table(latency), file=sys.stderr)
    return 0 if ok else 1


def cmd_stream(args: argparse.Namespace) -> int:
    """``repro stream``: windowed edge-stream replay with incremental
    queries.

    Generates a seeded R-MAT stream (base prefix + insert/delete mix),
    replays it window by window against a
    :class:`~repro.dynamic.dynamic_graph.DynamicGraph`, runs the
    configured queries incrementally each window, and prints freshness
    (mutate + snapshot + repair) against full-recompute cost.
    ``--check`` additionally verifies every repaired result against the
    from-scratch answer and exits 1 on any divergence.
    """
    from repro.dynamic import EdgeStream, StreamDriver
    from repro.dynamic.stream import STREAM_ALGORITHMS

    algorithms = args.algorithm or list(STREAM_ALGORITHMS)
    stream = EdgeStream.rmat(
        args.scale,
        args.edge_factor,
        base_fraction=args.base_fraction,
        delete_fraction=args.delete_fraction,
        seed=args.seed,
    )
    print(
        f"stream: scale {args.scale} R-MAT, base "
        f"{stream.base.n_vertices} vertices / {stream.base.n_edges} edges, "
        f"{stream.n_events} events, window {args.window}"
    )
    driver = StreamDriver(
        stream,
        algorithms=algorithms,
        source=args.source,
        policy=args.policy,
        window_events=args.window,
        compare_full=not args.no_compare,
        verify=args.check,
    )
    report = driver.run(max_windows=args.windows)
    for w in report.windows:
        parts = []
        for name in report.algorithms:
            q = w["queries"][name]
            cell = f"{name} {q['incremental_seconds'] * 1e3:.1f}ms"
            if "full_seconds" in q:
                cell += f"/{q['full_seconds'] * 1e3:.1f}ms"
            if q.get("matches_full") is False:
                cell += " MISMATCH"
            parts.append(cell)
        print(
            f"  window {w['window']:>3}: +{w['n_inserted']} -{w['n_removed']} "
            f"(epoch {w['epoch']}, mutate {w['mutate_seconds'] * 1e3:.1f}ms, "
            f"snapshot {w['snapshot_seconds'] * 1e3:.1f}ms)  "
            + "  ".join(parts)
        )
    summary = report.summary()
    print(
        f"totals: {summary['n_windows']} windows, {summary['n_events']} "
        f"events, mutate {summary['mutate_seconds'] * 1e3:.1f}ms, "
        f"snapshot {summary['snapshot_seconds'] * 1e3:.1f}ms"
    )
    mismatched = 0
    for name, entry in summary["algorithms"].items():
        line = f"  {name}: incremental {entry['incremental_seconds'] * 1e3:.1f}ms"
        if "full_seconds" in entry:
            line += (
                f", full {entry['full_seconds'] * 1e3:.1f}ms "
                f"({entry['speedup']:.2f}x)"
            )
        if entry.get("mismatched_windows"):
            line += f", {entry['mismatched_windows']} MISMATCHED windows"
            mismatched += entry["mismatched_windows"]
        print(line)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=float))
    if mismatched:
        print("stream: FAILED (incremental != full)", file=sys.stderr)
        return 1
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """``repro table1``: print and verify the capability matrix."""
    from repro.capability import format_table, verify_capabilities

    print(format_table())
    failures = verify_capabilities()
    if failures:
        for f in failures:
            print(f"MISSING: {f}", file=sys.stderr)
        return 1
    print("\nall captured models verified against the codebase")
    return 0


# -- parser --------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Essentials of Parallel Graph Analytics — Python reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a seeded graph")
    p.add_argument("kind", choices=["rmat", "er", "grid", "ws", "ba"])
    p.add_argument("output", help="output path (.npz/.mtx/.gr/anything=edgelist)")
    p.add_argument("--scale", type=int, default=10, help="log2 vertex count")
    p.add_argument("--edge-factor", type=int, default=16)
    p.add_argument("--weighted", action="store_true")
    p.add_argument("--undirected", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("info", help="summarize a graph file")
    p.add_argument("graph")
    p.add_argument("--undirected", action="store_true")
    p.add_argument("--components", action="store_true")
    p.add_argument(
        "--stats",
        action="store_true",
        help="degree skew / diameter estimate / configuration hints",
    )
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("convert", help="transcode between graph formats")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--undirected", action="store_true")
    p.set_defaults(fn=cmd_convert)

    p = sub.add_parser("run", help="run an algorithm")
    p.add_argument(
        "algorithm",
        choices=[
            "sssp", "bfs", "pagerank", "cc", "scc", "tc", "kcore",
            "color", "ppr", "mis", "ktruss", "communities",
        ],
    )
    p.add_argument("graph")
    p.add_argument("--source", type=int, default=0)
    p.add_argument(
        "--policy",
        choices=["seq", "par", "par_nosync", "par_vector", "par_proc"],
        default="par_vector",
    )
    p.add_argument(
        "--direction", choices=["push", "pull", "auto"], default="auto"
    )
    p.add_argument(
        "--backend",
        choices=["native", "linalg", "auto"],
        default="native",
        help="execution backend: frontier enactors (native) or masked "
        "SpMV/SpMSpV matrix products (linalg)",
    )
    p.add_argument("--undirected", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="write the per-vertex result as .npy")
    p.add_argument("--head", type=int, default=0, help="print first N values")
    p.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="fault-injection seed (sssp/bfs/cc; replays a chaos run)",
    )
    p.add_argument(
        "--chaos-rate",
        type=float,
        default=0.0,
        help="per-decision fault probability; 0 disables chaos",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="snapshot state every N supersteps; 0 disables",
    )
    p.add_argument(
        "--retry-attempts",
        type=int,
        default=8,
        help="max attempts per faulted operation under chaos",
    )
    p.add_argument(
        "--trace",
        help="run under the probe and write a Chrome/Perfetto trace here",
    )
    p.add_argument(
        "--events",
        help="run under the probe and write a JSONL event log here",
    )
    _add_ledger_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "profile",
        help="run an algorithm under the observability probe",
    )
    p.add_argument(
        "algorithm",
        choices=[
            "sssp", "sssp_async", "sssp_delta", "bfs", "cc",
            "pagerank", "pregel_pagerank",
        ],
    )
    p.add_argument(
        "graph",
        nargs="?",
        help="graph file (omitted: a seeded grid is generated)",
    )
    p.add_argument(
        "--scale",
        type=int,
        default=12,
        help="log2 vertex count of the generated grid (no graph given)",
    )
    p.add_argument("--source", type=int, default=0)
    p.add_argument(
        "--policy",
        choices=["seq", "par", "par_nosync", "par_vector", "par_proc"],
        default="par_vector",
    )
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--backend",
        choices=["native", "linalg", "auto"],
        default="native",
        help="execution backend (sssp/bfs/cc/pagerank support linalg)",
    )
    p.add_argument("--undirected", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trace", help="write a Chrome/Perfetto trace (open in ui.perfetto.dev)"
    )
    p.add_argument("--events", help="write a JSONL event log")
    p.add_argument(
        "--json",
        action="store_true",
        help="print summary metrics as JSON instead of the table",
    )
    p.add_argument(
        "--no-spans",
        action="store_true",
        help="metrics-only profile (skip span collection)",
    )
    p.add_argument(
        "--top", type=int, default=20, help="span rows in the summary table"
    )
    _add_ledger_args(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "explain",
        help="analyze a trace file or a ledgered run: critical path, "
        "per-layer attribution, imbalance, frontier timeline",
    )
    p.add_argument(
        "target",
        help="a Chrome trace / events JSONL path, or a run id (prefix ok)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument(
        "--timeline-rows",
        type=int,
        default=12,
        help="max frontier-timeline rows in the rendered report",
    )
    p.add_argument("--ledger-dir", help="ledger root (default .repro/runs)")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser(
        "diff",
        help="regression gate: compare two runs or benchmark entries; "
        "exits 1 on regression",
    )
    p.add_argument("baseline", help="run id, ledger record, or BENCH_*.json path")
    p.add_argument("candidate", help="run id, ledger record, or BENCH_*.json path")
    p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative slowdown that counts as a regression (default 0.25)",
    )
    p.add_argument("--ledger-dir", help="ledger root (default .repro/runs)")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("ledger", help="list or show recorded runs")
    p.add_argument("run_id", nargs="?", help="show one record (prefix ok)")
    p.add_argument("--last", type=int, default=10, help="rows to list")
    p.add_argument("--ledger-dir", help="ledger root (default .repro/runs)")
    p.set_defaults(fn=cmd_ledger)

    p = sub.add_parser("partition", help="partition a graph, report quality")
    p.add_argument("graph")
    p.add_argument(
        "--method",
        choices=["random", "contiguous", "ldg", "fennel", "metis"],
        default="metis",
    )
    p.add_argument("--parts", type=int, default=4)
    p.add_argument("--undirected", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="write the assignment as .npy")
    p.set_defaults(fn=cmd_partition)

    p = sub.add_parser(
        "serve",
        help="long-running query daemon: catalog loaded once, deadline-"
        "driven queries over a JSONL socket",
    )
    p.add_argument(
        "--graph",
        action="append",
        metavar="NAME=SPEC",
        help="catalog entry: name=path/to/file, or name=kind:scale with "
        "kind in grid/rmat/er/ws/ba (repeatable)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    p.add_argument(
        "--data-dir",
        help="persistence root: catalog manifest, query journal, query "
        "ledger live here; enables crash recovery on restart",
    )
    p.add_argument("--max-concurrent", type=int, default=4)
    p.add_argument("--max-queue-depth", type=int, default=16)
    p.add_argument(
        "--tenant-limit",
        type=int,
        default=None,
        help="per-tenant concurrent-query cap (default unlimited)",
    )
    p.add_argument(
        "--default-timeout",
        type=float,
        default=30.0,
        help="deadline for queries that do not carry one, seconds",
    )
    p.add_argument("--breaker-threshold", type=int, default=5)
    p.add_argument("--breaker-cooldown", type=float, default=2.0)
    p.add_argument("--cache-ttl", type=float, default=60.0)
    p.add_argument("--retry-attempts", type=int, default=2)
    p.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip per-query run-ledger records",
    )
    p.add_argument(
        "--observe",
        action="store_true",
        help="per-query tracing, latency percentiles, and the incident "
        "flight recorder (metrics op + `repro top` need this)",
    )
    p.add_argument(
        "--flight-capacity",
        type=int,
        default=256,
        help="flight-recorder ring size (recent events kept for "
        "incident dumps)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "query", help="send one request to a running `repro serve`"
    )
    p.add_argument("graph", nargs="?", help="catalog graph name")
    p.add_argument(
        "algorithm",
        nargs="?",
        choices=["pagerank", "ppr", "bfs", "sssp", "cc"],
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="algorithm parameter (JSON value or bare string; repeatable)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="query deadline in seconds (server default applies if unset)",
    )
    p.add_argument("--tenant", default="default")
    p.add_argument(
        "--op",
        choices=[
            "query", "mutate", "ping", "stats", "metrics", "catalog",
            "shutdown",
        ],
        default="query",
        help="non-query ops need no graph/algorithm",
    )
    p.add_argument(
        "--format",
        choices=["json", "prom"],
        default="json",
        help="metrics op only: prom prints the Prometheus text "
        "exposition raw instead of the JSON response",
    )
    p.add_argument(
        "--insert",
        action="append",
        metavar="SRC,DST[,W]",
        help="mutate op: edge to insert (repeatable)",
    )
    p.add_argument(
        "--remove",
        action="append",
        metavar="SRC,DST",
        help="mutate op: edge to remove (repeatable)",
    )
    p.add_argument(
        "--connect-timeout",
        type=float,
        default=60.0,
        help="socket timeout for connecting and reading, seconds",
    )
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a running `repro serve` "
        "(latency percentiles and worker stats need --observe)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between metric scrapes",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after N frames (0 = run until interrupted)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (for logs/CI)",
    )
    p.add_argument(
        "--connect-timeout",
        type=float,
        default=60.0,
        help="socket timeout for connecting and reading, seconds",
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "stream",
        help="replay a windowed edge stream with incremental queries",
    )
    p.add_argument("--scale", type=int, default=10, help="R-MAT scale (2^scale vertices)")
    p.add_argument("--edge-factor", type=int, default=8)
    p.add_argument(
        "--base-fraction",
        type=float,
        default=0.5,
        help="fraction of edges in the initial snapshot",
    )
    p.add_argument(
        "--delete-fraction",
        type=float,
        default=0.2,
        help="deletions interleaved per insert",
    )
    p.add_argument("--window", type=int, default=1024, help="events per window")
    p.add_argument(
        "--windows", type=int, default=None, help="stop after this many windows"
    )
    p.add_argument(
        "--algorithm",
        action="append",
        choices=["bfs", "sssp", "cc", "pagerank"],
        help="queries to run each window (repeatable; default all)",
    )
    p.add_argument("--source", type=int, default=0)
    p.add_argument(
        "--policy",
        choices=["seq", "par", "par_vector", "par_proc"],
        default="par_vector",
    )
    p.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the full-recompute baseline each window",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="verify incremental == full every window; exit 1 on mismatch",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.set_defaults(fn=cmd_stream)

    p = sub.add_parser("table1", help="print the capability matrix")
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser(
        "verify",
        help="conformance harness: differential matrix, metamorphic "
        "oracles, race checker; exits 1 on any divergence",
    )
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick",
        action="store_true",
        help="small graphs, pinned secondary axes (the default; CI mode)",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="all pool graphs and the full variant product (nightly mode)",
    )
    p.add_argument(
        "--algo",
        action="append",
        help="restrict to this algorithm (repeatable)",
    )
    p.add_argument(
        "--graph",
        action="append",
        help="restrict to this pool graph (repeatable)",
    )
    p.add_argument(
        "--policy",
        action="append",
        choices=["seq", "par", "par_nosync", "par_vector", "par_proc", "async"],
        help="matrix only: restrict the policy axis (repeatable)",
    )
    p.add_argument(
        "--direction",
        action="append",
        choices=["push", "pull", "auto"],
        help="matrix only: restrict the direction axis (repeatable)",
    )
    p.add_argument(
        "--representation",
        action="append",
        choices=["sparse", "dense", "auto"],
        help="matrix only: restrict the frontier-representation axis",
    )
    p.add_argument(
        "--fused",
        choices=["on", "off", "both"],
        default="both",
        help="matrix only: restrict the operator-fusion axis",
    )
    p.add_argument(
        "--backend",
        choices=["native", "linalg"],
        help="restrict the execution-backend axis (matrix slice, or the "
        "metamorphic relations when combined with --metamorphic)",
    )
    p.add_argument(
        "--metamorphic",
        action="store_true",
        help="run only the metamorphic suite",
    )
    p.add_argument(
        "--dynamic",
        action="store_true",
        help="run only the dynamic (incremental==full) oracle",
    )
    p.add_argument(
        "--races",
        action="store_true",
        help="run only the race checker",
    )
    p.add_argument(
        "--no-matrix",
        action="store_true",
        help="skip the differential matrix",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trials",
        type=int,
        default=3,
        help="perturbed runs per (algorithm, graph) in the race checker",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="list oracle-registered algorithms and pool graphs",
    )
    p.add_argument("--json", action="store_true", help="machine-readable report")
    _add_ledger_args(p)
    p.set_defaults(fn=cmd_verify)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
