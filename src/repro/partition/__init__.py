"""Partitioning heuristics — the fourth TLAV pillar (§III-D).

The paper leaves this pillar "largely unexplored" but names the two
models Table I captures: **random partitioning** and **METIS**.  We
implement both — METIS as a from-scratch multilevel heuristic
(heavy-edge-matching coarsening, greedy initial assignment,
Fiduccia–Mattheyses boundary refinement; see the DESIGN.md substitution
table) — plus contiguous/round-robin chunking and the streaming
heuristics (LDG, Fennel) as an extension.  Table I's "ignored" models
(vertex cuts, dynamic repartitioning) remain out of scope by design.

A partition is just a vertex->part assignment array; the
:class:`~repro.partition.base.PartitionAssignment` wrapper adds the
quality metrics (edge cut, balance) the partitioning bench reports, and
plugs directly into the mailbox router / Pregel engine as ``owner_of``.
"""

from repro.partition.base import PartitionAssignment
from repro.partition.metrics import edge_cut, load_balance, communication_volume
from repro.partition.random_partition import random_partition
from repro.partition.chunking import contiguous_partition, round_robin_partition
from repro.partition.metis_like import metis_like_partition
from repro.partition.streaming import ldg_partition, fennel_partition

__all__ = [
    "PartitionAssignment",
    "edge_cut",
    "load_balance",
    "communication_volume",
    "random_partition",
    "contiguous_partition",
    "round_robin_partition",
    "metis_like_partition",
    "ldg_partition",
    "fennel_partition",
]
