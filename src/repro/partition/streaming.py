"""Streaming (one-pass) partitioning heuristics: LDG and Fennel.

Table I lists "streaming" among the models the paper's abstraction does
*not* capture; we implement the two standard heuristics anyway as the
documented extension (DESIGN.md), because they slot naturally into the
same ``PartitionAssignment`` interface and let the bench show where
one-pass quality lands between random and multilevel.

* **LDG** (Linear Deterministic Greedy, Stanton & Kliot 2012): place each
  arriving vertex in the part holding most of its already-placed
  neighbors, damped by a multiplicative balance penalty ``1 - load/cap``.
* **Fennel** (Tsourakakis et al. 2014): same greedy form with an
  additive interpolated cost ``-alpha * gamma * load^(gamma-1)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import PartitionAssignment
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int


def _stream_order(n: int, order: str, rng: np.random.Generator) -> np.ndarray:
    if order == "natural":
        return np.arange(n, dtype=np.int64)
    if order == "random":
        return rng.permutation(n).astype(np.int64)
    raise ValueError(f"order must be 'natural' or 'random', got {order!r}")


def ldg_partition(
    graph: Graph,
    n_parts: int,
    *,
    capacity_slack: float = 1.1,
    order: str = "random",
    seed: SeedLike = None,
) -> PartitionAssignment:
    """Linear Deterministic Greedy one-pass partitioning."""
    n_parts = check_nonnegative_int(n_parts, "n_parts")
    if n_parts == 0:
        raise ValueError("n_parts must be >= 1")
    n = graph.n_vertices
    rng = resolve_rng(seed)
    csr = graph.csr()
    parts = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(n_parts, dtype=np.float64)
    capacity = max(1.0, capacity_slack * n / n_parts)
    for v in _stream_order(n, order, rng):
        v = int(v)
        nbr_parts = parts[csr.get_neighbors(v)]
        placed = nbr_parts[nbr_parts >= 0]
        affinity = np.bincount(placed, minlength=n_parts).astype(np.float64)
        score = affinity * (1.0 - loads / capacity)
        # Full parts are never eligible.
        score[loads >= capacity] = -np.inf
        best = float(score.max())
        candidates = np.nonzero(score == best)[0]
        target = int(candidates[np.argmin(loads[candidates])])
        parts[v] = target
        loads[target] += 1.0
    return PartitionAssignment(parts, n_parts)


def fennel_partition(
    graph: Graph,
    n_parts: int,
    *,
    gamma: float = 1.5,
    alpha: Optional[float] = None,
    order: str = "random",
    seed: SeedLike = None,
) -> PartitionAssignment:
    """Fennel one-pass partitioning.

    ``alpha`` defaults to the paper's recommendation
    ``m * k^(gamma-1) / n^gamma``.
    """
    n_parts = check_nonnegative_int(n_parts, "n_parts")
    if n_parts == 0:
        raise ValueError("n_parts must be >= 1")
    n = graph.n_vertices
    m = graph.n_edges
    if alpha is None:
        alpha = (
            m * (n_parts ** (gamma - 1.0)) / (n**gamma) if n else 1.0
        )
    rng = resolve_rng(seed)
    csr = graph.csr()
    parts = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(n_parts, dtype=np.float64)
    for v in _stream_order(n, order, rng):
        v = int(v)
        nbr_parts = parts[csr.get_neighbors(v)]
        placed = nbr_parts[nbr_parts >= 0]
        affinity = np.bincount(placed, minlength=n_parts).astype(np.float64)
        cost = affinity - alpha * gamma * np.power(loads, gamma - 1.0)
        best = float(cost.max())
        candidates = np.nonzero(cost == best)[0]
        target = int(candidates[np.argmin(loads[candidates])])
        parts[v] = target
        loads[target] += 1.0
    return PartitionAssignment(parts, n_parts)
