"""Index-based partitionings: contiguous ranges and round-robin.

Contiguous chunks are the implicit partitioning of 1-D data
decompositions (and surprisingly strong on lattice graphs, whose vertex
numbering is spatially coherent); round-robin is the worst case for
locality and serves as the bench's anti-baseline.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import PartitionAssignment
from repro.utils.validation import check_nonnegative_int


def contiguous_partition(graph: Graph, n_parts: int) -> PartitionAssignment:
    """Split ``0..n-1`` into ``n_parts`` near-equal contiguous ranges."""
    n_parts = check_nonnegative_int(n_parts, "n_parts")
    n = graph.n_vertices
    if n_parts == 0 or n == 0:
        return PartitionAssignment(np.zeros(n, dtype=np.int64), max(n_parts, 1))
    bounds = np.linspace(0, n, n_parts + 1).astype(np.int64)
    assignment = np.zeros(n, dtype=np.int64)
    for p in range(n_parts):
        assignment[bounds[p] : bounds[p + 1]] = p
    return PartitionAssignment(assignment, n_parts)


def round_robin_partition(graph: Graph, n_parts: int) -> PartitionAssignment:
    """Assign vertex v to part ``v % n_parts``."""
    n_parts = check_nonnegative_int(n_parts, "n_parts")
    n = graph.n_vertices
    if n_parts == 0:
        return PartitionAssignment(np.zeros(n, dtype=np.int64), 1)
    return PartitionAssignment(
        np.arange(n, dtype=np.int64) % n_parts, n_parts
    )
