"""A from-scratch multilevel k-way partitioner in the METIS family.

The paper's Table I names METIS [Karypis & Kumar 1998] as the captured
partitioning heuristic; with no external METIS available we implement
the same three-phase multilevel scheme (DESIGN.md substitution table):

1. **Coarsening** — repeated heavy-edge matching: each vertex matches
   its heaviest-edge unmatched neighbor; matched pairs merge into one
   coarse vertex carrying summed vertex weight and summed parallel-edge
   weights.  Stops when the graph is small (≤ ``coarsen_to``) or a pass
   shrinks it by <10% (diminishing returns).
2. **Initial partitioning** — greedy growing on the coarsest graph:
   vertices in heavy-first order go to the part that maximizes local
   edge affinity subject to the balance cap.
3. **Uncoarsening + refinement** — project the assignment back level by
   level, after each projection running Fiduccia–Mattheyses-style
   boundary passes: move the boundary vertex with the best positive
   gain (external minus internal edge weight) whose move keeps balance,
   repeating until a pass finds no improving move.

This is a heuristic re-implementation, not a METIS clone; the
partitioning bench shows it reproduces the qualitative result that
matters to the paper's claim — edge cuts far below random at comparable
balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import PartitionAssignment
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int


@dataclass
class _Level:
    """One coarsening level: adjacency (CSR arrays) + vertex weights +
    the fine->coarse projection map."""

    n: int
    offsets: np.ndarray
    neighbors: np.ndarray
    edge_weights: np.ndarray
    vertex_weights: np.ndarray
    fine_to_coarse: Optional[np.ndarray]  # None at the finest level


def _level_from_graph(graph: Graph) -> _Level:
    csr = graph.csr()
    return _Level(
        n=graph.n_vertices,
        offsets=csr.row_offsets.astype(np.int64),
        neighbors=csr.column_indices.astype(np.int64),
        edge_weights=np.ones(csr.get_num_edges(), dtype=np.float64),
        vertex_weights=np.ones(graph.n_vertices, dtype=np.float64),
        fine_to_coarse=None,
    )


def _heavy_edge_matching(level: _Level, rng: np.random.Generator) -> np.ndarray:
    """Return match[v] = partner (or v itself when unmatched)."""
    n = level.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        v = int(v)
        if match[v] != -1:
            continue
        best = -1
        best_w = -1.0
        for k in range(int(level.offsets[v]), int(level.offsets[v + 1])):
            u = int(level.neighbors[k])
            if u == v or match[u] != -1:
                continue
            w = float(level.edge_weights[k])
            if w > best_w:
                best_w = w
                best = u
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    return match


def _coarsen(level: _Level, rng: np.random.Generator) -> Optional[_Level]:
    match = _heavy_edge_matching(level, rng)
    # Coarse ids: one per matched pair / singleton, pair leader = min id.
    leader = np.minimum(np.arange(level.n, dtype=np.int64), match)
    uniq, coarse_of = np.unique(leader, return_inverse=True)
    n_coarse = uniq.shape[0]
    if n_coarse >= level.n * 0.9:  # pass stalled; stop coarsening
        return None
    # Aggregate edges: (coarse_src, coarse_dst) with summed weights,
    # self-edges dropped.
    src = np.repeat(
        np.arange(level.n, dtype=np.int64), np.diff(level.offsets)
    )
    csrc = coarse_of[src]
    cdst = coarse_of[level.neighbors]
    keep = csrc != cdst
    csrc, cdst, w = csrc[keep], cdst[keep], level.edge_weights[keep]
    keys = csrc * n_coarse + cdst
    uniq_keys, inverse = np.unique(keys, return_inverse=True)
    # `inverse` is a dense 0..len(uniq_keys)-1 index: bincount beats
    # ufunc.at by an order of magnitude on this shape.
    agg_w = np.bincount(inverse, weights=w, minlength=uniq_keys.shape[0])
    agg_src = (uniq_keys // n_coarse).astype(np.int64)
    agg_dst = (uniq_keys % n_coarse).astype(np.int64)
    counts = np.bincount(agg_src, minlength=n_coarse)
    offsets = np.zeros(n_coarse + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # uniq_keys are sorted by (src, dst) already.
    vertex_weights = np.bincount(
        coarse_of, weights=level.vertex_weights, minlength=n_coarse
    )
    return _Level(
        n=n_coarse,
        offsets=offsets,
        neighbors=agg_dst,
        edge_weights=agg_w,
        vertex_weights=vertex_weights,
        fine_to_coarse=coarse_of,
    )


def _initial_partition(
    level: _Level, n_parts: int, max_load: float, rng: np.random.Generator
) -> np.ndarray:
    """Greedy growing: heavy vertices first, each to its best-affinity
    part under the balance cap."""
    n = level.n
    parts = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(n_parts, dtype=np.float64)
    order = np.argsort(-level.vertex_weights, kind="stable")
    affinity = np.zeros(n_parts, dtype=np.float64)
    for v in order:
        v = int(v)
        affinity[:] = 0.0
        for k in range(int(level.offsets[v]), int(level.offsets[v + 1])):
            u = int(level.neighbors[k])
            if parts[u] >= 0:
                affinity[parts[u]] += level.edge_weights[k]
        vw = level.vertex_weights[v]
        feasible = loads + vw <= max_load
        if not np.any(feasible):
            # Balance cap saturated everywhere: least-loaded part.
            target = int(np.argmin(loads))
        else:
            masked = np.where(feasible, affinity, -np.inf)
            best = float(masked.max())
            candidates = np.nonzero(masked == best)[0]
            # Tie-break toward the lighter part for balance.
            target = int(candidates[np.argmin(loads[candidates])])
        parts[v] = target
        loads[target] += vw
    return parts


def _fm_refine(
    level: _Level,
    parts: np.ndarray,
    n_parts: int,
    max_load: float,
    *,
    max_passes: int = 4,
) -> None:
    """In-place FM-style boundary refinement (greedy positive-gain moves)."""
    loads = np.bincount(
        parts, weights=level.vertex_weights, minlength=n_parts
    )
    for _pass in range(max_passes):
        moved = 0
        for v in range(level.n):
            p = int(parts[v])
            start, stop = int(level.offsets[v]), int(level.offsets[v + 1])
            if start == stop:
                continue
            # Per-part incident edge weight.
            conn = {}
            for k in range(start, stop):
                q = int(parts[level.neighbors[k]])
                conn[q] = conn.get(q, 0.0) + float(level.edge_weights[k])
            internal = conn.get(p, 0.0)
            best_gain = 0.0
            best_part = -1
            vw = float(level.vertex_weights[v])
            for q, external in conn.items():
                if q == p:
                    continue
                gain = external - internal
                if gain > best_gain and loads[q] + vw <= max_load:
                    best_gain = gain
                    best_part = q
            if best_part >= 0:
                parts[v] = best_part
                loads[p] -= vw
                loads[best_part] += vw
                moved += 1
        if moved == 0:
            return


def metis_like_partition(
    graph: Graph,
    n_parts: int,
    *,
    balance_factor: float = 1.05,
    coarsen_to: int = 200,
    refine_passes: int = 4,
    seed: SeedLike = None,
) -> PartitionAssignment:
    """Multilevel k-way partition (see module docstring).

    Parameters
    ----------
    balance_factor:
        Allowed max-load over perfect balance (METIS's ubfactor analog).
    coarsen_to:
        Stop coarsening when ≤ ``max(coarsen_to, 4·n_parts)`` coarse
        vertices remain.
    refine_passes:
        FM passes per uncoarsening level.
    """
    n_parts = check_nonnegative_int(n_parts, "n_parts")
    if n_parts == 0:
        raise ValueError("n_parts must be >= 1")
    n = graph.n_vertices
    if n == 0 or n_parts == 1:
        return PartitionAssignment(np.zeros(n, dtype=np.int64), max(n_parts, 1))
    rng = resolve_rng(seed)

    # Phase 1: coarsen.
    levels: List[_Level] = [_level_from_graph(graph)]
    floor = max(coarsen_to, 4 * n_parts)
    while levels[-1].n > floor:
        nxt = _coarsen(levels[-1], rng)
        if nxt is None:
            break
        levels.append(nxt)

    total_weight = float(levels[0].vertex_weights.sum())
    max_load = balance_factor * total_weight / n_parts

    # Phase 2: initial partition at the coarsest level.
    parts = _initial_partition(levels[-1], n_parts, max_load, rng)
    _fm_refine(levels[-1], parts, n_parts, max_load, max_passes=refine_passes)

    # Phase 3: project back and refine at every level.
    for li in range(len(levels) - 1, 0, -1):
        proj = levels[li].fine_to_coarse
        parts = parts[proj]
        _fm_refine(
            levels[li - 1], parts, n_parts, max_load, max_passes=refine_passes
        )
    return PartitionAssignment(parts, n_parts)
