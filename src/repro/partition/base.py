"""Partition assignment container and validation."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE


class PartitionAssignment:
    """A vertex -> part mapping with cached quality metrics.

    Use as ``owner_of`` for :class:`~repro.comm.mailbox.MailboxRouter`
    and :class:`~repro.comm.pregel.PregelEngine` to simulate running the
    graph distributed across ``n_parts`` machines.
    """

    def __init__(self, assignment: np.ndarray, n_parts: int) -> None:
        self.assignment = np.asarray(assignment, dtype=np.int64).ravel()
        self.n_parts = int(n_parts)
        if self.n_parts < 1:
            raise PartitionError(f"n_parts must be >= 1, got {self.n_parts}")
        if self.assignment.size:
            lo = int(self.assignment.min())
            hi = int(self.assignment.max())
            if lo < 0 or hi >= self.n_parts:
                raise PartitionError(
                    f"part ids must lie in [0, {self.n_parts}); found "
                    f"range [{lo}, {hi}]"
                )

    @property
    def n_vertices(self) -> int:
        return self.assignment.shape[0]

    def part_of(self, vertex: int) -> int:
        """Owning part of one vertex."""
        return int(self.assignment[vertex])

    def vertices_of(self, part: int) -> np.ndarray:
        """All vertices assigned to ``part``."""
        if not (0 <= part < self.n_parts):
            raise PartitionError(f"part {part} out of range [0, {self.n_parts})")
        return np.nonzero(self.assignment == part)[0].astype(VERTEX_DTYPE)

    def part_sizes(self) -> np.ndarray:
        """Vertex count per part."""
        return np.bincount(self.assignment, minlength=self.n_parts)

    def subgraphs(self, graph: Graph) -> List:
        """Induced subgraph (plus id map) per part — partition-local
        processing, as §III-D's 'corresponding partitioned sub-graph'."""
        return [graph.induced_subgraph(self.vertices_of(p)) for p in range(self.n_parts)]

    def __repr__(self) -> str:
        sizes = self.part_sizes()
        return (
            f"PartitionAssignment(n_vertices={self.n_vertices}, "
            f"n_parts={self.n_parts}, sizes={sizes.tolist()})"
        )
