"""Random partitioning — Table I's first captured heuristic.

The zero-information baseline: balanced by construction in expectation,
but cuts a ``(k-1)/k`` fraction of all edges, which is what the
partitioning bench shows METIS-like beating by a wide margin.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import PartitionAssignment
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int


def random_partition(
    graph: Graph,
    n_parts: int,
    *,
    balanced: bool = True,
    seed: SeedLike = None,
) -> PartitionAssignment:
    """Assign each vertex to a uniformly random part.

    ``balanced=True`` (default) draws a random permutation and splits it
    into exactly-even parts; ``False`` draws i.i.d. parts (binomially
    balanced only).
    """
    n_parts = check_nonnegative_int(n_parts, "n_parts")
    rng = resolve_rng(seed)
    n = graph.n_vertices
    if balanced:
        perm = rng.permutation(n)
        assignment = np.empty(n, dtype=np.int64)
        # Positions in the shuffled order map round-robin onto parts.
        assignment[perm] = np.arange(n, dtype=np.int64) % n_parts
    else:
        assignment = rng.integers(0, n_parts, size=n)
    return PartitionAssignment(assignment, n_parts)
