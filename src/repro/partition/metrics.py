"""Partition quality metrics: what "METIS beats random" is measured by."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.partition.base import PartitionAssignment


def edge_cut(graph: Graph, partition: PartitionAssignment) -> int:
    """Number of edges whose endpoints live in different parts.

    For undirected graphs (both arcs stored) each cut undirected edge is
    counted twice; comparisons between heuristics are unaffected.
    """
    coo = graph.coo()
    parts = partition.assignment
    return int(np.count_nonzero(parts[coo.rows] != parts[coo.cols]))


def load_balance(partition: PartitionAssignment) -> float:
    """Max part size over mean part size; 1.0 is perfect balance."""
    sizes = partition.part_sizes().astype(np.float64)
    mean = sizes.mean()
    if mean == 0:
        return 1.0
    return float(sizes.max() / mean)


def communication_volume(graph: Graph, partition: PartitionAssignment) -> int:
    """Total communication volume: for each vertex, the number of
    *distinct remote parts* among its neighbors — the messages a
    superstep must actually send when combiners collapse duplicates."""
    coo = graph.coo()
    parts = partition.assignment
    src_part = parts[coo.rows]
    dst_part = parts[coo.cols]
    remote = src_part != dst_part
    if not np.any(remote):
        return 0
    # Unique (source vertex, destination part) pairs among remote edges.
    keys = coo.rows[remote].astype(np.int64) * partition.n_parts + dst_part[remote]
    return int(np.unique(keys).shape[0])
