"""repro — a Python reproduction of *Essentials of Parallel Graph
Analytics* (Osama, Porumbescu, Owens; IPDPSW 2022).

The library implements the paper's native-graph abstraction from its
essential components:

1. **Graph data structure** with interchangeable underlying
   representations (:mod:`repro.graph`): CSR (push), CSC (pull), COO,
   adjacency list — one graph-centric API over all of them.
2. **Frontiers** (:mod:`repro.frontier`): sparse vector, dense bitmap,
   asynchronous queue, edge frontier — one active-set interface.
3. **Operators** (:mod:`repro.operators`): advance / filter / for-each /
   reduce / uniquify / intersection, each overloaded on execution
   policies (:mod:`repro.execution`): ``seq``, ``par``, ``par_nosync``,
   ``par_vector``, ``par_proc``.
4. **Iterative loops with convergence conditions** (:mod:`repro.loop`):
   BSP and asynchronous enactors.

plus the communication substrate (:mod:`repro.comm` — mailbox routing,
Pregel vertex programs), partitioning heuristics (:mod:`repro.partition`),
the algorithm suite (:mod:`repro.algorithms`), textbook baselines
(:mod:`repro.baselines`), the executable Table I
(:mod:`repro.capability`), and a fault-tolerance layer riding the loop
structure (:mod:`repro.resilience` — chaos injection, retry,
checkpoint/resume, worker supervision).

Quickstart (Listing 4 in one call)::

    from repro import generators, sssp, par_vector
    g = generators.rmat(10, 16, weighted=True, seed=7)
    result = sssp(g, source=0, policy=par_vector)
    print(result.distances[:8], result.stats.num_iterations)
"""

from repro import graph
from repro.graph import (
    Graph,
    as_undirected_simple,
    from_edge_array,
    from_edge_list,
    from_csr_arrays,
    from_scipy_sparse,
    from_networkx,
)
from repro.graph import generators
from repro.frontier import (
    SparseFrontier,
    DenseFrontier,
    AsyncQueueFrontier,
    EdgeFrontier,
)
from repro.execution import seq, par, par_nosync, par_proc, par_vector
from repro.operators import (
    neighbors_expand,
    filter_frontier,
    for_each,
    reduce_values,
    uniquify,
)
from repro.loop import Enactor, AsyncEnactor
from repro.resilience import FaultInjector, ResiliencePolicy, RetryPolicy
from repro.algorithms import (
    sssp,
    sssp_async,
    sssp_delta_stepping,
    bfs,
    pagerank,
    connected_components,
    betweenness_centrality,
    triangle_count,
    kcore_decomposition,
    graph_coloring,
    spmv,
    hits,
    boruvka_mst,
)
from repro.capability import TABLE_I, verify_capabilities

__version__ = "1.0.0"

__all__ = [
    "graph",
    "Graph",
    "as_undirected_simple",
    "from_edge_array",
    "from_edge_list",
    "from_csr_arrays",
    "from_scipy_sparse",
    "from_networkx",
    "generators",
    "SparseFrontier",
    "DenseFrontier",
    "AsyncQueueFrontier",
    "EdgeFrontier",
    "seq",
    "par",
    "par_nosync",
    "par_proc",
    "par_vector",
    "neighbors_expand",
    "filter_frontier",
    "for_each",
    "reduce_values",
    "uniquify",
    "Enactor",
    "AsyncEnactor",
    "FaultInjector",
    "ResiliencePolicy",
    "RetryPolicy",
    "sssp",
    "sssp_async",
    "sssp_delta_stepping",
    "bfs",
    "pagerank",
    "connected_components",
    "betweenness_centrality",
    "triangle_count",
    "kcore_decomposition",
    "graph_coloring",
    "spmv",
    "hits",
    "boruvka_mst",
    "TABLE_I",
    "verify_capabilities",
    "__version__",
]
