"""Work accounting: edges touched, frontier sizes, per-iteration stats.

The asynchronous execution path additionally uses :class:`WorkCounter` for
termination detection — the classic "count outstanding tasks; quiesce when
zero" scheme the Atos scheduler [Chen et al. 2021] relies on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Process-wide forwarding hook the observability layer installs: while a
#: probe is ambient, every ``ResilienceCounters.increment`` also lands in
#: the probe's MetricsRegistry under the same name.  A plain module
#: global (not observability imports) so ``utils`` stays dependency-free
#: and the un-probed path costs a single ``is None`` check.
_metrics_sink: Optional[Callable[[str, int], None]] = None


def set_metrics_sink(sink: Optional[Callable[[str, int], None]]) -> None:
    """Install (or with ``None`` remove) the counter-forwarding hook.

    Called by :func:`repro.observability.probe.install_probe`; user code
    normally never touches this directly.
    """
    global _metrics_sink
    _metrics_sink = sink


class WorkCounter:
    """Thread-safe outstanding-work counter with quiescence signalling.

    Workers call :meth:`add` when they enqueue tasks and :meth:`done` when a
    task retires.  :meth:`wait_for_quiescence` blocks until the count drops
    to zero — the asynchronous loop's convergence condition.
    """

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError("initial count must be >= 0")
        self._count = initial
        self._lock = threading.Lock()
        self._zero = threading.Condition(self._lock)

    def add(self, n: int = 1) -> None:
        """Register ``n`` newly enqueued work items."""
        if n < 0:
            raise ValueError("cannot add negative work; use done()")
        with self._lock:
            self._count += n

    def done(self, n: int = 1) -> None:
        """Retire ``n`` work items; signals quiescence at zero."""
        with self._lock:
            self._count -= n
            if self._count < 0:
                self._count = 0
                raise RuntimeError("WorkCounter went negative: done() without add()")
            if self._count == 0:
                self._zero.notify_all()

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._count

    def wait_for_quiescence(self, timeout: float | None = None) -> bool:
        """Block until no work is outstanding.  Returns ``False`` on timeout."""
        with self._lock:
            return self._zero.wait_for(lambda: self._count == 0, timeout=timeout)


#: Canonical counter names the resilience layer reports.  Kept in one
#: place so tests, docs, and the CLI agree on spelling.
RESILIENCE_COUNTER_NAMES = (
    "faults_injected",
    "tasks_retried",
    "retries_exhausted",
    "checkpoints_saved",
    "checkpoints_restored",
    "messages_dropped",
    "messages_duplicated",
    "messages_delayed",
    "messages_redelivered",
    "workers_restarted",
    "stalls_detected",
    "parallel_failures",
    "degraded_runs",
    "io_faults",
)


class ResilienceCounters:
    """Thread-safe named event counters for the fault-tolerance layer.

    Retry wrappers, checkpoint stores, the chaos injector, and worker
    supervision all report through one of these, so a run's full
    resilience activity (faults seen, retries spent, checkpoints taken,
    workers restarted, ...) is inspectable in one place after the fact.
    Unknown names are permitted — the canonical set is
    :data:`RESILIENCE_COUNTER_NAMES`.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, n: int = 1) -> None:
        """Add ``n`` occurrences of the named event.

        While an observability probe is ambient the count is mirrored
        into its metrics registry under the same name (see
        :func:`set_metrics_sink`), which is how the resilience layer's
        telemetry and the loop/operator telemetry share one sink.
        """
        if n < 0:
            raise ValueError(f"cannot count negative events, got {n}")
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n
        sink = _metrics_sink
        if sink is not None:
            sink(name, n)

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of every nonzero counter."""
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self._counts.clear()

    def __repr__(self) -> str:
        return f"ResilienceCounters({self.as_dict()!r})"


@dataclass
class IterationStats:
    """Per-iteration record emitted by enactors.

    ``frontier_size`` is the number of active elements entering the
    iteration; ``edges_touched`` the number of edges the advance examined;
    ``seconds`` the superstep wall time.
    """

    iteration: int
    frontier_size: int
    edges_touched: int
    seconds: float


@dataclass
class RunStats:
    """Aggregated stats for one full algorithm run."""

    iterations: List[IterationStats] = field(default_factory=list)
    converged: bool = False

    def record(self, stats: IterationStats) -> None:
        """Append one iteration record."""
        self.iterations.append(stats)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_edges_touched(self) -> int:
        return sum(s.edges_touched for s in self.iterations)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.iterations)

    @property
    def mteps(self) -> float:
        """Millions of traversed edges per second (0 when untimed)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.total_edges_touched / self.total_seconds / 1e6

    def frontier_profile(self) -> Dict[int, int]:
        """Map iteration index -> frontier size (the BFS 'bell curve')."""
        return {s.iteration: s.frontier_size for s in self.iterations}
