"""Seeded random number generation helpers.

Every stochastic component in the library (graph generators, random
partitioners, workload samplers) accepts a ``seed`` that may be ``None``,
an integer, or an existing :class:`numpy.random.Generator`.  Routing all
of them through :func:`resolve_rng` keeps experiments reproducible and
lets a single seed drive a whole benchmark sweep deterministically.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    * ``None`` → fresh nondeterministic generator.
    * ``int`` / :class:`numpy.random.SeedSequence` → seeded generator.
    * existing :class:`numpy.random.Generator` → returned unchanged, so a
      caller can thread one generator through a pipeline of stochastic
      steps.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used by parallel workers so each worker owns a private stream — sharing
    one ``Generator`` across threads is not safe, and splitting by
    ``SeedSequence.spawn`` keeps the streams independent regardless of how
    work is scheduled.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream so the
        # parent remains usable afterwards.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
