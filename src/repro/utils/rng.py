"""Seeded random number generation helpers.

Every stochastic component in the library (graph generators, random
partitioners, workload samplers) accepts a ``seed`` that may be ``None``,
an integer, or an existing :class:`numpy.random.Generator`.  Routing all
of them through :func:`resolve_rng` keeps experiments reproducible and
lets a single seed drive a whole benchmark sweep deterministically.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

#: Ambient default seed consulted when a caller passes ``seed=None``.
#: ``None`` (the normal state) keeps ``None`` nondeterministic; the test
#: harness pins it per-test so "unseeded" code paths replay exactly.
_DEFAULT_SEED: Optional[int] = None
_DEFAULT_DRAWS: int = 0


def set_default_seed(seed: Optional[int]) -> None:
    """Pin (or with ``None`` unpin) the ambient seed for ``seed=None``.

    Each ``resolve_rng(None)`` under a pinned seed yields a *distinct*
    child stream (spawned off one :class:`~numpy.random.SeedSequence`),
    so two unseeded components don't accidentally share randomness — but
    the whole sequence of streams is a pure function of the pinned seed
    and call order, which is what per-test replay needs.
    """
    global _DEFAULT_SEED, _DEFAULT_DRAWS
    _DEFAULT_SEED = None if seed is None else int(seed)
    _DEFAULT_DRAWS = 0


def get_default_seed() -> Optional[int]:
    """The currently pinned ambient seed, or ``None``."""
    return _DEFAULT_SEED


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    * ``None`` → fresh nondeterministic generator, unless an ambient
      default seed is pinned (:func:`set_default_seed`), in which case a
      deterministic child stream of that seed.
    * ``int`` / :class:`numpy.random.SeedSequence` → seeded generator.
    * existing :class:`numpy.random.Generator` → returned unchanged, so a
      caller can thread one generator through a pipeline of stochastic
      steps.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None and _DEFAULT_SEED is not None:
        global _DEFAULT_DRAWS
        sequence = np.random.SeedSequence(
            entropy=_DEFAULT_SEED, spawn_key=(_DEFAULT_DRAWS,)
        )
        _DEFAULT_DRAWS += 1
        return np.random.default_rng(sequence)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used by parallel workers so each worker owns a private stream — sharing
    one ``Generator`` across threads is not safe, and splitting by
    ``SeedSequence.spawn`` keeps the streams independent regardless of how
    work is scheduled.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream so the
        # parent remains usable afterwards.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
