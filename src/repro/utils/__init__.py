"""Shared utilities: timing, RNG management, validation, counters."""

from repro.utils.rng import resolve_rng, spawn_rngs
from repro.utils.timing import Timer, WallClock
from repro.utils.counters import (
    IterationStats,
    ResilienceCounters,
    WorkCounter,
)
from repro.utils.validation import (
    check_nonnegative_int,
    check_probability,
    check_vertex_in_range,
)

__all__ = [
    "resolve_rng",
    "spawn_rngs",
    "Timer",
    "WallClock",
    "WorkCounter",
    "IterationStats",
    "ResilienceCounters",
    "check_nonnegative_int",
    "check_probability",
    "check_vertex_in_range",
]
