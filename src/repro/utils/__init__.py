"""Shared utilities: timing, RNG management, validation, counters."""

from repro.utils.rng import (
    get_default_seed,
    resolve_rng,
    set_default_seed,
    spawn_rngs,
)
from repro.utils.timing import Timer, WallClock
from repro.utils.counters import (
    IterationStats,
    ResilienceCounters,
    WorkCounter,
)
from repro.utils.validation import (
    check_nonnegative_int,
    check_probability,
    check_vertex_in_range,
)

__all__ = [
    "get_default_seed",
    "resolve_rng",
    "set_default_seed",
    "spawn_rngs",
    "Timer",
    "WallClock",
    "WorkCounter",
    "IterationStats",
    "ResilienceCounters",
    "check_nonnegative_int",
    "check_probability",
    "check_vertex_in_range",
]
