"""Argument validation helpers shared across subsystems."""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import FrontierError


def check_nonnegative_int(value, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_vertex_in_range(vertex, n_vertices: int) -> int:
    """Validate a scalar vertex id against the graph size."""
    if isinstance(vertex, bool) or not isinstance(
        vertex, (numbers.Integral, np.integer)
    ):
        raise TypeError(f"vertex id must be an integer, got {type(vertex).__name__}")
    v = int(vertex)
    if not (0 <= v < n_vertices):
        raise FrontierError(f"vertex {v} out of range [0, {n_vertices})")
    return v


def check_vertices_in_range(vertices: np.ndarray, n_vertices: int) -> None:
    """Validate an array of vertex ids against the graph size."""
    if vertices.size == 0:
        return
    lo = int(vertices.min())
    hi = int(vertices.max())
    if lo < 0 or hi >= n_vertices:
        raise FrontierError(
            f"vertex ids must lie in [0, {n_vertices}); got range [{lo}, {hi}]"
        )
