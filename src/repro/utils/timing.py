"""Lightweight wall-clock timing used by enactors and benchmarks.

The iterative loop structure (essential component 4 in the paper) reports
per-superstep timings; the benchmark harness aggregates them into the
MTEPS-style rows the evaluation tables print.  ``perf_counter`` is used
throughout — monotonic and the highest-resolution clock Python exposes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional


class WallClock:
    """A start/stop stopwatch accumulating total elapsed seconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "WallClock":
        """Begin timing; returns self for chaining."""
        if self._start is not None:
            raise RuntimeError("WallClock already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing; returns accumulated elapsed seconds."""
        if self._start is None:
            raise RuntimeError("WallClock is not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def reset(self) -> None:
        """Zero the accumulator and stop any running measurement."""
        self._start = None
        self.elapsed = 0.0


@dataclass
class Timer:
    """Context-manager timer recording a list of lap durations.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> len(t.laps)
    1
    """

    laps: List[float] = field(default_factory=list)
    _t0: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._t0 is not None
        self.laps.append(time.perf_counter() - self._t0)
        self._t0 = None

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def last(self) -> float:
        if not self.laps:
            raise RuntimeError("Timer has no completed laps")
        return self.laps[-1]

    @property
    def mean(self) -> float:
        if not self.laps:
            raise RuntimeError("Timer has no completed laps")
        return self.total / len(self.laps)
