"""Lightweight wall-clock timing used by enactors and benchmarks.

The iterative loop structure (essential component 4 in the paper) reports
per-superstep timings; the benchmark harness aggregates them into the
MTEPS-style rows the evaluation tables print.  ``perf_counter`` is used
throughout — monotonic and the highest-resolution clock Python exposes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class WallClock:
    """A start/stop stopwatch accumulating total elapsed seconds.

    The clock is restartable: after :meth:`stop`, calling :meth:`start`
    again resumes accumulation into :attr:`elapsed` (the shape the
    tracing spans need — one clock per span, many measured sections per
    clock).  Only starting an already *running* clock is an error.
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "WallClock":
        """Begin (or resume) timing; returns self for chaining.

        Raises :class:`RuntimeError` only when the clock is currently
        running — a stopped clock restarts and keeps accumulating.
        """
        if self.running:
            raise RuntimeError("WallClock already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing; returns accumulated elapsed seconds."""
        if self._start is None:
            raise RuntimeError("WallClock is not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def reset(self) -> None:
        """Zero the accumulator and stop any running measurement."""
        self._start = None
        self.elapsed = 0.0

    @contextmanager
    def measure(self) -> Iterator["WallClock"]:
        """Time the enclosed block: ``start()`` on entry, ``stop()`` on
        exit (also on exception), yielding the clock.  Each use adds one
        measured section to :attr:`elapsed`; the tracer wraps every span
        body in one of these.
        """
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class Timer:
    """Context-manager timer recording a list of lap durations.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> len(t.laps)
    1
    """

    laps: List[float] = field(default_factory=list)
    _t0: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._t0 is not None
        self.laps.append(time.perf_counter() - self._t0)
        self._t0 = None

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def last(self) -> float:
        if not self.laps:
            raise RuntimeError("Timer has no completed laps")
        return self.laps[-1]

    @property
    def mean(self) -> float:
        if not self.laps:
            raise RuntimeError("Timer has no completed laps")
        return self.total / len(self.laps)
