"""Shared scalar types, dtypes, and constants for the framework.

The native-graph abstraction in the paper is written against C++ integral
vertex/edge identifiers and ``float`` weights.  We pin the NumPy dtypes here
so every subsystem (graph formats, frontiers, operators) agrees on layouts
and so tests can assert them.

Conventions
-----------
* **Vertex ids** are non-negative ``int32`` indices ``0 .. n_vertices-1``.
* **Edge ids** are positions into the CSR ``column_indices`` array
  (``int64`` so graphs with more than 2^31 edges still index correctly).
* **Weights** are ``float32``, matching the paper's Listing 1
  (``std::vector<float> values``).
* ``INVALID_VERTEX`` / ``INVALID_EDGE`` are sentinels used by frontiers to
  mark lazily-deleted slots (mirroring Gunrock's invalid markers).
* ``INF`` is the "unreached" distance initializer from Listing 4
  (``std::numeric_limits<float>::max()``).
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

# -- dtypes -----------------------------------------------------------------

#: dtype used to store vertex identifiers.
VERTEX_DTYPE = np.dtype(np.int32)

#: dtype used to store edge identifiers (CSR positions).
EDGE_DTYPE = np.dtype(np.int64)

#: dtype used to store edge weights.
WEIGHT_DTYPE = np.dtype(np.float32)

#: dtype used for per-vertex floating point properties (distances, ranks).
VALUE_DTYPE = np.dtype(np.float32)

#: dtype used for dense boolean frontier bitmaps.
FLAG_DTYPE = np.dtype(np.bool_)

# -- sentinels and limits -----------------------------------------------------

#: Marker for "no vertex" (lazily deleted frontier slot, unset parent, ...).
INVALID_VERTEX: int = -1

#: Marker for "no edge".
INVALID_EDGE: int = -1

#: Unreached distance, mirroring std::numeric_limits<float>::max().
INF: float = float(np.finfo(np.float32).max)

#: Maximum representable vertex id.
MAX_VERTEX: int = int(np.iinfo(VERTEX_DTYPE).max)

# -- type aliases --------------------------------------------------------------

#: Scalar vertex id as accepted at API boundaries.
VertexId = int

#: Scalar edge id as accepted at API boundaries.
EdgeId = int

#: Edge weight scalar.
Weight = float

#: A per-edge user condition ``(src, dst, edge, weight) -> bool`` as in
#: Listing 3/4.  Scalar form; the vectorized form receives ndarrays of the
#: same four quantities and returns a boolean ndarray.
EdgeCondition = Callable[[int, int, int, float], bool]

#: Vectorized per-edge condition over ndarrays.
BulkEdgeCondition = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray
]

#: Either form of edge condition.
AnyEdgeCondition = Union[EdgeCondition, BulkEdgeCondition]


def as_vertex_array(values, *, copy: bool = False) -> np.ndarray:
    """Return ``values`` as a 1-D contiguous array of :data:`VERTEX_DTYPE`.

    Accepts any array-like of integers.  Raises :class:`ValueError` when the
    input has more than one dimension (vertex sets are always flat).
    """
    arr = np.array(values, dtype=VERTEX_DTYPE, copy=copy or None)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"vertex arrays must be 1-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def as_weight_array(values, *, copy: bool = False) -> np.ndarray:
    """Return ``values`` as a 1-D contiguous array of :data:`WEIGHT_DTYPE`."""
    arr = np.array(values, dtype=WEIGHT_DTYPE, copy=copy or None)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"weight arrays must be 1-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)
