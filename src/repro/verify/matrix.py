"""The differential matrix runner: algorithm × policy × representation ×
direction × fused × backend over the adversarial graph pool.

Every cell runs one algorithm variant on one pool graph and compares
the output to the algorithm's oracle under its equivalence spec.  A
mismatch produces a :class:`Mismatch` carrying a **one-line repro
command** — ``repro verify --algo sssp --graph star16 --policy
par_nosync --direction pull --seed 7`` re-runs exactly that cell — and
the whole sweep is recorded as one ``verify`` record in the run ledger
(PR4), so CI artifacts answer "what exactly diverged" without rerunning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.operators.fused import fusion_override
from repro.verify.graph_pool import GraphCase, GraphPool
from repro.verify.oracles import (
    REGISTRY,
    OracleSpec,
    RunContext,
    Variant,
)


@dataclass(frozen=True)
class Cell:
    """One point of the conformance matrix: (algorithm, graph, variant)."""

    algo: str
    graph: str
    variant: Variant
    seed: int
    #: Sweep mode the cell came from; full-mode cells exist outside the
    #: quick variant slice, so their repro commands must carry --full.
    quick: bool = True

    def label(self) -> str:
        """Human cell label, e.g. ``sssp[star16:par/pull]``."""
        return f"{self.algo}[{self.graph}:{self.variant.label()}]"


def repro_command(cell: Cell) -> str:
    """The minimal one-line CLI invocation replaying one cell."""
    parts = [
        "repro verify",
        f"--algo {cell.algo}",
        f"--graph {cell.graph}",
    ]
    if not cell.quick:
        parts.append("--full")
    v = cell.variant
    if v.policy is not None:
        parts.append(f"--policy {v.policy}")
    if v.direction is not None:
        parts.append(f"--direction {v.direction}")
    if v.representation is not None:
        parts.append(f"--representation {v.representation}")
    if v.fused is not None:
        parts.append(f"--fused {'on' if v.fused else 'off'}")
    if v.backend is not None:
        parts.append(f"--backend {v.backend}")
    parts.append(f"--seed {cell.seed}")
    return " ".join(parts)


@dataclass
class Mismatch:
    """One divergent cell, with everything needed to replay it."""

    cell: Cell
    detail: str
    baseline_name: str
    kind: str = "differential"  # or "error"

    @property
    def repro(self) -> str:
        return repro_command(self.cell)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (embedded in ledger records)."""
        return {
            "algo": self.cell.algo,
            "graph": self.cell.graph,
            "variant": self.cell.variant.label(),
            "seed": self.cell.seed,
            "kind": self.kind,
            "baseline": self.baseline_name,
            "detail": self.detail,
            "repro": self.repro,
        }


@dataclass
class MatrixReport:
    """Outcome of one sweep."""

    seed: int
    quick: bool
    cells_run: int = 0
    cells_passed: int = 0
    cells_skipped: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    per_algo: Dict[str, Dict[str, int]] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def record_cell(self, cell: Cell, ok: bool) -> None:
        """Count one executed cell into the totals and per-algo rows."""
        counts = self.per_algo.setdefault(
            cell.algo, {"run": 0, "passed": 0, "failed": 0}
        )
        counts["run"] += 1
        self.cells_run += 1
        if ok:
            counts["passed"] += 1
            self.cells_passed += 1
        else:
            counts["failed"] += 1

    def to_record(self, *, max_mismatches: int = 50) -> Dict[str, Any]:
        """Ledger-embeddable summary (bounded)."""
        return {
            "seed": self.seed,
            "mode": "quick" if self.quick else "full",
            "cells_run": self.cells_run,
            "cells_passed": self.cells_passed,
            "cells_skipped": self.cells_skipped,
            "algorithms": sorted(self.per_algo),
            "per_algo": self.per_algo,
            "n_mismatches": len(self.mismatches),
            "mismatches": [
                m.to_dict() for m in self.mismatches[:max_mismatches]
            ],
            "seconds": round(self.seconds, 3),
        }


class MatrixRunner:
    """Runs matrix cells with per-(algo, graph) baseline caching."""

    def __init__(
        self,
        *,
        seed: int = 0,
        quick: bool = True,
        pool: Optional[GraphPool] = None,
        registry: Optional[Dict[str, OracleSpec]] = None,
    ) -> None:
        self.seed = int(seed)
        self.quick = quick
        self.pool = pool or GraphPool(seed=self.seed, quick=quick)
        self.registry = registry if registry is not None else REGISTRY
        self._baseline_cache: Dict[Tuple[str, str], Any] = {}

    # -- cell enumeration -------------------------------------------------

    def cells_for(
        self,
        spec: OracleSpec,
        *,
        graphs: Optional[Sequence[str]] = None,
        policies: Optional[Sequence[str]] = None,
        directions: Optional[Sequence[str]] = None,
        representations: Optional[Sequence[str]] = None,
        fused: Optional[Sequence[bool]] = None,
        backends: Optional[Sequence[Optional[str]]] = None,
    ) -> List[Cell]:
        """Matrix cells for one algorithm, optionally filtered to a
        sub-slab (that's how a repro command narrows to one cell)."""
        cases = [c for c in self.pool.cases() if spec.accepts(c)]
        if graphs is not None:
            wanted = set(graphs)
            cases = [c for c in cases if c.name in wanted]
        variants = spec.axes.variants(quick=self.quick)
        if policies is not None:
            variants = [v for v in variants if v.policy in set(policies)]
        if directions is not None:
            variants = [v for v in variants if v.direction in set(directions)]
        if representations is not None:
            variants = [
                v for v in variants if v.representation in set(representations)
            ]
        if fused is not None:
            variants = [v for v in variants if v.fused in set(fused)]
        if backends is not None:
            variants = [v for v in variants if v.backend in set(backends)]
        return [
            Cell(
                algo=spec.name,
                graph=case.name,
                variant=v,
                seed=self.seed,
                quick=self.quick,
            )
            for case in cases
            for v in variants
        ]

    # -- execution --------------------------------------------------------

    def baseline_for(self, spec: OracleSpec, graph_name: str) -> Any:
        """The (cached) oracle output for one (algorithm, graph)."""
        key = (spec.name, graph_name)
        if key not in self._baseline_cache:
            if spec.baseline is None:
                self._baseline_cache[key] = None
            else:
                graph = self.pool.graph(graph_name)
                ctx = self._context(graph_name)
                self._baseline_cache[key] = spec.baseline(graph, ctx)
        return self._baseline_cache[key]

    def _context(self, graph_name: str) -> RunContext:
        case = next(c for c in self.pool.cases() if c.name == graph_name)
        return RunContext(seed=self.seed, source=case.source or 0)

    def run_cell(self, cell: Cell) -> Optional[Mismatch]:
        """Execute one cell; ``None`` means the cell conformed."""
        spec = self.registry[cell.algo]
        graph = self.pool.graph(cell.graph)
        ctx = self._context(cell.graph)
        want = self.baseline_for(spec, cell.graph)
        try:
            if cell.variant.fused is not None:
                with fusion_override(cell.variant.fused):
                    got = spec.run(graph, cell.variant, ctx)
            else:
                got = spec.run(graph, cell.variant, ctx)
        except Exception as exc:  # noqa: BLE001 - a crash IS a finding
            return Mismatch(
                cell=cell,
                detail=f"raised {type(exc).__name__}: {exc}",
                baseline_name=spec.baseline_name,
                kind="error",
            )
        outcome = spec.compare(got, want, graph, ctx)
        if outcome.ok:
            return None
        return Mismatch(
            cell=cell,
            detail=outcome.detail,
            baseline_name=spec.baseline_name,
        )

    def run(
        self,
        *,
        algos: Optional[Sequence[str]] = None,
        graphs: Optional[Sequence[str]] = None,
        policies: Optional[Sequence[str]] = None,
        directions: Optional[Sequence[str]] = None,
        representations: Optional[Sequence[str]] = None,
        fused: Optional[Sequence[bool]] = None,
        backends: Optional[Sequence[Optional[str]]] = None,
        progress=None,
    ) -> MatrixReport:
        """Sweep the (filtered) matrix and report every mismatch."""
        t0 = time.perf_counter()
        report = MatrixReport(seed=self.seed, quick=self.quick)
        names = list(algos) if algos is not None else sorted(self.registry)
        for name in names:
            if name not in self.registry:
                raise KeyError(
                    f"unknown algorithm {name!r}; expected one of "
                    f"{sorted(self.registry)}"
                )
            spec = self.registry[name]
            cells = self.cells_for(
                spec,
                graphs=graphs,
                policies=policies,
                directions=directions,
                representations=representations,
                fused=fused,
                backends=backends,
            )
            for cell in cells:
                mismatch = self.run_cell(cell)
                report.record_cell(cell, ok=mismatch is None)
                if mismatch is not None:
                    report.mismatches.append(mismatch)
                if progress is not None:
                    progress(cell, mismatch)
        report.seconds = time.perf_counter() - t0
        return report


def run_matrix(
    *,
    seed: int = 0,
    quick: bool = True,
    algos: Optional[Sequence[str]] = None,
    graphs: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    directions: Optional[Sequence[str]] = None,
    representations: Optional[Sequence[str]] = None,
    fused: Optional[Sequence[bool]] = None,
    backends: Optional[Sequence[Optional[str]]] = None,
    registry: Optional[Dict[str, OracleSpec]] = None,
    progress=None,
) -> MatrixReport:
    """One-call façade over :class:`MatrixRunner` (CLI and fixtures)."""
    runner = MatrixRunner(seed=seed, quick=quick, registry=registry)
    return runner.run(
        algos=algos,
        graphs=graphs,
        policies=policies,
        directions=directions,
        representations=representations,
        fused=fused,
        backends=backends,
        progress=progress,
    )
