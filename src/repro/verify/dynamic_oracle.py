"""Dynamic-graph conformance: incremental repair vs full recompute.

The dynamic subsystem's honesty condition is brutal and easy to state:
after any mutation batch, ``incremental_*`` must produce *exactly* what
the static algorithm computes from scratch on the mutated graph — same
distances, same levels, same component labels, bit for bit, under every
execution policy.  This module sweeps that relation over the
adversarial graph pool with seeded mutation plans, plus two structural
checks:

* **overlay invariants** — :func:`repro.graph.validate.validate_overlay`
  on the post-mutation overlay (no duplicate live arcs, coherent
  tombstones);
* **overlay vs compacted** — the merged base+delta snapshot and the
  compacted CSR must be the same graph (identical edge multiset,
  identical BFS/SSSP results), so compaction can never change answers.

Failures carry one-line replay commands, mirroring the matrix runner's
contract.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp
from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.incremental import (
    incremental_bfs,
    incremental_cc,
    incremental_pagerank,
    incremental_sssp,
)
from repro.errors import GraphFormatError
from repro.graph.graph import Graph
from repro.graph.validate import validate_overlay
from repro.verify.graph_pool import GraphPool

#: The policy axis the incremental==full relation sweeps.
DYNAMIC_POLICIES = ("seq", "par", "par_vector")


@dataclass
class DynamicFailure:
    """One violated dynamic-graph check, with replay coordinates."""

    check: str
    algo: str
    graph: str
    policy: str
    seed: int
    detail: str

    @property
    def repro(self) -> str:
        return (
            f"repro verify --dynamic --graph {self.graph} "
            f"--seed {self.seed}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (embedded in ledger records)."""
        return {
            "check": self.check,
            "algo": self.algo,
            "graph": self.graph,
            "policy": self.policy,
            "seed": self.seed,
            "detail": self.detail,
            "repro": self.repro,
        }


@dataclass
class DynamicReport:
    """Outcome of one dynamic-conformance sweep."""

    seed: int
    checks_run: int = 0
    checks_passed: int = 0
    failures: List[DynamicFailure] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, failure: Optional[DynamicFailure]) -> None:
        """Count one check; ``None`` means it held."""
        self.checks_run += 1
        if failure is None:
            self.checks_passed += 1
        else:
            self.failures.append(failure)

    def to_record(self) -> Dict[str, Any]:
        """Ledger-embeddable summary (bounded)."""
        return {
            "seed": self.seed,
            "checks_run": self.checks_run,
            "checks_passed": self.checks_passed,
            "n_failures": len(self.failures),
            "failures": [f.to_dict() for f in self.failures[:50]],
            "seconds": round(self.seconds, 3),
        }


def _mutation_plan(
    graph: Graph, rng: np.random.Generator, *, fraction: float = 0.15
) -> Tuple[List[Tuple[int, int, float]], List[Tuple[int, int]]]:
    """A seeded (inserts, removes) plan proportional to graph size.

    Removes sample distinct live arcs (canonicalized ``u <= v`` on
    undirected graphs so the symmetric arc is not deleted twice);
    inserts pick pairs not currently live and not scheduled for
    removal, so the plan exercises clean inserts, clean deletes, and —
    via overlap with deleted pairs being allowed in principle — the
    batch ordering (removals first) without ever being invalid.
    """
    n = graph.n_vertices
    coo = graph.coo()
    undirected = not graph.properties.directed
    pairs = set()
    for s, d in zip(coo.rows.tolist(), coo.cols.tolist()):
        pairs.add((min(s, d), max(s, d)) if undirected else (s, d))
    live = sorted(pairs)
    k = max(1, int(len(live) * fraction))
    removes = [
        live[i] for i in rng.choice(len(live), size=min(k, len(live)), replace=False)
    ]
    removed = set(removes)
    inserts: List[Tuple[int, int, float]] = []
    weighted = graph.properties.weighted
    attempts = 0
    while len(inserts) < k and attempts < 50 * k:
        attempts += 1
        s, d = int(rng.integers(n)), int(rng.integers(n))
        if s == d:
            continue
        key = (min(s, d), max(s, d)) if undirected else (s, d)
        if key in pairs or key in removed:
            continue
        pairs.add(key)
        w = float(rng.uniform(1.0, 10.0)) if weighted else 1.0
        inserts.append((s, d, w))
    return inserts, removes


def _edge_multiset(graph: Graph) -> np.ndarray:
    """Sorted (src, dst, weight) rows — the graph's identity as data."""
    coo = graph.coo()
    rows = np.stack(
        [
            coo.rows.astype(np.float64),
            coo.cols.astype(np.float64),
            coo.vals.astype(np.float64),
        ],
        axis=1,
    )
    order = np.lexsort((rows[:, 2], rows[:, 1], rows[:, 0]))
    return rows[order]


def run_dynamic(
    *,
    seed: int = 0,
    quick: bool = True,
    graphs: Optional[Sequence[str]] = None,
    policies: Sequence[str] = DYNAMIC_POLICIES,
    pool: Optional[GraphPool] = None,
) -> DynamicReport:
    """Sweep the incremental==full relation over the graph pool."""
    t0 = time.perf_counter()
    pool = pool or GraphPool(seed=seed, quick=quick)
    report = DynamicReport(seed=seed)
    for case in pool.cases():
        if graphs is not None and case.name not in set(graphs):
            continue
        graph = pool.graph(case.name)
        if graph.n_vertices == 0 or graph.n_edges == 0:
            continue
        # zlib.crc32 is stable across processes (str.__hash__ is salted).
        rng = np.random.default_rng(
            seed + (zlib.crc32(case.name.encode()) % (2**16))
        )
        source = case.source or 0

        dg = DynamicGraph(graph, compact_threshold=None)
        prev = {
            "bfs": bfs(graph, source),
            "sssp": sssp(graph, source),
            "cc": connected_components(graph),
            "pagerank": pagerank(graph),
        }
        inserts, removes = _mutation_plan(graph, rng)
        try:
            batch = dg.apply(insert=inserts, remove=removes)
        except GraphFormatError as exc:
            report.record(
                DynamicFailure(
                    check="mutation-apply",
                    algo="-",
                    graph=case.name,
                    policy="-",
                    seed=seed,
                    detail=str(exc),
                )
            )
            continue

        # Overlay invariants hold after any batch.
        try:
            validate_overlay(dg.overlay)
            report.record(None)
        except GraphFormatError as exc:
            report.record(
                DynamicFailure(
                    check="overlay-invariants",
                    algo="-",
                    graph=case.name,
                    policy="-",
                    seed=seed,
                    detail=str(exc),
                )
            )

        merged = dg.graph()
        for policy in policies:
            full = {
                "bfs": bfs(merged, source, policy=policy),
                "sssp": sssp(merged, source, policy=policy),
                "cc": connected_components(merged, policy=policy),
            }
            inc = {
                "bfs": incremental_bfs(
                    dg, prev["bfs"], batch=batch, policy=policy
                ),
                "sssp": incremental_sssp(
                    dg, prev["sssp"], batch=batch, policy=policy
                ),
                "cc": incremental_cc(
                    dg, prev["cc"], batch=batch, policy=policy
                ),
            }
            checks = {
                "bfs": np.array_equal(
                    full["bfs"].levels, inc["bfs"].levels
                ),
                "sssp": np.array_equal(
                    full["sssp"].distances, inc["sssp"].distances
                ),
                "cc": np.array_equal(full["cc"].labels, inc["cc"].labels),
            }
            for algo, passed in checks.items():
                report.record(
                    None
                    if passed
                    else DynamicFailure(
                        check="incremental-vs-full",
                        algo=algo,
                        graph=case.name,
                        policy=policy,
                        seed=seed,
                        detail=f"{algo} repair diverged from recompute",
                    )
                )

        # PageRank warm restart: same fixed point to tolerance order.
        warm = incremental_pagerank(dg, prev["pagerank"], batch=batch)
        cold = pagerank(merged)
        report.record(
            None
            if np.allclose(warm.ranks, cold.ranks, atol=1e-5)
            else DynamicFailure(
                check="incremental-vs-full",
                algo="pagerank",
                graph=case.name,
                policy="par_vector",
                seed=seed,
                detail=(
                    f"warm restart diverged: max |Δ| = "
                    f"{float(np.abs(warm.ranks - cold.ranks).max()):.2e}"
                ),
            )
        )

        # Overlay view and compacted CSR must be the same graph.
        pre_edges = _edge_multiset(merged)
        pre_bfs = bfs(merged, source)
        compacted = dg.compact()
        post_edges = _edge_multiset(compacted)
        post_bfs = bfs(compacted, source)
        same = np.array_equal(pre_edges, post_edges) and np.array_equal(
            pre_bfs.levels, post_bfs.levels
        )
        report.record(
            None
            if same
            else DynamicFailure(
                check="overlay-vs-compacted",
                algo="bfs",
                graph=case.name,
                policy="-",
                seed=seed,
                detail="compaction changed the edge multiset or BFS levels",
            )
        )
    report.seconds = time.perf_counter() - t0
    return report
