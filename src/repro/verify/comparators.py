"""Equivalence specs: how a run's output is compared to its oracle.

Different algorithms admit different notions of "same answer":

* ``exact`` — bitwise-equal arrays/scalars (BFS levels, core numbers,
  triangle totals).
* ``float-atol`` — elementwise ``allclose`` with per-algorithm
  tolerances (SSSP distances, PageRank mass, HITS scores).
* ``parents-tie-tolerant`` — a parent/predecessor array is *valid*
  rather than equal: ties between equally-good parents may resolve
  differently per policy, so we check the tree is consistent with the
  (exact) level/distance array instead of comparing parents bitwise.
* ``partition-isomorphism`` — component/community labels match up to a
  relabeling bijection (label values are representative-dependent).
* ``predicate`` — no baseline exists; the output must satisfy a
  semantic validity predicate (proper coloring, maximal independence).

Each comparator returns a :class:`CompareOutcome` whose ``detail`` is a
one-line human-readable explanation of the first divergence found —
that line ends up in the matrix report and the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass(frozen=True)
class CompareOutcome:
    """Result of one oracle comparison."""

    ok: bool
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


OK = CompareOutcome(True)


def _first_mismatch(mask: np.ndarray) -> int:
    return int(np.nonzero(mask)[0][0])


def exact_equal(got, want) -> CompareOutcome:
    """Bitwise equality of scalars or arrays (shape included)."""
    got_a = np.asarray(got)
    want_a = np.asarray(want)
    if got_a.shape != want_a.shape:
        return CompareOutcome(
            False, f"shape mismatch: got {got_a.shape}, want {want_a.shape}"
        )
    if got_a.size == 0:
        return OK
    neq = got_a != want_a
    if not np.any(neq):
        return OK
    i = _first_mismatch(neq.ravel())
    return CompareOutcome(
        False,
        f"value mismatch at flat index {i}: "
        f"got {got_a.ravel()[i]!r}, want {want_a.ravel()[i]!r} "
        f"({int(np.count_nonzero(neq))} differing entries)",
    )


def float_allclose(
    got, want, *, atol: float = 1e-6, rtol: float = 1e-5
) -> CompareOutcome:
    """``np.allclose`` with infinities required to match exactly.

    ``INF`` marks unreachable vertices, so a finite-vs-infinite pair is a
    semantic divergence regardless of tolerance.
    """
    got_a = np.asarray(got, dtype=np.float64)
    want_a = np.asarray(want, dtype=np.float64)
    if got_a.shape != want_a.shape:
        return CompareOutcome(
            False, f"shape mismatch: got {got_a.shape}, want {want_a.shape}"
        )
    if got_a.size == 0:
        return OK
    got_inf = ~np.isfinite(got_a)
    want_inf = ~np.isfinite(want_a)
    if np.any(got_inf != want_inf):
        i = _first_mismatch((got_inf != want_inf).ravel())
        return CompareOutcome(
            False,
            f"reachability mismatch at flat index {i}: "
            f"got {got_a.ravel()[i]!r}, want {want_a.ravel()[i]!r}",
        )
    finite = ~got_inf
    bad = finite & ~np.isclose(got_a, want_a, atol=atol, rtol=rtol)
    if not np.any(bad):
        return OK
    i = _first_mismatch(bad.ravel())
    return CompareOutcome(
        False,
        f"numeric mismatch at flat index {i}: "
        f"got {got_a.ravel()[i]:.9g}, want {want_a.ravel()[i]:.9g} "
        f"(atol={atol}, rtol={rtol}, "
        f"{int(np.count_nonzero(bad))} entries out of tolerance)",
    )


def partition_isomorphic(got, want) -> CompareOutcome:
    """Same partition of vertices, labels compared up to bijection.

    Component labels are representative ids, which legitimately differ
    between, say, label propagation and union-find.  Two labelings are
    equivalent iff the induced partitions are identical — i.e. the map
    got-label → want-label (by first occurrence) is a bijection that
    explains every vertex.
    """
    got_a = np.asarray(got).ravel()
    want_a = np.asarray(want).ravel()
    if got_a.shape != want_a.shape:
        return CompareOutcome(
            False, f"shape mismatch: got {got_a.shape}, want {want_a.shape}"
        )
    fwd: dict = {}
    rev: dict = {}
    for i in range(got_a.size):
        g, w = got_a[i].item(), want_a[i].item()
        if fwd.setdefault(g, w) != w or rev.setdefault(w, g) != g:
            return CompareOutcome(
                False,
                f"partition mismatch at vertex {i}: label {g!r} maps to "
                f"both {fwd[g]!r} and {w!r} (or the reverse)",
            )
    return OK


def bfs_parents_valid(
    parents, levels, graph, source: int
) -> CompareOutcome:
    """Tie-tolerant BFS parent check: every reached vertex's parent must
    be a real in-neighbor exactly one level shallower.

    Any such parent is a correct answer — which parent wins is a benign
    race between same-level discoverers — so the comparator validates
    structure instead of comparing arrays.
    """
    parents = np.asarray(parents)
    levels = np.asarray(levels)
    n = graph.n_vertices
    if n == 0:
        return OK
    if levels[source] != 0 or parents[source] != source:
        return CompareOutcome(
            False,
            f"source {source} has level {levels[source]} / parent "
            f"{parents[source]}, want 0 / {source}",
        )
    for v in range(n):
        if v == source or levels[v] < 0:
            continue
        p = int(parents[v])
        if p < 0 or p >= n:
            return CompareOutcome(
                False, f"reached vertex {v} has invalid parent {p}"
            )
        if levels[p] != levels[v] - 1:
            return CompareOutcome(
                False,
                f"vertex {v} (level {levels[v]}) has parent {p} at level "
                f"{levels[p]}, want level {levels[v] - 1}",
            )
        if not graph.has_edge(p, v):
            return CompareOutcome(
                False, f"parent edge ({p} -> {v}) does not exist in the graph"
            )
    return OK


def sssp_path_tree_valid(
    distances, graph, source: int, *, atol: float = 1e-4
) -> CompareOutcome:
    """Structural SSSP check usable without a baseline: the distance
    array must be a fixed point of relaxation (no edge can improve it)
    and every finite distance must be witnessed by some in-edge."""
    dist = np.asarray(distances, dtype=np.float64)
    n = graph.n_vertices
    if n == 0:
        return OK
    if dist[source] != 0.0:
        return CompareOutcome(
            False, f"source distance is {dist[source]}, want 0"
        )
    csr = graph.csr()
    for v in range(n):
        if not np.isfinite(dist[v]):
            continue
        nbrs = csr.get_neighbors(v)
        wts = csr.get_neighbor_weights(v)
        for k in range(nbrs.shape[0]):
            u = int(nbrs[k])
            if dist[v] + float(wts[k]) < dist[u] - atol:
                return CompareOutcome(
                    False,
                    f"edge ({v} -> {u}, w={float(wts[k]):g}) relaxes "
                    f"{dist[u]:.9g} to {dist[v] + float(wts[k]):.9g}: "
                    "not a relaxation fixed point",
                )
    return OK


#: Named tolerance/equivalence kinds an oracle spec may declare.
COMPARATOR_KINDS = (
    "exact",
    "float-atol",
    "parents-tie-tolerant",
    "partition-isomorphism",
    "predicate",
)


@dataclass(frozen=True)
class ToleranceSpec:
    """How one algorithm's output is matched to its oracle."""

    kind: str = "exact"
    atol: float = 1e-6
    rtol: float = 1e-5

    def __post_init__(self):
        if self.kind not in COMPARATOR_KINDS:
            raise ValueError(
                f"unknown comparator kind {self.kind!r}; expected one of "
                f"{COMPARATOR_KINDS}"
            )

    def compare(self, got, want) -> CompareOutcome:
        """Apply the spec to plain array-like outputs."""
        if self.kind == "exact":
            return exact_equal(got, want)
        if self.kind == "float-atol":
            return float_allclose(got, want, atol=self.atol, rtol=self.rtol)
        if self.kind == "partition-isomorphism":
            return partition_isomorphic(got, want)
        raise ValueError(
            f"comparator kind {self.kind!r} needs a custom compare function"
        )
