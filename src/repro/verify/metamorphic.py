"""Metamorphic oracles: known output transformations under known input
transformations, checked without any reference implementation.

Differential testing (``matrix.py``) asks "do all variants agree with
the oracle?"; metamorphic testing asks "does the implementation respect
the *mathematics*?" — properties that hold even where no baseline
exists:

* **weight scaling** — multiplying every edge weight by ``c > 0``
  multiplies every SSSP distance by exactly ``c`` (shortest paths are
  scale-invariant in which edges they use);
* **isolated-vertex insertion** — appending vertices with no edges must
  not change any result on the original vertices (SSSP distances, BFS
  levels, component partition), and the new vertices must come out
  unreachable / singleton;
* **vertex relabeling** — running on a permuted copy of the graph must
  produce the permutation of the original answer (equivariance: the
  algorithm cannot secretly depend on vertex ids).

Each failed relation is reported with the graph, algorithm, relation
name and a replay hint, mirroring the matrix runner's contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.sssp import sssp
from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import INF
from repro.verify.comparators import float_allclose, partition_isomorphic
from repro.verify.graph_pool import GraphPool


# -- input transformations ----------------------------------------------------


def scale_weights(graph: Graph, factor: float) -> Graph:
    """A copy of ``graph`` with every edge weight multiplied by ``factor``."""
    coo = graph.coo()
    return from_edge_array(
        coo.rows.copy(),
        coo.cols.copy(),
        coo.vals.astype(np.float64) * factor,
        n_vertices=graph.n_vertices,
        directed=True,  # COO already stores both arcs of undirected edges
    )


def add_isolated_vertices(graph: Graph, k: int) -> Graph:
    """A copy of ``graph`` with ``k`` extra edge-less vertices appended."""
    coo = graph.coo()
    return from_edge_array(
        coo.rows.copy(),
        coo.cols.copy(),
        coo.vals.copy() if graph.properties.weighted else None,
        n_vertices=graph.n_vertices + k,
        directed=True,
    )


def permute_vertices(graph: Graph, perm: np.ndarray) -> Graph:
    """A copy of ``graph`` with vertex ``v`` relabeled to ``perm[v]``."""
    coo = graph.coo()
    perm = np.asarray(perm)
    return from_edge_array(
        perm[coo.rows],
        perm[coo.cols],
        coo.vals.copy() if graph.properties.weighted else None,
        n_vertices=graph.n_vertices,
        directed=True,
    )


# -- report plumbing ----------------------------------------------------------


@dataclass
class MetamorphicFailure:
    """One violated relation, with enough context to replay it."""

    relation: str
    algo: str
    graph: str
    seed: int
    detail: str
    backend: str = "native"

    @property
    def repro(self) -> str:
        cmd = (
            f"repro verify --metamorphic --algo {self.algo} "
            f"--graph {self.graph} --seed {self.seed}"
        )
        if self.backend != "native":
            cmd += f" --backend {self.backend}"
        return cmd

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (embedded in ledger records)."""
        return {
            "relation": self.relation,
            "algo": self.algo,
            "graph": self.graph,
            "seed": self.seed,
            "backend": self.backend,
            "detail": self.detail,
            "repro": self.repro,
        }


@dataclass
class MetamorphicReport:
    """Outcome of one metamorphic sweep."""

    seed: int
    checks_run: int = 0
    checks_passed: int = 0
    failures: List[MetamorphicFailure] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, failure: Optional[MetamorphicFailure]) -> None:
        """Count one check; ``None`` means the relation held."""
        self.checks_run += 1
        if failure is None:
            self.checks_passed += 1
        else:
            self.failures.append(failure)

    def to_record(self) -> Dict[str, Any]:
        """Ledger-embeddable summary (bounded)."""
        return {
            "seed": self.seed,
            "checks_run": self.checks_run,
            "checks_passed": self.checks_passed,
            "n_failures": len(self.failures),
            "failures": [f.to_dict() for f in self.failures[:50]],
            "seconds": round(self.seconds, 3),
        }


# -- the relations ------------------------------------------------------------


def check_weight_scaling(
    graph: Graph,
    name: str,
    *,
    source: int,
    seed: int,
    factor: float = 3.5,
    backend: str = "native",
) -> Optional[MetamorphicFailure]:
    """``sssp(c·G) == c · sssp(G)`` for any ``c > 0``."""
    base = sssp(graph, source, backend=backend).distances.astype(np.float64)
    scaled = sssp(
        scale_weights(graph, factor), source, backend=backend
    ).distances.astype(np.float64)
    want = np.where(base >= INF, np.float64(INF), base * factor)
    got = np.where(scaled >= INF, np.float64(INF), scaled)
    outcome = float_allclose(got, want, atol=1e-3, rtol=1e-4)
    if outcome.ok:
        return None
    return MetamorphicFailure(
        relation="weight-scaling",
        algo="sssp",
        graph=name,
        seed=seed,
        detail=f"sssp({factor}*G) != {factor}*sssp(G): {outcome.detail}",
        backend=backend,
    )


def check_isolated_vertices(
    graph: Graph,
    name: str,
    *,
    source: int,
    seed: int,
    k: int = 3,
    backend: str = "native",
) -> Optional[MetamorphicFailure]:
    """Appending edge-less vertices is a no-op on the original answers."""
    n = graph.n_vertices
    grown = add_isolated_vertices(graph, k)

    base_d = sssp(graph, source, backend=backend).distances
    grown_d = sssp(grown, source, backend=backend).distances
    if not np.array_equal(base_d, grown_d[:n]):
        return MetamorphicFailure(
            relation="isolated-vertices",
            algo="sssp",
            graph=name,
            seed=seed,
            detail="sssp distances on original vertices changed",
            backend=backend,
        )
    if not bool(np.all(grown_d[n:] >= INF)):
        return MetamorphicFailure(
            relation="isolated-vertices",
            algo="sssp",
            graph=name,
            seed=seed,
            detail="appended isolated vertices came out reachable",
            backend=backend,
        )

    base_l = bfs(graph, source, backend=backend).levels
    grown_l = bfs(grown, source, backend=backend).levels
    if not np.array_equal(base_l, grown_l[:n]):
        return MetamorphicFailure(
            relation="isolated-vertices",
            algo="bfs",
            graph=name,
            seed=seed,
            detail="bfs levels on original vertices changed",
            backend=backend,
        )

    base_c = connected_components(graph, backend=backend).labels
    grown_c = connected_components(grown, backend=backend).labels
    outcome = partition_isomorphic(base_c, grown_c[:n])
    if not outcome.ok:
        return MetamorphicFailure(
            relation="isolated-vertices",
            algo="cc",
            graph=name,
            seed=seed,
            detail=f"component partition changed: {outcome.detail}",
            backend=backend,
        )
    tail = grown_c[n:]
    if len(set(tail.tolist())) != k or bool(
        np.isin(tail, grown_c[:n]).any() and n > 0
    ):
        return MetamorphicFailure(
            relation="isolated-vertices",
            algo="cc",
            graph=name,
            seed=seed,
            detail="appended isolated vertices are not singleton components",
            backend=backend,
        )
    return None


def check_permutation(
    graph: Graph, name: str, *, source: int, seed: int, backend: str = "native"
) -> Optional[MetamorphicFailure]:
    """Relabeling vertices permutes the answer (equivariance)."""
    n = graph.n_vertices
    if n == 0:
        return None
    rng = np.random.default_rng(seed * 7919 + 17)
    perm = rng.permutation(n)
    permuted = permute_vertices(graph, perm)

    base_d = sssp(graph, source, backend=backend).distances
    perm_d = sssp(permuted, int(perm[source]), backend=backend).distances
    # dist'(perm[v]) must equal dist(v).
    if not np.allclose(perm_d[perm], base_d, atol=1e-4, rtol=1e-4):
        bad = int(np.argmax(~np.isclose(perm_d[perm], base_d, atol=1e-4)))
        return MetamorphicFailure(
            relation="permutation",
            algo="sssp",
            graph=name,
            seed=seed,
            detail=(
                f"sssp not relabel-equivariant: vertex {bad} has "
                f"dist {base_d[bad]:g} but its image {int(perm[bad])} "
                f"got {perm_d[perm[bad]]:g}"
            ),
            backend=backend,
        )

    base_l = bfs(graph, source, backend=backend).levels
    perm_l = bfs(permuted, int(perm[source]), backend=backend).levels
    if not np.array_equal(perm_l[perm], base_l):
        return MetamorphicFailure(
            relation="permutation",
            algo="bfs",
            graph=name,
            seed=seed,
            detail="bfs levels not relabel-equivariant",
            backend=backend,
        )

    base_c = connected_components(graph, backend=backend).labels
    perm_c = connected_components(permuted, backend=backend).labels
    outcome = partition_isomorphic(perm_c[perm], base_c)
    if not outcome.ok:
        return MetamorphicFailure(
            relation="permutation",
            algo="cc",
            graph=name,
            seed=seed,
            detail=f"cc partition not relabel-equivariant: {outcome.detail}",
            backend=backend,
        )
    return None


#: Relation name -> checker; every checker takes (graph, name, source, seed).
RELATIONS = {
    "weight-scaling": check_weight_scaling,
    "isolated-vertices": check_isolated_vertices,
    "permutation": check_permutation,
}


def run_metamorphic(
    *,
    seed: int = 0,
    quick: bool = True,
    graphs: Optional[Sequence[str]] = None,
    relations: Optional[Sequence[str]] = None,
    backends: Sequence[str] = ("native", "linalg"),
    pool: Optional[GraphPool] = None,
) -> MetamorphicReport:
    """Sweep every relation over the adversarial graph pool.

    Each relation runs once per entry of ``backends`` — the mathematics
    must hold on the frontier path and on the matrix-product path alike
    (satellite axis of the backend conformance claim)."""
    t0 = time.perf_counter()
    pool = pool or GraphPool(seed=seed, quick=quick)
    report = MetamorphicReport(seed=seed)
    names = relations if relations is not None else sorted(RELATIONS)
    for rel in names:
        if rel not in RELATIONS:
            raise KeyError(
                f"unknown metamorphic relation {rel!r}; expected one of "
                f"{sorted(RELATIONS)}"
            )
    for case in pool.cases():
        if graphs is not None and case.name not in set(graphs):
            continue
        graph = pool.graph(case.name)
        if graph.n_vertices == 0:
            continue
        # weight-scaling presumes meaningfully weighted, nonnegative edges
        for rel in names:
            if rel == "weight-scaling" and not graph.properties.weighted:
                continue
            checker = RELATIONS[rel]
            for backend in backends:
                report.record(
                    checker(
                        graph,
                        case.name,
                        source=case.source or 0,
                        seed=seed,
                        backend=backend,
                    )
                )
    report.seconds = time.perf_counter() - t0
    return report
