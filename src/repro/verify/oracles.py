"""The oracle registry: every algorithm's baseline and equivalence spec.

One :class:`OracleSpec` per algorithm binds together

* ``run(graph, variant, ctx)`` — execute the algorithm under one
  point of the conformance axes (policy × direction × representation ×
  fused) and return its comparable output;
* ``baseline(graph, ctx)`` — an *independently written* reference
  (``dijkstra``, a ``networkx`` wrapper, a ``seq_*``/brute-force
  implementation, or the library's own sequential run when the claim
  under test is purely cross-policy conformance);
* ``compare(got, want, graph, ctx)`` — the per-algorithm tolerance /
  equivalence relation (see :mod:`repro.verify.comparators`);
* ``axes`` — which execution-space dimensions the algorithm exposes,
  i.e. the paper's claim surface for it;
* ``benign_races`` — non-``None`` iff the algorithm is on the race
  checker's benign-race allowlist, with the reason recorded.

The registry is the single source of truth for the matrix runner, the
race checker, pytest fixtures, and ``repro verify --list``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import algorithms
from repro.baselines.brute import (
    brute_core_numbers,
    brute_forest_is_valid,
    brute_spmv,
    brute_truss_numbers,
)
from repro.baselines.dijkstra import dijkstra
from repro.baselines.kruskal import kruskal_mst_weight
from repro.baselines.networkx_ref import nx_betweenness, nx_triangles
from repro.baselines.seq_bfs import sequential_bfs
from repro.baselines.seq_cc import union_find_components
from repro.baselines.seq_pagerank import sequential_pagerank
from repro.graph.graph import Graph
from repro.types import INF
from repro.verify.comparators import (
    CompareOutcome,
    OK,
    ToleranceSpec,
    bfs_parents_valid,
    exact_equal,
    float_allclose,
    partition_isomorphic,
)

#: The standard execution policies every policy-parametric algorithm
#: must agree across.  ``par_proc`` rides the same axis: its sharded
#: rounds must be byte-identical to ``seq`` wherever the exact
#: comparators apply (rank vectors use the tolerance comparator, same
#: as the other parallel policies).
STANDARD_POLICIES: Tuple[str, ...] = (
    "seq", "par", "par_nosync", "par_vector", "par_proc",
)


@dataclass(frozen=True)
class Variant:
    """One point in the execution design space."""

    policy: Optional[str] = None
    direction: Optional[str] = None
    representation: Optional[str] = None
    fused: Optional[bool] = None
    #: ``None`` = native-graph execution (the default path); ``"linalg"``
    #: = masked SpMV/SpMSpV matrix products (:mod:`repro.linalg`).
    backend: Optional[str] = None

    def label(self) -> str:
        """Slash-joined human label, e.g. ``par/pull/dense/fused``."""
        parts = []
        if self.policy is not None:
            parts.append(self.policy)
        if self.direction is not None:
            parts.append(self.direction)
        if self.representation is not None:
            parts.append(self.representation)
        if self.fused is not None:
            parts.append("fused" if self.fused else "unfused")
        if self.backend is not None:
            parts.append(self.backend)
        return "/".join(parts) or "default"


@dataclass(frozen=True)
class Axes:
    """The design-space dimensions one algorithm exposes.

    ``None`` in a tuple means "the algorithm has no such knob"; the
    variant carries ``None`` through so repro commands stay minimal.
    """

    policies: Tuple[Optional[str], ...] = (None,)
    directions: Tuple[Optional[str], ...] = (None,)
    representations: Tuple[Optional[str], ...] = (None,)
    fused: Tuple[Optional[bool], ...] = (None,)
    backends: Tuple[Optional[str], ...] = (None,)

    def variants(self, *, quick: bool = False) -> List[Variant]:
        """Full cross product, or (quick) every policy with the other
        axes pinned to their first (default) value — plus, so every
        backend stays live in the quick gate, one variant per
        non-default backend at the default policy."""
        if quick:
            combos = {
                Variant(
                    policy=p,
                    direction=self.directions[0],
                    representation=self.representations[0],
                    fused=self.fused[0],
                    backend=self.backends[0],
                )
                for p in self.policies
            }
            combos |= {
                Variant(
                    policy=self.policies[0],
                    direction=self.directions[0],
                    representation=self.representations[0],
                    fused=self.fused[0],
                    backend=b,
                )
                for b in self.backends[1:]
            }
            return sorted(combos, key=lambda v: v.label())
        return [
            Variant(
                policy=p,
                direction=d,
                representation=r,
                fused=f,
                backend=b,
            )
            for p, d, r, f, b in product(
                self.policies,
                self.directions,
                self.representations,
                self.fused,
                self.backends,
            )
        ]


@dataclass(frozen=True)
class RunContext:
    """Deterministic per-cell context: everything a run may draw on."""

    seed: int = 0
    source: int = 0

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A deterministic generator derived from (seed, salt)."""
        return np.random.default_rng((self.seed * 7919 + salt) % 2**63)

    def target(self, graph: Graph) -> int:
        """The conventional astar target: the last vertex."""
        return max(graph.n_vertices - 1, 0)


@dataclass(frozen=True)
class OracleSpec:
    """One algorithm's conformance contract."""

    name: str
    run: Callable[[Graph, Variant, RunContext], Any]
    baseline: Optional[Callable[[Graph, RunContext], Any]]
    compare: Callable[[Any, Any, Graph, RunContext], CompareOutcome]
    axes: Axes
    baseline_name: str
    comparator_name: str
    requires: Tuple[str, ...] = ()
    excludes: Tuple[str, ...] = ()
    #: Reason the algorithm's data races are benign (race-checker
    #: allowlist); ``None`` = any observed divergence is a defect.
    benign_races: Optional[str] = None
    description: str = ""

    def accepts(self, case) -> bool:
        """Whether a pool case is in this algorithm's domain."""
        if not all(tag in case.tags for tag in self.requires):
            return False
        return not any(tag in case.tags for tag in self.excludes)


REGISTRY: Dict[str, OracleSpec] = {}


def register(spec: OracleSpec) -> OracleSpec:
    """Add a spec to the global registry (duplicate names rejected)."""
    if spec.name in REGISTRY:
        raise ValueError(f"duplicate oracle spec {spec.name!r}")
    REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> OracleSpec:
    """Look up one oracle spec by algorithm name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; expected one of {sorted(REGISTRY)}"
        ) from None


def spec_names() -> List[str]:
    """Sorted names of every registered algorithm."""
    return sorted(REGISTRY)


# -- comparison helpers --------------------------------------------------------

_DIST_TOL = ToleranceSpec("float-atol", atol=1e-4, rtol=1e-4)
_RANK_TOL = ToleranceSpec("float-atol", atol=1e-4, rtol=1e-3)


def _cmp_distances(got, want, graph, ctx):
    return _DIST_TOL.compare(got, want)


def _cmp_exact(got, want, graph, ctx):
    return exact_equal(got, want)


def _cmp_partition(got, want, graph, ctx):
    return partition_isomorphic(got, want)


def _cmp_ranks(got, want, graph, ctx):
    return _RANK_TOL.compare(got, want)


# -- sssp family ---------------------------------------------------------------


def _sssp_kwargs(variant: Variant) -> dict:
    kwargs: dict = {}
    if variant.policy is not None:
        kwargs["policy"] = variant.policy
    if variant.direction is not None:
        kwargs["direction"] = variant.direction
    if variant.representation is not None:
        kwargs["output_representation"] = variant.representation
    if variant.backend is not None:
        kwargs["backend"] = variant.backend
    return kwargs


def _run_sssp(graph, variant, ctx):
    return algorithms.sssp(graph, ctx.source, **_sssp_kwargs(variant)).distances


def _run_sssp_delta(graph, variant, ctx):
    return algorithms.sssp_delta_stepping(
        graph, ctx.source, policy=variant.policy or "par_vector"
    ).distances


def _run_sssp_pull(graph, variant, ctx):
    return algorithms.sssp_pull(
        graph, ctx.source, policy=variant.policy or "par_vector"
    ).distances


def _run_sssp_near_far(graph, variant, ctx):
    return algorithms.sssp_near_far(
        graph, ctx.source, policy=variant.policy or "par_vector"
    ).distances


def _run_sssp_async(graph, variant, ctx):
    workers = 4 if variant.policy == "async" else 2
    return algorithms.sssp_async(
        graph, ctx.source, num_workers=workers, timeout=60.0
    ).distances


def _baseline_dijkstra(graph, ctx):
    return dijkstra(graph, ctx.source)


register(
    OracleSpec(
        name="sssp",
        run=_run_sssp,
        baseline=_baseline_dijkstra,
        compare=_cmp_distances,
        axes=Axes(
            policies=STANDARD_POLICIES,
            directions=("push", "pull", "auto"),
            representations=("sparse", "dense", "auto"),
            fused=(True, False),
            backends=(None, "linalg"),
        ),
        baseline_name="dijkstra",
        comparator_name="float-atol",
        requires=("has_vertices", "nonnegative"),
        description="Listing 4 label-correcting SSSP",
    )
)

register(
    OracleSpec(
        name="sssp_delta",
        run=_run_sssp_delta,
        baseline=_baseline_dijkstra,
        compare=_cmp_distances,
        axes=Axes(policies=STANDARD_POLICIES, fused=(True, False)),
        baseline_name="dijkstra",
        comparator_name="float-atol",
        requires=("has_vertices", "nonnegative"),
        description="delta-stepping bucketed SSSP",
    )
)

register(
    OracleSpec(
        name="sssp_pull",
        run=_run_sssp_pull,
        baseline=_baseline_dijkstra,
        compare=_cmp_distances,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="dijkstra",
        comparator_name="float-atol",
        requires=("has_vertices", "nonnegative"),
        description="pull-direction SSSP over the CSC view",
    )
)

register(
    OracleSpec(
        name="sssp_near_far",
        run=_run_sssp_near_far,
        baseline=_baseline_dijkstra,
        compare=_cmp_distances,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="dijkstra",
        comparator_name="float-atol",
        requires=("has_vertices", "nonnegative"),
        description="near-far pile SSSP",
    )
)

register(
    OracleSpec(
        name="sssp_async",
        run=_run_sssp_async,
        baseline=_baseline_dijkstra,
        compare=_cmp_distances,
        axes=Axes(policies=("async",)),
        baseline_name="dijkstra",
        comparator_name="float-atol",
        requires=("has_vertices", "nonnegative"),
        benign_races=(
            "monotone min-relaxation: stale reads only delay convergence, "
            "the atomic min keeps distances correct"
        ),
        description="asynchronous (Atos-style) SSSP to quiescence",
    )
)


# -- bfs -----------------------------------------------------------------------


def _run_bfs(graph, variant, ctx):
    kwargs: dict = {}
    if variant.policy is not None:
        kwargs["policy"] = variant.policy
    if variant.direction is not None:
        kwargs["direction"] = variant.direction
    if variant.backend is not None:
        kwargs["backend"] = variant.backend
    res = algorithms.bfs(graph, ctx.source, **kwargs)
    return {"levels": res.levels, "parents": res.parents}


def _baseline_bfs(graph, ctx):
    return sequential_bfs(graph, ctx.source)


def _cmp_bfs(got, want, graph, ctx):
    outcome = exact_equal(got["levels"], want)
    if not outcome.ok:
        return CompareOutcome(False, f"levels: {outcome.detail}")
    return bfs_parents_valid(got["parents"], got["levels"], graph, ctx.source)


register(
    OracleSpec(
        name="bfs",
        run=_run_bfs,
        baseline=_baseline_bfs,
        compare=_cmp_bfs,
        axes=Axes(
            policies=STANDARD_POLICIES,
            directions=("push", "pull", "auto"),
            fused=(True, False),
            backends=(None, "linalg"),
        ),
        baseline_name="seq_bfs",
        comparator_name="exact+parents-tie-tolerant",
        requires=("has_vertices",),
        benign_races=(
            "parent selection among same-level discoverers is a "
            "documented benign race; levels stay exact"
        ),
        description="push/pull/direction-optimized BFS",
    )
)


# -- components ----------------------------------------------------------------


def _run_cc(graph, variant, ctx):
    return algorithms.connected_components(
        graph,
        policy=variant.policy or "par_vector",
        backend=variant.backend or "native",
    ).labels


def _baseline_cc(graph, ctx):
    return union_find_components(graph)


register(
    OracleSpec(
        name="cc",
        run=_run_cc,
        baseline=_baseline_cc,
        compare=_cmp_partition,
        axes=Axes(
            policies=STANDARD_POLICIES,
            fused=(True, False),
            backends=(None, "linalg"),
        ),
        baseline_name="seq_cc",
        comparator_name="partition-isomorphism",
        requires=("has_vertices",),
        benign_races=(
            "label propagation order changes intermediate labels, never "
            "the final partition (min-label fixed point)"
        ),
        description="connected components by label propagation",
    )
)


def _run_scc(graph, variant, ctx):
    return algorithms.strongly_connected_components(graph).labels


def _baseline_scc(graph, ctx):
    return algorithms.tarjan_scc(graph)


register(
    OracleSpec(
        name="scc",
        run=_run_scc,
        baseline=_baseline_scc,
        compare=_cmp_partition,
        axes=Axes(),
        baseline_name="tarjan",
        comparator_name="partition-isomorphism",
        requires=("has_vertices",),
        description="strongly connected components (forward-backward)",
    )
)


# -- spectral / ranking --------------------------------------------------------


def _run_pagerank(graph, variant, ctx):
    return algorithms.pagerank(
        graph,
        policy=variant.policy or "par_vector",
        backend=variant.backend or "native",
    ).ranks


def _baseline_pagerank(graph, ctx):
    return sequential_pagerank(graph)


register(
    OracleSpec(
        name="pagerank",
        run=_run_pagerank,
        baseline=_baseline_pagerank,
        compare=_cmp_ranks,
        axes=Axes(
            policies=STANDARD_POLICIES, backends=(None, "linalg")
        ),
        baseline_name="seq_pagerank",
        comparator_name="float-atol",
        requires=("has_vertices",),
        description="damped PageRank with dangling redistribution",
    )
)


def _run_hits(graph, variant, ctx):
    res = algorithms.hits(
        graph,
        policy=variant.policy or "par_vector",
        backend=variant.backend or "native",
    )
    return np.concatenate([res.hubs, res.authorities])


def _baseline_hits(graph, ctx):
    res = algorithms.hits(graph, policy="seq")
    return np.concatenate([res.hubs, res.authorities])


register(
    OracleSpec(
        name="hits",
        run=_run_hits,
        baseline=_baseline_hits,
        compare=_cmp_ranks,
        axes=Axes(
            policies=STANDARD_POLICIES, backends=(None, "linalg")
        ),
        baseline_name="seq_self",
        comparator_name="float-atol",
        requires=("has_vertices",),
        description="HITS hubs & authorities (policy conformance vs seq)",
    )
)


def _run_ppr(graph, variant, ctx):
    return algorithms.personalized_pagerank(
        graph,
        ctx.source,
        policy=variant.policy or "par_vector",
        backend=variant.backend or "native",
    ).ranks


def _baseline_ppr(graph, ctx):
    return algorithms.personalized_pagerank(graph, ctx.source, policy="seq").ranks


register(
    OracleSpec(
        name="ppr",
        run=_run_ppr,
        baseline=_baseline_ppr,
        compare=_cmp_ranks,
        axes=Axes(
            policies=STANDARD_POLICIES, backends=(None, "linalg")
        ),
        baseline_name="seq_self",
        comparator_name="float-atol",
        requires=("has_vertices",),
        description="personalized PageRank (policy conformance vs seq)",
    )
)


def _run_bc(graph, variant, ctx):
    return algorithms.betweenness_centrality(
        graph, policy=variant.policy or "par_vector"
    ).centrality


def _baseline_bc(graph, ctx):
    return nx_betweenness(graph, normalized=False)


def _cmp_bc(got, want, graph, ctx):
    return float_allclose(got, want, atol=1e-5, rtol=1e-5)


register(
    OracleSpec(
        name="bc",
        run=_run_bc,
        baseline=_baseline_bc,
        compare=_cmp_bc,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="networkx_ref",
        comparator_name="float-atol",
        requires=("has_vertices",),
        excludes=("multi_edges",),
        description="Brandes betweenness centrality (unweighted)",
    )
)


# -- structure / cohesion ------------------------------------------------------


def _run_tc(graph, variant, ctx):
    return algorithms.triangle_count(
        graph, policy=variant.policy or "par"
    ).total


def _baseline_tc(graph, ctx):
    return nx_triangles(graph)


register(
    OracleSpec(
        name="tc",
        run=_run_tc,
        baseline=_baseline_tc,
        compare=_cmp_exact,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="networkx_ref",
        comparator_name="exact",
        requires=("has_vertices", "undirected"),
        description="triangle counting by segmented intersection",
    )
)


def _run_kcore(graph, variant, ctx):
    return algorithms.kcore_decomposition(
        graph, policy=variant.policy or "par_vector"
    ).core_numbers


def _baseline_kcore(graph, ctx):
    return brute_core_numbers(graph)


register(
    OracleSpec(
        name="kcore",
        run=_run_kcore,
        baseline=_baseline_kcore,
        compare=_cmp_exact,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="brute_peeling",
        comparator_name="exact",
        requires=("has_vertices", "undirected"),
        description="k-core decomposition by iterative peeling",
    )
)


def _run_ktruss(graph, variant, ctx):
    res = algorithms.ktruss_decomposition(
        graph, policy=variant.policy or "par"
    )
    return {
        (min(int(u), int(v)), max(int(u), int(v))): int(t)
        for u, v, t in zip(res.edge_u, res.edge_v, res.truss_numbers)
    }


def _baseline_ktruss(graph, ctx):
    return brute_truss_numbers(graph)


def _cmp_ktruss(got, want, graph, ctx):
    if set(got) != set(want):
        extra = sorted(set(got) - set(want))[:3]
        missing = sorted(set(want) - set(got))[:3]
        return CompareOutcome(
            False,
            f"edge set mismatch: extra={extra}, missing={missing}",
        )
    for e in sorted(got):
        if got[e] != want[e]:
            return CompareOutcome(
                False,
                f"truss number of edge {e}: got {got[e]}, want {want[e]}",
            )
    return OK


register(
    OracleSpec(
        name="ktruss",
        run=_run_ktruss,
        baseline=_baseline_ktruss,
        compare=_cmp_ktruss,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="brute_peeling",
        comparator_name="exact",
        requires=("has_vertices",),
        description="k-truss decomposition (edge-centric peeling)",
    )
)


def _run_mst(graph, variant, ctx):
    res = algorithms.boruvka_mst(graph, policy=variant.policy or "par_vector")
    return {
        "total_weight": res.total_weight,
        "n_components": res.n_components,
        "edges": (res.edge_sources, res.edge_destinations, res.edge_weights),
    }


def _baseline_mst(graph, ctx):
    labels = union_find_components(graph)
    n_components = len(set(labels.tolist())) if labels.size else 0
    return {
        "total_weight": kruskal_mst_weight(graph),
        "n_components": n_components,
    }


def _cmp_mst(got, want, graph, ctx):
    outcome = float_allclose(
        got["total_weight"], want["total_weight"], atol=1e-3, rtol=1e-5
    )
    if not outcome.ok:
        return CompareOutcome(False, f"total weight: {outcome.detail}")
    if got["n_components"] != want["n_components"]:
        return CompareOutcome(
            False,
            f"component count: got {got['n_components']}, "
            f"want {want['n_components']}",
        )
    ok, why = brute_forest_is_valid(graph, *got["edges"])
    return OK if ok else CompareOutcome(False, why)


register(
    OracleSpec(
        name="mst",
        run=_run_mst,
        baseline=_baseline_mst,
        compare=_cmp_mst,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="kruskal",
        comparator_name="float-atol+forest-validity",
        requires=("has_vertices", "undirected"),
        benign_races=(
            "equal-weight edge ties break differently per policy; the "
            "forest weight and component structure are invariant"
        ),
        description="Borůvka minimum spanning forest",
    )
)


# -- symmetry-breaking (validity-predicate oracles) ----------------------------


def _run_color(graph, variant, ctx):
    res = algorithms.graph_coloring(
        graph, policy=variant.policy or "par_vector", seed=ctx.seed
    )
    return {"colors": res.colors, "n_colors": res.n_colors}


def _cmp_color(got, want, graph, ctx):
    colors = np.asarray(got["colors"])
    coo = graph.coo()
    off = coo.rows != coo.cols
    rows, cols = coo.rows[off], coo.cols[off]
    bad = np.nonzero(colors[rows] == colors[cols])[0]
    if bad.size:
        i = int(bad[0])
        return CompareOutcome(
            False,
            f"improper coloring: edge ({int(rows[i])}, {int(cols[i])}) "
            f"endpoints share color {int(colors[rows[i]])}",
        )
    if graph.n_vertices:
        max_degree = int(np.max(graph.out_degrees()))
        if got["n_colors"] > max_degree + 1:
            return CompareOutcome(
                False,
                f"used {got['n_colors']} colors, greedy bound is "
                f"{max_degree + 1}",
            )
    return OK


register(
    OracleSpec(
        name="color",
        run=_run_color,
        baseline=None,
        compare=_cmp_color,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="validity-predicate",
        comparator_name="predicate",
        requires=("has_vertices",),
        excludes=("self_loops",),
        benign_races=(
            "Jones-Plassmann round composition varies with scheduling; "
            "any proper coloring within the greedy bound is correct"
        ),
        description="greedy parallel coloring (proper-coloring predicate)",
    )
)


def _run_mis(graph, variant, ctx):
    res = algorithms.maximal_independent_set(
        graph, policy=variant.policy or "par_vector", seed=ctx.seed
    )
    return res.in_set


def _cmp_mis(got, want, graph, ctx):
    ok = algorithms.verify_mis(graph, np.asarray(got, dtype=bool))
    return OK if ok else CompareOutcome(
        False, "set is not independent or not maximal"
    )


register(
    OracleSpec(
        name="mis",
        run=_run_mis,
        baseline=None,
        compare=_cmp_mis,
        axes=Axes(policies=STANDARD_POLICIES),
        baseline_name="validity-predicate",
        comparator_name="predicate",
        requires=("has_vertices",),
        excludes=("self_loops",),
        benign_races=(
            "Luby lottery winners depend on scheduling; any maximal "
            "independent set is correct"
        ),
        description="maximal independent set (independence+maximality predicate)",
    )
)


# -- linear algebra ------------------------------------------------------------


def _spmv_x(graph, ctx):
    return ctx.rng(salt=1).uniform(-1.0, 1.0, size=graph.n_vertices)


def _run_spmv(graph, variant, ctx):
    return algorithms.spmv(
        graph,
        _spmv_x(graph, ctx),
        policy=variant.policy or "par_vector",
        backend=variant.backend or "native",
    )


def _baseline_spmv(graph, ctx):
    return brute_spmv(graph, _spmv_x(graph, ctx))


def _cmp_spmv(got, want, graph, ctx):
    return float_allclose(got, want, atol=1e-4, rtol=1e-4)


register(
    OracleSpec(
        name="spmv",
        run=_run_spmv,
        baseline=_baseline_spmv,
        compare=_cmp_spmv,
        axes=Axes(
            policies=STANDARD_POLICIES, backends=(None, "linalg")
        ),
        baseline_name="brute_coo",
        comparator_name="float-atol",
        requires=("has_vertices",),
        description="SpMV over the native-graph API",
    )
)


def _run_spgemm(graph, variant, ctx):
    res = algorithms.spgemm(
        graph, graph, backend=variant.backend or "native"
    )
    coo = res.coo()
    order = np.lexsort((coo.cols, coo.rows))
    return {
        "rows": coo.rows[order].astype(np.int64),
        "cols": coo.cols[order].astype(np.int64),
        "vals": coo.vals[order].astype(np.float64),
    }


def _baseline_spgemm(graph, ctx):
    # Dense A·A — independent of both sparse formulations.  Pool graphs
    # are small, so the n×n temporary is cheap.
    n = graph.n_vertices
    coo = graph.coo()
    dense = np.zeros((n, n), dtype=np.float64)
    np.add.at(
        dense,
        (coo.rows.astype(np.int64), coo.cols.astype(np.int64)),
        coo.vals.astype(np.float64),
    )
    prod = dense @ dense
    rows, cols = np.nonzero(prod)
    return {"rows": rows, "cols": cols, "vals": prod[rows, cols]}


def _cmp_spgemm(got, want, graph, ctx):
    # Compare as sparse maps where a zero-valued stored entry and an
    # absent one are equivalent (zero-weight edges realize pairs
    # structurally in the native formulation; the dense baseline and
    # scipy prune them).
    gd = {
        (int(r), int(c)): float(v)
        for r, c, v in zip(got["rows"], got["cols"], got["vals"])
    }
    wd = {
        (int(r), int(c)): float(v)
        for r, c, v in zip(want["rows"], want["cols"], want["vals"])
    }
    for key in sorted(set(gd) | set(wd)):
        g, w = gd.get(key, 0.0), wd.get(key, 0.0)
        if abs(g - w) > 1e-3 + 1e-4 * abs(w):
            return CompareOutcome(
                False, f"entry {key}: got {g!r}, want {w!r}"
            )
    return OK


register(
    OracleSpec(
        name="spgemm",
        run=_run_spgemm,
        baseline=_baseline_spgemm,
        compare=_cmp_spgemm,
        axes=Axes(backends=(None, "linalg")),
        baseline_name="dense_matmul",
        comparator_name="pattern-exact+float-atol",
        requires=("has_vertices",),
        description="SpGEMM (A·A) vs a dense matmul baseline",
    )
)


# -- pathfinding ---------------------------------------------------------------


def _run_astar(graph, variant, ctx):
    res = algorithms.astar(graph, ctx.source, ctx.target(graph))
    return {"distance": res.distance, "path": res.path}


def _baseline_astar(graph, ctx):
    return dijkstra(graph, ctx.source)


def _cmp_astar(got, want, graph, ctx):
    target = ctx.target(graph)
    want_d = float(want[target]) if graph.n_vertices else 0.0
    outcome = float_allclose(got["distance"], want_d, atol=1e-4, rtol=1e-4)
    if not outcome.ok:
        return CompareOutcome(False, f"target distance: {outcome.detail}")
    path = got["path"]
    if got["distance"] >= INF:  # unreachable sentinel (float32 max)
        return OK if not path else CompareOutcome(
            False, f"unreachable target but non-empty path {path}"
        )
    if path[0] != ctx.source or path[-1] != target:
        return CompareOutcome(
            False, f"path endpoints {path[0]}..{path[-1]} are not "
            f"{ctx.source}..{target}"
        )
    for a, b in zip(path, path[1:]):
        if not graph.has_edge(a, b):
            return CompareOutcome(
                False, f"path edge ({a} -> {b}) does not exist"
            )
    return OK


register(
    OracleSpec(
        name="astar",
        run=_run_astar,
        baseline=_baseline_astar,
        compare=_cmp_astar,
        axes=Axes(),
        baseline_name="dijkstra",
        comparator_name="float-atol+path-validity",
        requires=("has_vertices", "nonnegative"),
        description="A* optimal pathfinding (zero heuristic = Dijkstra)",
    )
)
