"""The curated adversarial graph pool the conformance matrix sweeps.

Each case is a *named, seeded, deterministic* graph chosen to break a
specific class of bug: empty graphs catch initialization-order slips,
self-loops catch ``src == dst`` special cases, multi-edges catch
dedup-by-accident, zero-weight edges catch ``improved = new < old``
boundary handling, stars catch hub load-balance paths, and the
generator-family cases (R-MAT, Kronecker, SBM) exercise the skewed and
clustered degree distributions real workloads have.

``repro verify --graph <name>`` replays exactly one case; names are the
stable coordinates that make a mismatch's one-line repro command work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.graph import from_edge_list
from repro.graph.graph import Graph
from repro.graph.generators import (
    grid_2d,
    kronecker,
    rmat,
    star,
    stochastic_block_model,
    with_random_weights,
)


@dataclass(frozen=True)
class GraphCase:
    """One named pool entry.

    Attributes
    ----------
    name:
        Stable identifier used in repro commands and reports.
    build:
        ``build(seed) -> Graph`` — deterministic for a given seed.
    quick:
        Included in the ``--quick`` matrix (CI); ``False`` = nightly only.
    tags:
        Structural facts oracle specs filter on (``"weighted"``,
        ``"directed"``, ``"has_edges"``, ``"nonnegative"``, ...).
    source:
        Canonical source vertex for source-based algorithms (``None``
        when the case has no vertices).
    """

    name: str
    build: Callable[[int], Graph]
    quick: bool = True
    tags: Tuple[str, ...] = ()
    source: Optional[int] = 0

    def matches(self, required: Tuple[str, ...]) -> bool:
        """Whether every tag in ``required`` is on this case."""
        return all(tag in self.tags for tag in required)


def _empty16(seed: int) -> Graph:
    return from_edge_list([], n_vertices=16, directed=True)


def _single(seed: int) -> Graph:
    return from_edge_list([], n_vertices=1, directed=True)


def _selfloops(seed: int) -> Graph:
    # Self-loops mixed into a short weighted cycle; loop weights differ
    # from path weights so a loop mistakenly relaxed shows up.
    edges = [
        (0, 0, 0.5),
        (0, 1, 1.0),
        (1, 1, 2.0),
        (1, 2, 1.5),
        (2, 0, 1.0),
        (2, 2, 0.25),
        (2, 3, 4.0),
    ]
    return from_edge_list(edges, n_vertices=4, directed=True)


def _multiedges(seed: int) -> Graph:
    # Parallel edges with distinct weights: the cheapest copy must win
    # for path algorithms and every copy must count for degree/SpMV.
    edges = [
        (0, 1, 5.0),
        (0, 1, 1.0),
        (0, 1, 3.0),
        (1, 2, 2.0),
        (1, 2, 2.0),
        (2, 3, 1.0),
        (0, 3, 9.0),
    ]
    return from_edge_list(edges, n_vertices=4, directed=True)


def _disconnected(seed: int) -> Graph:
    # Three islands: a weighted path, a triangle, and two isolated
    # vertices; unreachable handling and per-component labels.
    edges = [
        (0, 1, 1.0),
        (1, 2, 2.0),
        (3, 4, 1.0),
        (4, 5, 1.0),
        (5, 3, 1.0),
    ]
    return from_edge_list(edges, n_vertices=8, directed=False)


def _zeroweight(seed: int) -> Graph:
    # Zero-weight edges create distance ties and 0-cost cycles; the
    # relaxation predicate `new < old` must not loop or mis-rank them.
    edges = [
        (0, 1, 0.0),
        (1, 2, 0.0),
        (2, 0, 0.0),
        (1, 3, 1.0),
        (3, 4, 0.0),
        (0, 4, 2.0),
    ]
    return from_edge_list(edges, n_vertices=5, directed=True)


def _star16(seed: int) -> Graph:
    return with_random_weights(star(16, directed=False), seed=seed + 161)


def _chain32(seed: int) -> Graph:
    # Long unweighted path: maximal iteration count (diameter = n - 1).
    edges = [(i, i + 1) for i in range(31)]
    return from_edge_list(edges, n_vertices=32, directed=False)


def _grid8(seed: int) -> Graph:
    return grid_2d(8, 8, weighted=True, seed=seed + 88)


def _rmat8(seed: int) -> Graph:
    return rmat(8, 8, weighted=True, seed=seed + 77)


def _kron6(seed: int) -> Graph:
    initiator = [[0.9, 0.5], [0.5, 0.1]]
    return kronecker(initiator, 6, 192, weighted=True, seed=seed + 55)


def _sbm(seed: int) -> Graph:
    g, _labels = stochastic_block_model(
        [24, 24, 16], p_in=0.25, p_out=0.01, weighted=True, seed=seed + 33
    )
    return g


#: The pool, ordered smallest-to-largest so failures surface on the
#: cheapest case first.
POOL: List[GraphCase] = [
    GraphCase(
        "single1",
        _single,
        tags=("has_vertices", "nonnegative", "directed"),
    ),
    GraphCase(
        "empty16",
        _empty16,
        tags=("has_vertices", "nonnegative", "directed"),
    ),
    GraphCase(
        "selfloops4",
        _selfloops,
        tags=(
            "has_vertices",
            "has_edges",
            "weighted",
            "nonnegative",
            "directed",
            "self_loops",
        ),
    ),
    GraphCase(
        "multiedge4",
        _multiedges,
        tags=(
            "has_vertices",
            "has_edges",
            "weighted",
            "nonnegative",
            "directed",
            "multi_edges",
        ),
    ),
    GraphCase(
        "disconnected8",
        _disconnected,
        tags=(
            "has_vertices",
            "has_edges",
            "weighted",
            "nonnegative",
            "undirected",
            "disconnected",
        ),
    ),
    GraphCase(
        "zeroweight5",
        _zeroweight,
        tags=(
            "has_vertices",
            "has_edges",
            "weighted",
            "nonnegative",
            "directed",
            "zero_weights",
        ),
    ),
    GraphCase(
        "star16",
        _star16,
        tags=("has_vertices", "has_edges", "weighted", "nonnegative", "undirected"),
    ),
    GraphCase(
        "chain32",
        _chain32,
        tags=("has_vertices", "has_edges", "nonnegative", "undirected"),
    ),
    GraphCase(
        "grid8",
        _grid8,
        quick=False,
        tags=("has_vertices", "has_edges", "weighted", "nonnegative", "undirected"),
    ),
    GraphCase(
        "rmat8",
        _rmat8,
        quick=False,
        tags=("has_vertices", "has_edges", "weighted", "nonnegative", "directed"),
    ),
    GraphCase(
        "kron6",
        _kron6,
        quick=False,
        tags=("has_vertices", "has_edges", "weighted", "nonnegative", "directed"),
    ),
    GraphCase(
        "sbm64",
        _sbm,
        quick=False,
        tags=("has_vertices", "has_edges", "weighted", "nonnegative", "undirected"),
    ),
]

_BY_NAME: Dict[str, GraphCase] = {case.name: case for case in POOL}


def case_names(*, quick_only: bool = False) -> List[str]:
    """Pool entry names, in sweep order."""
    return [c.name for c in POOL if c.quick or not quick_only]


def get_case(name: str) -> GraphCase:
    """Look up one case; raises ``KeyError`` with the valid names."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown graph case {name!r}; expected one of {case_names()}"
        ) from None


class GraphPool:
    """Seeded pool with per-case build caching.

    One matrix sweep touches every case many times (once per variant);
    the pool memoizes builds so graph generation cost is paid once.
    """

    def __init__(self, seed: int = 0, *, quick: bool = True) -> None:
        self.seed = int(seed)
        self.quick = quick
        self._cache: Dict[str, Graph] = {}

    def cases(self) -> List[GraphCase]:
        """The pool's cases (quick subset unless built full)."""
        return [c for c in POOL if c.quick or not self.quick]

    def graph(self, name: str) -> Graph:
        """Build (and cache) the named case's graph."""
        if name not in self._cache:
            self._cache[name] = get_case(name).build(self.seed)
        return self._cache[name]
