"""Conformance verification: differential matrix testing, metamorphic
oracles, and the par_nosync race checker.

Three independent lines of evidence that every point of the execution
design space (policy × direction × representation × fused) computes the
same answers:

* :mod:`repro.verify.matrix` — every algorithm variant against its
  oracle over the adversarial graph pool, each mismatch carrying a
  one-line repro command;
* :mod:`repro.verify.metamorphic` — mathematical relations (weight
  scaling, isolated-vertex insertion, relabel equivariance) that need
  no reference implementation;
* :mod:`repro.verify.races` — chaos-perturbed scheduling plus an
  instrumented-atomics shim that flags lost updates.

Surface: ``repro verify`` (CLI), :func:`run_matrix`,
:func:`run_metamorphic`, :func:`check_races`.
"""

from repro.verify.comparators import (
    COMPARATOR_KINDS,
    CompareOutcome,
    ToleranceSpec,
    bfs_parents_valid,
    exact_equal,
    float_allclose,
    partition_isomorphic,
    sssp_path_tree_valid,
)
from repro.verify.dynamic_oracle import (
    DYNAMIC_POLICIES,
    DynamicFailure,
    DynamicReport,
    run_dynamic,
)
from repro.verify.graph_pool import GraphCase, GraphPool
from repro.verify.matrix import (
    Cell,
    MatrixReport,
    MatrixRunner,
    Mismatch,
    repro_command,
    run_matrix,
)
from repro.verify.metamorphic import (
    RELATIONS,
    MetamorphicFailure,
    MetamorphicReport,
    add_isolated_vertices,
    check_isolated_vertices,
    check_permutation,
    check_weight_scaling,
    permute_vertices,
    run_metamorphic,
    scale_weights,
)
from repro.verify.oracles import (
    REGISTRY,
    Axes,
    OracleSpec,
    RunContext,
    Variant,
    get_spec,
    spec_names,
)
from repro.verify.races import (
    LostUpdate,
    RaceFinding,
    RaceInstrument,
    RaceReport,
    check_races,
    specs_with_nosync,
)

__all__ = [
    "COMPARATOR_KINDS",
    "DYNAMIC_POLICIES",
    "REGISTRY",
    "RELATIONS",
    "Axes",
    "Cell",
    "CompareOutcome",
    "DynamicFailure",
    "DynamicReport",
    "GraphCase",
    "GraphPool",
    "LostUpdate",
    "MatrixReport",
    "MatrixRunner",
    "MetamorphicFailure",
    "MetamorphicReport",
    "Mismatch",
    "OracleSpec",
    "RaceFinding",
    "RaceInstrument",
    "RaceReport",
    "RunContext",
    "ToleranceSpec",
    "Variant",
    "add_isolated_vertices",
    "bfs_parents_valid",
    "check_isolated_vertices",
    "check_permutation",
    "check_races",
    "check_weight_scaling",
    "exact_equal",
    "float_allclose",
    "get_spec",
    "partition_isomorphic",
    "permute_vertices",
    "repro_command",
    "run_dynamic",
    "run_matrix",
    "run_metamorphic",
    "scale_weights",
    "spec_names",
    "specs_with_nosync",
    "sssp_path_tree_valid",
]
