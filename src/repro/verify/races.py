"""The race checker: chaos-seeded interleaving perturbation plus an
instrumented-atomics shim that flags lost updates under ``par_nosync``.

The threaded policies' correctness argument rests on every shared
read-modify-write going through :class:`~repro.execution.atomics.
AtomicArray` (Listing 4's ``atomic::min``).  A bug that *bypasses* the
atomic — a load-compute-store compound, a raw NumPy write from a worker
— is exactly the kind that passes every test on a lightly-loaded
machine and corrupts answers in production.  This module hunts it two
ways:

* **perturbation** — a :class:`RaceInstrument` installed via
  :func:`~repro.execution.atomics.install_instrument` injects tiny
  chaos-seeded sleeps *before* each atomic op (outside the stripe
  lock), shaking thread interleavings far harder than natural
  scheduling would;
* **detection** — the same instrument watches every committed op from
  inside the lock.  For monotone kinds (``min``: values may only
  decrease; ``max``: only increase) a commit whose *observed old value*
  is on the wrong side of the last committed value proves an
  intervening non-atomic write — a lost update, pinned to the exact
  array slot.  Independently, each perturbed ``par_nosync`` trial's
  output is compared against the oracle: divergence on an algorithm not
  on the **benign-race allowlist** (``OracleSpec.benign_races``) is a
  defect with a replayable seed.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.execution.atomics import install_instrument
from repro.verify.graph_pool import GraphPool
from repro.verify.oracles import REGISTRY, OracleSpec, RunContext, Variant


@dataclass
class LostUpdate:
    """One monotonicity violation observed through the atomics shim."""

    kind: str
    index: int
    last_committed: float
    observed_old: float

    def __str__(self) -> str:
        return (
            f"lost update at slot {self.index}: a committed {self.kind} "
            f"left {self.last_committed:g} but a later op observed "
            f"{self.observed_old:g} — an intervening write bypassed the "
            f"atomic"
        )


#: Direction of allowed drift per monotone op kind.
_MONOTONE = {"min": -1, "max": +1}


class RaceInstrument:
    """Atomics shim: perturbs scheduling and detects lost updates.

    Install ambiently (``with instrument.installed():``); every
    :class:`AtomicArray` created inside the block reports to it.
    Monotone state is keyed per (array, slot), so two arrays sharing an
    index never cross-contaminate.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        perturb: bool = True,
        sleep_probability: float = 0.2,
        max_sleep: float = 2e-5,
        watch_stores: bool = False,
    ) -> None:
        self.seed = int(seed)
        self.perturb = perturb
        self.sleep_probability = sleep_probability
        self.max_sleep = max_sleep
        #: Also treat ``store`` commits as monotone-min evidence.  Off by
        #: default (stores are legitimately non-monotone in general); the
        #: torn-RMW tests enable it to catch load-compute-store compounds
        #: that *should* have been ``min_at``.
        self.watch_stores = watch_stores
        self._rng = random.Random(self.seed)
        self._rng_lock = threading.Lock()
        self._data_lock = threading.Lock()
        self._last: Dict[Tuple[int, int], float] = {}
        self.op_counts: Counter = Counter()
        self.slot_counts: Counter = Counter()
        self.violations: List[LostUpdate] = []

    # -- the atomics-shim protocol (see execution/atomics.py) -------------

    def before_op(self, array, kind: str, index: int) -> None:
        """Perturbation hook: maybe sleep to shake the interleaving."""
        if not self.perturb:
            return
        with self._rng_lock:
            draw = self._rng.random()
            stretch = self._rng.random()
        if draw < self.sleep_probability:
            time.sleep(stretch * self.max_sleep)

    def record(self, array, kind: str, index: int, old, new) -> None:
        """Detection hook: account the commit, flag monotone drift."""
        direction = _MONOTONE.get(kind)
        if direction is None and self.watch_stores and kind == "store":
            direction = -1
        with self._data_lock:
            self.op_counts[kind] += 1
            self.slot_counts[(id(array), index)] += 1
            if direction is None:
                return
            key = (id(array), index)
            last = self._last.get(key)
            if direction < 0 and float(new) > float(old) + 1e-12:
                # A commit that RAISED a monotone-min slot is itself a
                # lost update (a load-compute-store compound wrote back a
                # stale candidate over a better value).
                self.violations.append(
                    LostUpdate(
                        kind=kind,
                        index=index,
                        last_committed=float(old),
                        observed_old=float(new),
                    )
                )
            if last is not None:
                drifted = (
                    old > last + 1e-12
                    if direction < 0
                    else old < last - 1e-12
                )
                if drifted:
                    self.violations.append(
                        LostUpdate(
                            kind=kind,
                            index=index,
                            last_committed=last,
                            observed_old=float(old),
                        )
                    )
            if last is None:
                self._last[key] = float(new)
            elif direction < 0:
                self._last[key] = min(float(new), last)
            else:
                self._last[key] = max(float(new), last)

    # -- lifecycle --------------------------------------------------------

    @contextmanager
    def installed(self):
        """Context manager installing this instrument ambiently."""
        prev = install_instrument(self)
        try:
            yield self
        finally:
            install_instrument(prev)

    @property
    def contended_slots(self) -> int:
        """Slots touched by more than one operation."""
        return sum(1 for c in self.slot_counts.values() if c > 1)


# -- the sweep ----------------------------------------------------------------


@dataclass
class RaceFinding:
    """One flagged race: a divergent output or a lost update."""

    algo: str
    graph: str
    seed: int
    trial: int
    kind: str  # "divergence" | "lost-update"
    detail: str

    @property
    def repro(self) -> str:
        return (
            f"repro verify --races --algo {self.algo} "
            f"--graph {self.graph} --seed {self.seed}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (embedded in ledger records)."""
        return {
            "algo": self.algo,
            "graph": self.graph,
            "seed": self.seed,
            "trial": self.trial,
            "kind": self.kind,
            "detail": self.detail,
            "repro": self.repro,
        }


@dataclass
class RaceReport:
    """Outcome of one race-checker sweep."""

    seed: int
    trials: int
    runs: int = 0
    findings: List[RaceFinding] = field(default_factory=list)
    #: Divergences observed on allowlisted algorithms (not defects, but
    #: recorded so the allowlist stays honest — an empty entry here for
    #: an allowlisted algorithm suggests the entry is stale).
    benign: List[RaceFinding] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_record(self) -> Dict[str, Any]:
        """Ledger-embeddable summary (bounded)."""
        return {
            "seed": self.seed,
            "trials": self.trials,
            "runs": self.runs,
            "n_findings": len(self.findings),
            "findings": [f.to_dict() for f in self.findings[:50]],
            "n_benign": len(self.benign),
            "benign": [f.to_dict() for f in self.benign[:20]],
            "seconds": round(self.seconds, 3),
        }


def specs_with_nosync(
    registry: Optional[Dict[str, OracleSpec]] = None
) -> List[OracleSpec]:
    """Oracle specs whose design space includes ``par_nosync``."""
    registry = registry if registry is not None else REGISTRY
    return [
        spec
        for spec in registry.values()
        if "par_nosync" in spec.axes.policies
    ]


def check_races(
    *,
    seed: int = 0,
    trials: int = 3,
    quick: bool = True,
    algos: Optional[Sequence[str]] = None,
    graphs: Optional[Sequence[str]] = None,
    pool: Optional[GraphPool] = None,
    registry: Optional[Dict[str, OracleSpec]] = None,
) -> RaceReport:
    """Run every ``par_nosync``-capable algorithm under perturbation.

    Each (algorithm, graph) pair runs ``trials`` times with a distinct
    chaos seed; a run is flagged when the instrument records a lost
    update or the output diverges from the algorithm's oracle, unless
    the algorithm is allowlisted (``benign_races``), in which case the
    observation lands in ``report.benign`` instead.
    """
    t0 = time.perf_counter()
    registry = registry if registry is not None else REGISTRY
    pool = pool or GraphPool(seed=seed, quick=quick)
    report = RaceReport(seed=seed, trials=trials)
    specs = specs_with_nosync(registry)
    if algos is not None:
        wanted = set(algos)
        unknown = wanted - {s.name for s in specs}
        if unknown:
            raise KeyError(
                f"not par_nosync-capable or unknown: {sorted(unknown)}; "
                f"capable: {sorted(s.name for s in specs)}"
            )
        specs = [s for s in specs if s.name in wanted]
    for spec in specs:
        cases = [c for c in pool.cases() if spec.accepts(c)]
        if graphs is not None:
            keep = set(graphs)
            cases = [c for c in cases if c.name in keep]
        for case in cases:
            graph = pool.graph(case.name)
            ctx = RunContext(seed=seed, source=case.source or 0)
            want = spec.baseline(graph, ctx) if spec.baseline else None
            variant = Variant(policy="par_nosync")
            for trial in range(trials):
                instrument = RaceInstrument(seed=seed * 1009 + trial)
                error: Optional[str] = None
                try:
                    with instrument.installed():
                        got = spec.run(graph, variant, ctx)
                except Exception as exc:  # noqa: BLE001 - a crash IS a finding
                    error = f"raised {type(exc).__name__}: {exc}"
                    got = None
                report.runs += 1
                findings: List[RaceFinding] = []
                for violation in instrument.violations:
                    findings.append(
                        RaceFinding(
                            algo=spec.name,
                            graph=case.name,
                            seed=seed,
                            trial=trial,
                            kind="lost-update",
                            detail=str(violation),
                        )
                    )
                if error is not None:
                    findings.append(
                        RaceFinding(
                            algo=spec.name,
                            graph=case.name,
                            seed=seed,
                            trial=trial,
                            kind="divergence",
                            detail=error,
                        )
                    )
                elif want is not None or spec.baseline is None:
                    outcome = spec.compare(got, want, graph, ctx)
                    if not outcome.ok:
                        findings.append(
                            RaceFinding(
                                algo=spec.name,
                                graph=case.name,
                                seed=seed,
                                trial=trial,
                                kind="divergence",
                                detail=outcome.detail,
                            )
                        )
                for finding in findings:
                    if spec.benign_races is not None:
                        report.benign.append(finding)
                    else:
                        report.findings.append(finding)
    report.seconds = time.perf_counter() - t0
    return report
