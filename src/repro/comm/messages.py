"""Message combiners: fold messages addressed to one vertex into one.

Pregel's key bandwidth optimization — when the vertex program only needs
an associative-commutative summary of its inbox (the min candidate
distance, the sum of rank contributions), messages can be combined at
the sender side and again at delivery, shrinking traffic from O(edges)
to O(active destinations).  The combiner's fold is exposed both
scalar-pairwise (:meth:`Combiner.combine`) and vectorized over a whole
batch (:meth:`Combiner.combine_bulk`).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

import numpy as np


class Combiner(abc.ABC):
    """Associative-commutative fold over message values."""

    #: Fold identity (returned for an empty message set).
    identity: float = 0.0

    @abc.abstractmethod
    def combine(self, a: float, b: float) -> float:
        """Fold two message values into one."""

    def combine_bulk(
        self, destinations: np.ndarray, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold a batch of (destination, value) messages per destination.

        Returns ``(unique_destinations, folded_values)``, destinations
        sorted ascending.  The default implementation sorts and reduces
        with the scalar fold; subclasses override with ufunc ``.at``
        scatter-reduction.
        """
        order = np.argsort(destinations, kind="stable")
        dsts = destinations[order]
        vals = values[order]
        boundaries = np.empty(dsts.shape[0], dtype=bool)
        if dsts.shape[0] == 0:
            return dsts, vals
        boundaries[0] = True
        boundaries[1:] = dsts[1:] != dsts[:-1]
        out_dsts = dsts[boundaries]
        out_vals = []
        start_positions = np.nonzero(boundaries)[0]
        ends = np.append(start_positions[1:], dsts.shape[0])
        for s, e in zip(start_positions, ends):
            acc = vals[s]
            for k in range(s + 1, e):
                acc = self.combine(float(acc), float(vals[k]))
            out_vals.append(acc)
        return out_dsts, np.asarray(out_vals, dtype=values.dtype)


class _UfuncCombiner(Combiner):
    """Shared vectorized scatter-reduce for ufunc-backed combiners."""

    _ufunc = None  # set by subclasses

    def combine_bulk(self, destinations, values):
        if destinations.shape[0] == 0:
            return destinations, values
        uniq, inverse = np.unique(destinations, return_inverse=True)
        out = np.full(uniq.shape[0], self.identity, dtype=np.float64)
        self._ufunc.at(out, inverse, values.astype(np.float64))
        return uniq, out.astype(values.dtype)


class MinCombiner(_UfuncCombiner):
    """Keep the minimum message per destination (SSSP's combiner)."""

    identity = float(np.inf)
    _ufunc = np.minimum

    def combine(self, a, b):
        return a if a <= b else b


class MaxCombiner(_UfuncCombiner):
    """Keep the maximum message per destination (the Pregel paper's
    max-value example)."""

    identity = float(-np.inf)
    _ufunc = np.maximum

    def combine(self, a, b):
        return a if a >= b else b


class SumCombiner(_UfuncCombiner):
    """Sum messages per destination (PageRank's combiner)."""

    identity = 0.0
    _ufunc = np.add

    def combine(self, a, b):
        return a + b


def collect_messages(
    destinations: np.ndarray, values: np.ndarray
) -> Dict[int, List[float]]:
    """No-combiner delivery: group raw message values per destination.

    Used when the vertex program needs the full inbox (e.g. computing a
    median); O(messages) Python dict build, so prefer a combiner when the
    fold suffices.
    """
    inbox: Dict[int, List[float]] = {}
    for d, v in zip(destinations, values):
        inbox.setdefault(int(d), []).append(float(v))
    return inbox
