"""Communication models — the second TLAV pillar (§III-B).

Shared memory needs no machinery here: graphs and per-vertex arrays live
in process memory and every operator reads them directly.  This package
supplies the **message-passing** alternative, simulated in-process per
the DESIGN.md substitution table:

* :class:`~repro.comm.channel.Channel` — a point-to-point FIFO between
  ranks.
* :mod:`~repro.comm.messages` — message combiners (min/sum/max), the
  classic Pregel optimization that collapses messages addressed to one
  vertex before delivery.
* :class:`~repro.comm.mailbox.MailboxRouter` — k-rank vertex-addressed
  routing with two delivery disciplines: ``"superstep"`` (messages sent
  in superstep t are visible in t+1 — bulk-synchronous) and
  ``"immediate"`` (visible as soon as sent — asynchronous), directly
  realizing the paper's observation that communication and timing models
  go hand in hand.
* :class:`~repro.comm.pregel.PregelEngine` — "think like a vertex"
  programs over the router: compute/send/vote-to-halt supersteps.
"""

from repro.comm.channel import Channel
from repro.comm.messages import (
    Combiner,
    MinCombiner,
    MaxCombiner,
    SumCombiner,
    collect_messages,
)
from repro.comm.mailbox import MailboxRouter
from repro.comm.pregel import PregelEngine, VertexProgram, VertexContext
from repro.comm.async_pregel import (
    AsyncFoldEngine,
    async_sssp_messages,
    async_components_messages,
)

__all__ = [
    "AsyncFoldEngine",
    "async_sssp_messages",
    "async_components_messages",
    "Channel",
    "Combiner",
    "MinCombiner",
    "MaxCombiner",
    "SumCombiner",
    "collect_messages",
    "MailboxRouter",
    "PregelEngine",
    "VertexProgram",
    "VertexContext",
]
