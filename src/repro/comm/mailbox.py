"""Vertex-addressed message routing across partition ranks.

The router is the simulated distributed substrate: ``n_ranks`` logical
machines, each owning the vertices a partition assignment maps to it.
Sending is always addressed to a *vertex*; the router resolves the
owning rank and buffers the message there.

Two delivery disciplines select the timing model (§III-A/B are "heavily
interdependent"):

* ``"superstep"`` — bulk-synchronous: messages sent during superstep t
  are invisible until :meth:`flush_barrier` rotates the buffers (Pregel
  semantics).
* ``"immediate"`` — asynchronous: messages are readable the moment they
  are sent (the queue-frontier model).

Per-rank inboxes are NumPy message batches ``(destinations, values)``
so delivery and combining stay vectorized.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CommunicationError
from repro.comm.messages import Combiner
from repro.types import VERTEX_DTYPE


class _RankBuffer:
    """Pending and deliverable message batches for one rank."""

    def __init__(self) -> None:
        self.pending: List[Tuple[np.ndarray, np.ndarray]] = []
        self.deliverable: List[Tuple[np.ndarray, np.ndarray]] = []
        self.lock = threading.Lock()


class MailboxRouter:
    """All-to-all vertex-addressed message routing.

    Parameters
    ----------
    owner_of:
        Array mapping vertex id -> owning rank.
    n_ranks:
        Number of ranks; inferred as ``owner_of.max() + 1`` when omitted.
    delivery:
        ``"superstep"`` or ``"immediate"`` (see module docstring).
    """

    def __init__(
        self,
        owner_of: np.ndarray,
        n_ranks: Optional[int] = None,
        *,
        delivery: str = "superstep",
    ) -> None:
        self.owner_of = np.asarray(owner_of, dtype=np.int64).ravel()
        if self.owner_of.size and int(self.owner_of.min()) < 0:
            raise CommunicationError("owner ranks must be non-negative")
        inferred = int(self.owner_of.max()) + 1 if self.owner_of.size else 1
        self.n_ranks = n_ranks if n_ranks is not None else inferred
        if self.owner_of.size and int(self.owner_of.max()) >= self.n_ranks:
            raise CommunicationError(
                f"owner rank {int(self.owner_of.max())} out of range for "
                f"n_ranks={self.n_ranks}"
            )
        if delivery not in ("superstep", "immediate"):
            raise CommunicationError(
                f"delivery must be 'superstep' or 'immediate', got {delivery!r}"
            )
        self.delivery = delivery
        self._buffers = [_RankBuffer() for _ in range(self.n_ranks)]
        #: Cumulative cross-rank message count (the communication-volume
        #: metric the partitioning bench reports).
        self.remote_messages = 0
        #: Cumulative rank-local message count.
        self.local_messages = 0
        self._stats_lock = threading.Lock()

    # -- sending ---------------------------------------------------------------------

    def send(
        self,
        destinations: np.ndarray,
        values: np.ndarray,
        *,
        from_rank: Optional[int] = None,
    ) -> None:
        """Route a batch of (destination vertex, value) messages.

        ``from_rank`` (when given) is only used for the local/remote
        traffic accounting.
        """
        destinations = np.asarray(destinations, dtype=VERTEX_DTYPE).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if destinations.shape != values.shape:
            raise CommunicationError(
                f"destinations and values must have equal length, got "
                f"{destinations.shape[0]} and {values.shape[0]}"
            )
        if destinations.size == 0:
            return
        if destinations.size and (
            int(destinations.min()) < 0
            or int(destinations.max()) >= self.owner_of.shape[0]
        ):
            raise CommunicationError(
                f"destination vertex out of range [0, {self.owner_of.shape[0]})"
            )
        owners = self.owner_of[destinations]
        if from_rank is not None:
            remote = int(np.count_nonzero(owners != from_rank))
            with self._stats_lock:
                self.remote_messages += remote
                self.local_messages += destinations.size - remote
        for rank in np.unique(owners):
            mask = owners == rank
            buf = self._buffers[int(rank)]
            batch = (destinations[mask], values[mask])
            with buf.lock:
                if self.delivery == "immediate":
                    buf.deliverable.append(batch)
                else:
                    buf.pending.append(batch)

    # -- delivery --------------------------------------------------------------------

    def flush_barrier(self) -> None:
        """Superstep boundary: make every pending message deliverable.

        No-op under immediate delivery (there is no barrier to cross).
        """
        if self.delivery == "immediate":
            return
        for buf in self._buffers:
            with buf.lock:
                buf.deliverable.extend(buf.pending)
                buf.pending = []

    def receive(
        self, rank: int, combiner: Optional[Combiner] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Drain rank's deliverable messages as ``(destinations, values)``.

        With a combiner, messages per destination are folded and
        destinations are unique and sorted.
        """
        if not (0 <= rank < self.n_ranks):
            raise CommunicationError(
                f"rank {rank} out of range [0, {self.n_ranks})"
            )
        buf = self._buffers[rank]
        with buf.lock:
            batches = buf.deliverable
            buf.deliverable = []
        if not batches:
            return (
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=np.float64),
            )
        destinations = np.concatenate([b[0] for b in batches])
        values = np.concatenate([b[1] for b in batches])
        if combiner is not None:
            destinations, values = combiner.combine_bulk(destinations, values)
        return destinations, values

    def has_messages(self) -> bool:
        """Whether any message (pending or deliverable) is in flight."""
        for buf in self._buffers:
            with buf.lock:
                if buf.pending or buf.deliverable:
                    return True
        return False

    def vertices_of_rank(self, rank: int) -> np.ndarray:
        """Vertex ids owned by ``rank``."""
        return np.nonzero(self.owner_of == rank)[0].astype(VERTEX_DTYPE)
