"""Vertex-addressed message routing across partition ranks.

The router is the simulated distributed substrate: ``n_ranks`` logical
machines, each owning the vertices a partition assignment maps to it.
Sending is always addressed to a *vertex*; the router resolves the
owning rank and buffers the message there.

Two delivery disciplines select the timing model (§III-A/B are "heavily
interdependent"):

* ``"superstep"`` — bulk-synchronous: messages sent during superstep t
  are invisible until :meth:`flush_barrier` rotates the buffers (Pregel
  semantics).
* ``"immediate"`` — asynchronous: messages are readable the moment they
  are sent (the queue-frontier model).

Per-rank inboxes are NumPy message batches ``(destinations, values)``
so delivery and combining stay vectorized.

The router is also the comm layer's fault-injection seam: under an
ambient chaos injector (``with FaultInjector(...):``) or an explicit
:class:`~repro.resilience.ResiliencePolicy`, sent messages may be
dropped, duplicated, or (superstep delivery only) delayed one barrier.
A retry policy turns drops into *at-least-once* delivery — the sender
re-offers the dropped subset up to ``max_attempts`` times and raises
:class:`~repro.errors.RetryExhausted` rather than silently losing a
message; without retry, drops are real losses (the unprotected
baseline).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CommunicationError, RetryExhausted
from repro.comm.messages import Combiner
from repro.observability.probe import active_probe
from repro.resilience.chaos import FaultInjector, active_injector
from repro.resilience.policy import ResiliencePolicy
from repro.types import VERTEX_DTYPE


class _RankBuffer:
    """Pending and deliverable message batches for one rank."""

    def __init__(self) -> None:
        self.pending: List[Tuple[np.ndarray, np.ndarray]] = []
        self.deliverable: List[Tuple[np.ndarray, np.ndarray]] = []
        self.lock = threading.Lock()


class MailboxRouter:
    """All-to-all vertex-addressed message routing.

    Parameters
    ----------
    owner_of:
        Array mapping vertex id -> owning rank.
    n_ranks:
        Number of ranks; inferred as ``owner_of.max() + 1`` when omitted.
    delivery:
        ``"superstep"`` or ``"immediate"`` (see module docstring).
    resilience:
        Optional fault-tolerance policy.  Its chaos injector (or, when
        absent, the ambient one) perturbs message traffic; its retry
        policy bounds the redelivery loop for dropped messages.
    """

    def __init__(
        self,
        owner_of: np.ndarray,
        n_ranks: Optional[int] = None,
        *,
        delivery: str = "superstep",
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        self.owner_of = np.asarray(owner_of, dtype=np.int64).ravel()
        if self.owner_of.size and int(self.owner_of.min()) < 0:
            raise CommunicationError("owner ranks must be non-negative")
        inferred = int(self.owner_of.max()) + 1 if self.owner_of.size else 1
        self.n_ranks = n_ranks if n_ranks is not None else inferred
        if self.owner_of.size and int(self.owner_of.max()) >= self.n_ranks:
            raise CommunicationError(
                f"owner rank {int(self.owner_of.max())} out of range for "
                f"n_ranks={self.n_ranks}"
            )
        if delivery not in ("superstep", "immediate"):
            raise CommunicationError(
                f"delivery must be 'superstep' or 'immediate', got {delivery!r}"
            )
        self.delivery = delivery
        self.resilience = resilience
        self._buffers = [_RankBuffer() for _ in range(self.n_ranks)]
        #: Cumulative cross-rank message count (the communication-volume
        #: metric the partitioning bench reports).
        self.remote_messages = 0
        #: Cumulative rank-local message count.
        self.local_messages = 0
        self._stats_lock = threading.Lock()

    # -- sending ---------------------------------------------------------------------

    def send(
        self,
        destinations: np.ndarray,
        values: np.ndarray,
        *,
        from_rank: Optional[int] = None,
    ) -> None:
        """Route a batch of (destination vertex, value) messages.

        ``from_rank`` (when given) is only used for the local/remote
        traffic accounting.
        """
        destinations = np.asarray(destinations, dtype=VERTEX_DTYPE).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if destinations.shape != values.shape:
            raise CommunicationError(
                f"destinations and values must have equal length, got "
                f"{destinations.shape[0]} and {values.shape[0]}"
            )
        if destinations.size == 0:
            return
        if destinations.size and (
            int(destinations.min()) < 0
            or int(destinations.max()) >= self.owner_of.shape[0]
        ):
            raise CommunicationError(
                f"destination vertex out of range [0, {self.owner_of.shape[0]})"
            )
        probe = active_probe()
        with probe.span(
            "mailbox:send", n_messages=int(destinations.size)
        ) as span:
            injector = self._injector()
            if injector is not None:
                destinations, values = self._chaos_filter(
                    injector, destinations, values
                )
                if destinations.size == 0:
                    return
            owners = self.owner_of[destinations]
            if from_rank is not None:
                remote = int(np.count_nonzero(owners != from_rank))
                with self._stats_lock:
                    self.remote_messages += remote
                    self.local_messages += destinations.size - remote
                span.set("remote", remote)
                if probe.enabled:
                    probe.counter("comm.remote_messages", remote)
                    probe.counter(
                        "comm.local_messages",
                        int(destinations.size) - remote,
                    )
            if probe.enabled:
                probe.counter("comm.messages_sent", int(destinations.size))
            for rank in np.unique(owners):
                mask = owners == rank
                buf = self._buffers[int(rank)]
                batch = (destinations[mask], values[mask])
                with buf.lock:
                    if self.delivery == "immediate":
                        buf.deliverable.append(batch)
                    else:
                        buf.pending.append(batch)

    # -- fault injection ---------------------------------------------------------------

    def _injector(self) -> Optional[FaultInjector]:
        """The explicit policy's injector, falling back to the ambient one."""
        if self.resilience is not None:
            return self.resilience.active_chaos()
        return active_injector()

    def _counters(self):
        return self.resilience.counters if self.resilience is not None else None

    def _chaos_filter(
        self,
        injector: FaultInjector,
        destinations: np.ndarray,
        values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply drop/duplicate faults, re-offering dropped messages.

        With a retry policy the dropped subset is re-offered to the
        injector until it survives or ``max_attempts`` offers are spent
        — at-least-once delivery (duplication is the price; the Pregel
        engine requires idempotent or min/max-style combiners under
        chaos).  The re-offer is an in-process bookkeeping step, so no
        backoff sleeps apply.  Without a retry policy, drops are real
        losses — the unprotected baseline chaos tests measure against.
        """
        counters = self._counters()
        kept_d, kept_v, dropped_d, dropped_v, n_dup = injector.split_messages(
            destinations, values
        )
        if counters is not None:
            if dropped_d.size:
                counters.increment("messages_dropped", int(dropped_d.size))
            if n_dup:
                counters.increment("messages_duplicated", n_dup)
        retry = self.resilience.retry if self.resilience is not None else None
        if dropped_d.size == 0:
            return kept_d, kept_v
        if retry is None:
            return kept_d, kept_v  # unprotected: the drop is permanent
        surviving = [kept_d]
        surviving_v = [kept_v]
        for _ in range(max(0, retry.max_attempts - 1)):
            if dropped_d.size == 0:
                break
            if counters is not None:
                counters.increment("messages_redelivered", int(dropped_d.size))
            kd, kv, dropped_d, dropped_v, n_dup = injector.split_messages(
                dropped_d, dropped_v
            )
            if counters is not None:
                if dropped_d.size:
                    counters.increment("messages_dropped", int(dropped_d.size))
                if n_dup:
                    counters.increment("messages_duplicated", n_dup)
            surviving.append(kd)
            surviving_v.append(kv)
        if dropped_d.size:
            if counters is not None:
                counters.increment("retries_exhausted")
            raise RetryExhausted(
                f"{int(dropped_d.size)} messages still dropped after "
                f"{retry.max_attempts} delivery attempts",
                attempts=retry.max_attempts,
            )
        return np.concatenate(surviving), np.concatenate(surviving_v)

    # -- delivery --------------------------------------------------------------------

    def flush_barrier(self) -> None:
        """Superstep boundary: make every pending message deliverable.

        Under chaos, each pending message may *delay* — it stays in
        ``pending`` and crosses at the next barrier instead.  Delayed
        messages keep :meth:`has_messages` true, so the Pregel engine
        cannot terminate while any are in flight; they only reorder
        delivery, which the monotone-combiner contract tolerates.

        No-op under immediate delivery (there is no barrier to cross).
        """
        if self.delivery == "immediate":
            return
        with active_probe().span("mailbox:barrier"):
            self._flush_barrier_body()

    def _flush_barrier_body(self) -> None:
        injector = self._injector()
        counters = self._counters()
        for buf in self._buffers:
            with buf.lock:
                if injector is None:
                    buf.deliverable.extend(buf.pending)
                    buf.pending = []
                    continue
                held = []
                for dsts, vals in buf.pending:
                    delayed = injector.delay_mask(int(dsts.shape[0]))
                    n_delayed = int(np.count_nonzero(delayed))
                    if n_delayed == 0:
                        buf.deliverable.append((dsts, vals))
                        continue
                    if counters is not None:
                        counters.increment("messages_delayed", n_delayed)
                    keep = ~delayed
                    if keep.any():
                        buf.deliverable.append((dsts[keep], vals[keep]))
                    held.append((dsts[delayed], vals[delayed]))
                buf.pending = held

    def receive(
        self, rank: int, combiner: Optional[Combiner] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Drain rank's deliverable messages as ``(destinations, values)``.

        With a combiner, messages per destination are folded and
        destinations are unique and sorted.
        """
        if not (0 <= rank < self.n_ranks):
            raise CommunicationError(
                f"rank {rank} out of range [0, {self.n_ranks})"
            )
        buf = self._buffers[rank]
        with active_probe().span("mailbox:deliver", rank=rank) as span:
            with buf.lock:
                batches = buf.deliverable
                buf.deliverable = []
            if not batches:
                span.set("n_messages", 0)
                return (
                    np.empty(0, dtype=VERTEX_DTYPE),
                    np.empty(0, dtype=np.float64),
                )
            destinations = np.concatenate([b[0] for b in batches])
            values = np.concatenate([b[1] for b in batches])
            if combiner is not None:
                destinations, values = combiner.combine_bulk(
                    destinations, values
                )
            span.set("n_messages", int(destinations.size))
            return destinations, values

    def has_messages(self) -> bool:
        """Whether any message (pending or deliverable) is in flight."""
        for buf in self._buffers:
            with buf.lock:
                if buf.pending or buf.deliverable:
                    return True
        return False

    def vertices_of_rank(self, rank: int) -> np.ndarray:
        """Vertex ids owned by ``rank``."""
        return np.nonzero(self.owner_of == rank)[0].astype(VERTEX_DTYPE)
