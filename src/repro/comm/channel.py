"""Point-to-point FIFO channels between ranks.

The lowest-level message-passing primitive: an unbounded, thread-safe
queue with close semantics, equivalent in behavior to an MPI
send/recv pair over pickled payloads (mpi4py's lowercase API) but
in-process.  The mailbox router composes k² of these into all-to-all
vertex-addressed routing.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, List, Optional

from repro.errors import CommunicationError


class Channel:
    """An unbounded MPSC/MPMC FIFO with blocking receive and close.

    ``send`` after :meth:`close` raises; ``recv`` on a closed, drained
    channel returns ``None`` (the end-of-stream marker), matching the
    usual CSP convention.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False

    def send(self, item: Any) -> None:
        """Enqueue one message."""
        with self._lock:
            if self._closed:
                raise CommunicationError(
                    f"send on closed channel {self.name!r}"
                )
            self._items.append(item)
            self._ready.notify()

    def send_many(self, items) -> None:
        """Enqueue a batch (single lock acquisition)."""
        items = list(items)
        with self._lock:
            if self._closed:
                raise CommunicationError(
                    f"send_many on closed channel {self.name!r}"
                )
            self._items.extend(items)
            self._ready.notify(len(items))

    def recv(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue one message, blocking up to ``timeout``.

        Returns ``None`` when the channel is closed and drained, or on
        timeout.
        """
        with self._lock:
            self._ready.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            )
            if self._items:
                return self._items.popleft()
            return None

    def drain(self) -> List[Any]:
        """Dequeue everything currently buffered without blocking."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
        return items

    def close(self) -> None:
        """Mark end-of-stream; wake all blocked receivers."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
