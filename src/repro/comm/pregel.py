"""A Pregel-style "think like a vertex" engine over the mailbox router.

The paper positions Pregel as the canonical bulk-synchronous,
message-passing point of the TLAV space; this engine realizes that point
inside our abstraction: the *frontier* is the set of non-halted vertices
plus message recipients, the *operator* is the user's vertex program,
the *loop* is the superstep iteration, and *convergence* is the Pregel
rule — all vertices halted and no messages in flight.

Vertices are distributed over ranks by a partition assignment; each
superstep processes every rank's active vertices (ranks in parallel on
the thread pool when ``parallel_ranks`` is set — each rank only touches
its own vertices' values, so ranks are data-disjoint), routes messages
through the :class:`~repro.comm.mailbox.MailboxRouter`, and barriers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CommunicationError, ConvergenceError
from repro.comm.mailbox import MailboxRouter
from repro.comm.messages import Combiner
from repro.graph.graph import Graph
from repro.execution.thread_pool import get_pool
from repro.observability.probe import active_probe
from repro.resilience.deadline import active_token
from repro.types import VERTEX_DTYPE


class VertexContext:
    """What one vertex sees during ``compute``: its state and its I/O.

    The context object is reused across vertices within a rank for
    allocation economy; vertex programs must not retain it.
    """

    __slots__ = (
        "vertex",
        "superstep",
        "messages",
        "_values",
        "_graph",
        "_out_destinations",
        "_out_values",
        "_halted",
        "_agg_out",
        "_agg_in",
    )

    def __init__(self, values: np.ndarray, graph: Graph) -> None:
        self._values = values
        self._graph = graph
        self.vertex = -1
        self.superstep = 0
        self.messages: List[float] = []
        self._out_destinations: List[int] = []
        self._out_values: List[float] = []
        self._halted = None  # bound per superstep
        self._agg_out: Dict[str, float] = {}
        self._agg_in: Dict[str, float] = {}

    # -- state ------------------------------------------------------------------------

    @property
    def value(self) -> float:
        """This vertex's current value."""
        return float(self._values[self.vertex])

    @value.setter
    def value(self, v: float) -> None:
        self._values[self.vertex] = v

    def num_out_edges(self) -> int:
        """Out-degree of this vertex."""
        return self._graph.get_num_neighbors(self.vertex)

    def out_neighbors(self) -> np.ndarray:
        """Out-neighbor ids of this vertex."""
        return self._graph.get_neighbors(self.vertex)

    def out_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """(neighbor ids, edge weights) of this vertex's out-edges."""
        csr = self._graph.csr()
        return csr.get_neighbors(self.vertex), csr.get_neighbor_weights(self.vertex)

    # -- messaging ---------------------------------------------------------------------

    def send(self, destination: int, value: float) -> None:
        """Queue a message for delivery next superstep."""
        self._out_destinations.append(int(destination))
        self._out_values.append(float(value))

    def send_to_neighbors(self, value: float) -> None:
        """Queue the same message to every out-neighbor."""
        for n in self.out_neighbors():
            self._out_destinations.append(int(n))
            self._out_values.append(float(value))

    # -- aggregators ---------------------------------------------------------------------

    def aggregate(self, name: str, value: float) -> None:
        """Add ``value`` into the named global sum-aggregator.

        Aggregated totals from superstep t are visible to every vertex in
        superstep t+1 via :meth:`aggregated` — the Pregel paper's
        aggregator mechanism (sum fold), used e.g. to pool dangling
        PageRank mass.
        """
        self._agg_out[name] = self._agg_out.get(name, 0.0) + float(value)

    def aggregated(self, name: str, default: float = 0.0) -> float:
        """Last superstep's total for the named aggregator."""
        return self._agg_in.get(name, default)

    # -- control -----------------------------------------------------------------------

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message reawakens it."""
        self._halted[self.vertex] = True


class VertexProgram(abc.ABC):
    """User algorithm: one ``compute`` invocation per active vertex per
    superstep, exactly the Pregel API shape."""

    @abc.abstractmethod
    def compute(self, ctx: VertexContext) -> None:
        """Read ``ctx.messages``, update ``ctx.value``, send, maybe halt."""

    #: Optional combiner class used to fold this program's messages.
    combiner: Optional[Combiner] = None


@dataclass
class PregelStats:
    """Per-run accounting mirrored on the engine after :meth:`run`."""

    supersteps: int = 0
    total_messages: int = 0
    remote_messages: int = 0
    local_messages: int = 0


class PregelEngine:
    """Superstep driver for vertex programs.

    Parameters
    ----------
    graph:
        The graph (vertex programs traverse out-edges).
    owner_of:
        Optional vertex->rank assignment (default: single rank 0); plug a
        :mod:`repro.partition` assignment here to simulate distribution.
    parallel_ranks:
        Process ranks concurrently on the thread pool (ranks are
        data-disjoint, so this is race-free).
    max_supersteps:
        Safety cap; exceeding it raises ConvergenceError.
    resilience:
        Optional fault tolerance, passed through to the
        :class:`~repro.comm.mailbox.MailboxRouter` — message drop /
        duplicate / delay faults and the redelivery loop happen at the
        routing layer, the only safe seam (retrying rank *compute*
        would re-send its messages and break non-idempotent combiners).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        owner_of: Optional[np.ndarray] = None,
        parallel_ranks: bool = False,
        max_supersteps: int = 10_000,
        resilience=None,
    ) -> None:
        self.graph = graph
        n = graph.n_vertices
        if owner_of is None:
            owner_of = np.zeros(n, dtype=np.int64)
        owner_of = np.asarray(owner_of, dtype=np.int64).ravel()
        if owner_of.shape[0] != n:
            raise CommunicationError(
                f"owner_of must have one entry per vertex ({n}), got "
                f"{owner_of.shape[0]}"
            )
        self.owner_of = owner_of
        self.n_ranks = int(owner_of.max()) + 1 if n else 1
        self.parallel_ranks = parallel_ranks
        self.max_supersteps = max_supersteps
        self.resilience = resilience
        self.stats = PregelStats()

    def run(
        self,
        program: VertexProgram,
        initial_values: np.ndarray,
        *,
        initially_active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run ``program`` to Pregel termination; return the value vector.

        ``initially_active`` restricts superstep-0 activity (default: all
        vertices are active, the Pregel convention).
        """
        n = self.graph.n_vertices
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape[0] != n:
            raise CommunicationError(
                f"initial_values must have one entry per vertex ({n}), got "
                f"{values.shape[0]}"
            )
        halted = np.zeros(n, dtype=bool)
        if initially_active is not None:
            halted[:] = True
            halted[np.asarray(initially_active, dtype=VERTEX_DTYPE)] = False
        router = MailboxRouter(
            self.owner_of,
            self.n_ranks,
            delivery="superstep",
            resilience=self.resilience,
        )
        combiner = program.combiner
        self.stats = PregelStats()
        rank_vertices = [router.vertices_of_rank(r) for r in range(self.n_ranks)]
        aggregates: Dict[str, float] = {}

        probe = active_probe()
        token = active_token()
        for superstep in range(self.max_supersteps):
            # Cooperative cancellation at the barrier, before delivery —
            # the same between-mutations discipline as the BSP enactor.
            if token is not None:
                token.check(f"pregel:superstep:{superstep}")
            with probe.span("superstep", iteration=superstep) as span:
                # Deliver messages sent last superstep.
                router.flush_barrier()
                inboxes: List[Dict[int, List[float]]] = []
                rank_active: List[np.ndarray] = []
                any_active = False
                for rank in range(self.n_ranks):
                    dsts, vals = router.receive(rank, combiner)
                    inbox: Dict[int, List[float]] = {}
                    for d, v in zip(dsts.tolist(), vals.tolist()):
                        inbox.setdefault(d, []).append(v)
                    # Message receipt reactivates halted vertices.
                    if dsts.size:
                        halted[dsts] = False
                    inboxes.append(inbox)
                for rank in range(self.n_ranks):
                    verts = rank_vertices[rank]
                    active = verts[~halted[verts]] if verts.size else verts
                    rank_active.append(active)
                    if active.size:
                        any_active = True
                span.set(
                    "frontier_size",
                    int(sum(a.size for a in rank_active)),
                )
                if not any_active and not router.has_messages():
                    self.stats.supersteps = superstep
                    self._fold_router_stats(router)
                    self._report_metrics(probe)
                    return values

                rank_aggregates: List[Dict[str, float]] = [
                    {} for _ in range(self.n_ranks)
                ]

                def run_rank(rank: int) -> None:
                    with probe.span(
                        "pregel:rank",
                        rank=rank,
                        active=int(rank_active[rank].size),
                    ):
                        ctx = VertexContext(values, self.graph)
                        ctx.superstep = superstep
                        ctx._halted = halted
                        ctx._agg_in = aggregates
                        inbox = inboxes[rank]
                        for v in rank_active[rank]:
                            v = int(v)
                            ctx.vertex = v
                            ctx.messages = inbox.get(v, [])
                            program.compute(ctx)
                        if ctx._out_destinations:
                            router.send(
                                np.asarray(
                                    ctx._out_destinations, dtype=VERTEX_DTYPE
                                ),
                                np.asarray(ctx._out_values, dtype=np.float64),
                                from_rank=rank,
                            )
                            self.stats.total_messages += len(
                                ctx._out_destinations
                            )
                        rank_aggregates[rank] = ctx._agg_out

                if self.parallel_ranks and self.n_ranks > 1:
                    pool = get_pool(min(self.n_ranks, 8))
                    pool.run_tasks(
                        [lambda r=r: run_rank(r) for r in range(self.n_ranks)]
                    )
                else:
                    for rank in range(self.n_ranks):
                        run_rank(rank)
                # Fold per-rank aggregator sums; visible next superstep.
                aggregates = {}
                for partial in rank_aggregates:
                    for key, val in partial.items():
                        aggregates[key] = aggregates.get(key, 0.0) + val
        raise ConvergenceError(
            f"Pregel program did not terminate within "
            f"{self.max_supersteps} supersteps"
        )

    def _report_metrics(self, probe) -> None:
        """Mirror :class:`PregelStats` into the ambient metrics registry
        (the message-passing counterpart of ``MetricsRegistry.record_run``)."""
        if not probe.enabled:
            return
        probe.counter("pregel.supersteps", self.stats.supersteps)
        probe.counter("pregel.total_messages", self.stats.total_messages)
        probe.counter("pregel.remote_messages", self.stats.remote_messages)
        probe.counter("pregel.local_messages", self.stats.local_messages)

    def _fold_router_stats(self, router: MailboxRouter) -> None:
        self.stats.remote_messages = router.remote_messages
        self.stats.local_messages = router.local_messages
