"""Asynchronous vertex-program execution — message passing without
supersteps.

§III-B closes with: "depending on the size and workload imbalance of a
frontier, an asynchronous execution model with message-passing to
communicate the active working set can be more efficient."  This engine
is that quadrant: vertex programs identical in spirit to the Pregel
ones, but messages are delivered the moment they are sent (the
router's ``immediate`` discipline realized as a task queue) and
each delivery wakes its destination vertex as an independent task —
no barrier ever.

The applicability contract is narrower than BSP Pregel's, exactly as
TLAV describes async models being "more complex": programs must be
**monotone fold programs** — the vertex state is updated by folding
incoming message values with an idempotent, order-insensitive fold
(min/max), so stale or re-ordered deliveries cannot corrupt the fixed
point.  SSSP and min-label components qualify; fixed-round PageRank does
not (it needs superstep alignment), which tests assert by construction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from repro.errors import CommunicationError
from repro.graph.graph import Graph
from repro.execution.atomics import AtomicArray
from repro.execution.scheduler import AsyncScheduler


class AsyncFoldEngine:
    """Asynchronous monotone-fold vertex engine.

    Parameters
    ----------
    graph:
        Graph whose out-edges carry messages.
    fold:
        ``"min"`` or ``"max"`` — the idempotent fold applied to incoming
        message values.
    emit:
        ``emit(vertex, value, neighbor, weight) -> Optional[float]`` —
        the message a vertex sends along one out-edge after its value
        improves (``None`` = send nothing).  For SSSP:
        ``lambda v, val, n, w: val + w``.
    num_workers, timeout:
        Scheduler knobs (quiescence detection handles termination).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        fold: str = "min",
        emit: Callable[[int, float, int, float], Optional[float]],
        num_workers: int = 4,
        timeout: Optional[float] = 120.0,
    ) -> None:
        if fold not in ("min", "max"):
            raise CommunicationError(f"fold must be 'min' or 'max', got {fold!r}")
        self.graph = graph
        self.fold = fold
        self.emit = emit
        self.num_workers = num_workers
        self.timeout = timeout
        #: Tasks processed in the last run (re-activations included).
        self.tasks_processed = 0

    def run(
        self,
        initial_values: np.ndarray,
        initially_active: Iterable[int],
    ) -> np.ndarray:
        """Fold to quiescence; return the final value vector."""
        n = self.graph.n_vertices
        values = np.asarray(initial_values, dtype=np.float64).copy()
        if values.shape[0] != n:
            raise CommunicationError(
                f"initial_values must have one entry per vertex ({n}), got "
                f"{values.shape[0]}"
            )
        atomic = AtomicArray(values)
        csr = self.graph.csr()
        improves = (
            (lambda new, old: new < old)
            if self.fold == "min"
            else (lambda new, old: new > old)
        )
        fold_at = atomic.min_at if self.fold == "min" else atomic.max_at

        def process(v: int, push) -> None:
            # A task means "v's value may have changed: re-emit".  Reading
            # the freshest value is safe because emission is monotone.
            val = atomic.load(v)
            nbrs = csr.get_neighbors(v)
            wts = csr.get_neighbor_weights(v)
            for k in range(nbrs.shape[0]):
                u = int(nbrs[k])
                msg = self.emit(v, val, u, float(wts[k]))
                if msg is None:
                    continue
                old = fold_at(u, msg)
                if improves(msg, old):
                    push(u)

        scheduler = AsyncScheduler(self.num_workers)
        self.tasks_processed = scheduler.run(
            process, [int(v) for v in initially_active], n, timeout=self.timeout
        )
        return values


def async_sssp_messages(
    graph: Graph,
    source: int,
    *,
    num_workers: int = 4,
    timeout: Optional[float] = 120.0,
) -> Tuple[np.ndarray, int]:
    """SSSP through the asynchronous message-passing engine.

    Returns ``(distances, tasks_processed)`` — the distance vector agrees
    with every other SSSP variant (tests), and the task count is the
    async work metric the communication bench reports.
    """
    from repro.types import INF

    n = graph.n_vertices
    init = np.full(n, float(INF))
    init[source] = 0.0
    engine = AsyncFoldEngine(
        graph,
        fold="min",
        emit=lambda v, val, u, w: val + w if val < float(INF) else None,
        num_workers=num_workers,
        timeout=timeout,
    )
    values = engine.run(init, [source])
    return values.astype(np.float32), engine.tasks_processed


def async_components_messages(
    graph: Graph,
    *,
    num_workers: int = 4,
    timeout: Optional[float] = 120.0,
) -> np.ndarray:
    """Min-label components through the asynchronous engine (undirected
    graphs; directed inputs give forward-reachability labels)."""
    n = graph.n_vertices
    engine = AsyncFoldEngine(
        graph,
        fold="min",
        emit=lambda v, val, u, w: val,
        num_workers=num_workers,
        timeout=timeout,
    )
    values = engine.run(
        np.arange(n, dtype=np.float64), range(n)
    )
    return values.astype(np.int64)
