"""Parallel operators — essential component 3 (§IV-C).

Operators transform, expand, or contract frontiers and graphs.  Each is
overloaded on the execution-policy *type* (Listing 3's
``enable_if`` mechanism): the same call site runs sequentially,
thread-parallel with a barrier, asynchronously, or as one NumPy bulk
kernel, with identical semantics — the property the operator tests
assert directly.

* :func:`~repro.operators.advance.neighbors_expand` — traversal
  (frontier expansion), push or pull (Listing 3).
* :func:`~repro.operators.filter.filter_frontier` — frontier contraction
  by per-vertex predicate.
* :func:`~repro.operators.foreach.for_each` — per-element compute.
* :mod:`~repro.operators.reduce` — reductions over per-vertex values.
* :func:`~repro.operators.uniquify.uniquify` — duplicate removal.
* :func:`~repro.operators.intersection.segmented_intersection_counts` —
  sorted-neighborhood intersection (triangle counting).
* :mod:`~repro.operators.load_balance` — the chunking schedules
  ("this is where the bulk of optimizations can be introduced, such as
  ... load balancing").
"""

from repro.operators.advance import neighbors_expand
from repro.operators.filter import filter_frontier
from repro.operators.foreach import for_each
from repro.operators.reduce import reduce_values, argreduce
from repro.operators.uniquify import uniquify
from repro.operators.intersection import segmented_intersection_counts
from repro.operators.segmented import segmented_neighbor_reduce
from repro.operators.conditions import bulk_condition, scalar_condition

__all__ = [
    "neighbors_expand",
    "filter_frontier",
    "for_each",
    "reduce_values",
    "argreduce",
    "uniquify",
    "segmented_intersection_counts",
    "segmented_neighbor_reduce",
    "bulk_condition",
    "scalar_condition",
]
