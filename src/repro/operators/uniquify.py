"""Uniquify: remove duplicate ids from a frontier.

Push advance may emit a vertex once per discovering parent; algorithms
needing set semantics dedup between supersteps.  Two strategies:

* **sort** — sort the id vector and drop adjacent repeats (the
  ``np.unique`` recipe): O(k log k), output sorted (deterministic
  downstream iteration order).
* **bitmap** — scatter into a capacity-length flag array and gather
  back: O(k + n), wins when the frontier is a large fraction of the
  graph.  Equivalent to a round-trip through the dense representation.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.frontier.dense import DenseFrontier
from repro.frontier.sparse import SparseFrontier
from repro.execution.policy import ExecutionPolicy, resolve_policy
from repro.types import VERTEX_DTYPE


def uniquify(
    policy: Union[str, ExecutionPolicy],
    frontier: Frontier,
    *,
    strategy: str = "auto",
    workspace=None,
) -> Frontier:
    """Return a duplicate-free sparse frontier with the same active set.

    ``strategy``: ``"sort"``, ``"bitmap"``, or ``"auto"`` (bitmap unless
    the frontier is a sliver of capacity — the scatter/gather round-trip
    beats the sort well before 10% occupancy, and with a ``workspace``
    the flag buffer is pooled so bitmap wins from ~64 ids up).  Dense
    frontiers are already duplicate-free and are returned unchanged.
    Both strategies produce the identical sorted output.
    """
    resolve_policy(policy)  # validated for interface uniformity
    if frontier.kind is not FrontierKind.VERTEX:
        raise FrontierError("uniquify requires a vertex frontier")
    if isinstance(frontier, DenseFrontier):
        return frontier
    # ids already in the frontier passed validation on the way in, so the
    # dedup round-trip can use the zero-copy view and the trusted append.
    if isinstance(frontier, SparseFrontier):
        indices = frontier.indices_view()
    else:
        indices = frontier.to_indices()
    out = SparseFrontier(frontier.capacity)
    if indices.size == 0:
        return out
    if strategy == "auto":
        strategy = (
            "bitmap"
            if indices.size > max(64, frontier.capacity // 1024)
            else "sort"
        )
    if strategy == "sort":
        # np.unique's core, inlined: sort then drop adjacent repeats.
        # Identical output, but avoids np.unique's lazy numpy.ma import
        # — a one-time ~20ms hit that would land inside the first timed
        # superstep of a cold process.
        s = np.sort(indices)
        keep = np.empty(s.shape, dtype=bool)
        keep[0] = True
        np.not_equal(s[1:], s[:-1], out=keep[1:])
        out.add_many_trusted(s[keep])
    elif strategy == "bitmap":
        if workspace is not None:
            flags = workspace.cleared("uniquify.flags", frontier.capacity, bool)
        else:
            flags = np.zeros(frontier.capacity, dtype=bool)
        flags[indices] = True
        out.add_many_trusted(np.nonzero(flags)[0].astype(VERTEX_DTYPE))
    else:
        raise ValueError(
            f"strategy must be 'sort', 'bitmap', or 'auto', got {strategy!r}"
        )
    return out
