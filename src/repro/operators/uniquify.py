"""Uniquify: remove duplicate ids from a frontier.

Push advance may emit a vertex once per discovering parent; algorithms
needing set semantics dedup between supersteps.  Two strategies:

* **sort** — ``np.unique`` on the id vector: O(k log k), output sorted
  (deterministic downstream iteration order).
* **bitmap** — scatter into a capacity-length flag array and gather
  back: O(k + n), wins when the frontier is a large fraction of the
  graph.  Equivalent to a round-trip through the dense representation.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.frontier.dense import DenseFrontier
from repro.frontier.sparse import SparseFrontier
from repro.execution.policy import ExecutionPolicy, resolve_policy
from repro.types import VERTEX_DTYPE


def uniquify(
    policy: Union[str, ExecutionPolicy],
    frontier: Frontier,
    *,
    strategy: str = "auto",
) -> Frontier:
    """Return a duplicate-free sparse frontier with the same active set.

    ``strategy``: ``"sort"``, ``"bitmap"``, or ``"auto"`` (bitmap once
    the frontier exceeds ~10% of capacity, else sort).  Dense frontiers
    are already duplicate-free and are returned unchanged.
    """
    resolve_policy(policy)  # validated for interface uniformity
    if frontier.kind is not FrontierKind.VERTEX:
        raise FrontierError("uniquify requires a vertex frontier")
    if isinstance(frontier, DenseFrontier):
        return frontier
    indices = frontier.to_indices()
    out = SparseFrontier(frontier.capacity)
    if indices.size == 0:
        return out
    if strategy == "auto":
        strategy = (
            "bitmap" if indices.size > max(64, frontier.capacity // 10) else "sort"
        )
    if strategy == "sort":
        out.add_many(np.unique(indices))
    elif strategy == "bitmap":
        flags = np.zeros(frontier.capacity, dtype=bool)
        flags[indices] = True
        out.add_many(np.nonzero(flags)[0].astype(VERTEX_DTYPE))
    else:
        raise ValueError(
            f"strategy must be 'sort', 'bitmap', or 'auto', got {strategy!r}"
        )
    return out
