"""Edge/vertex condition handling: scalar lambdas vs bulk array kernels.

The paper's operators take C++ lambdas over the tuple {source,
destination, edge, weight} (§III-C).  In Python the same user condition
can be written two ways:

* **scalar** — ``cond(src, dst, edge, weight) -> bool``, called once per
  edge (readable, used by ``seq``);
* **bulk** — the identical signature but over ndarrays, returning a
  boolean ndarray (the vectorized form the ``par_vector`` policy needs).

Many NumPy-expressed conditions are *both* (arithmetic and comparisons
broadcast), so :func:`apply_edge_condition` first tries the bulk call
and transparently falls back to a scalar loop when the result is not a
well-formed mask.  Authors can skip the probe by decorating with
:func:`bulk_condition` or :func:`scalar_condition`.

Precision note: the scalar form receives Python ``float`` (float64)
weights while the bulk form receives the stored ``float32`` arrays, and
NumPy evaluates comparisons against Python scalars in the array's
dtype.  A threshold that is not exactly representable in float32 can
therefore classify a boundary edge differently between the two forms.
When exact scalar/bulk agreement matters (the policy-equivalence tests
rely on it), round constants through ``np.float32`` first.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

_BULK_ATTR = "__repro_bulk_condition__"


def bulk_condition(fn: Callable) -> Callable:
    """Mark ``fn`` as vectorized: it accepts ndarrays and returns a mask."""
    setattr(fn, _BULK_ATTR, True)
    return fn


def scalar_condition(fn: Callable) -> Callable:
    """Mark ``fn`` as scalar-only: it must be looped, never probed."""
    setattr(fn, _BULK_ATTR, False)
    return fn


def call_condition_scalar(
    condition: Callable, src: int, dst: int, edge: int, weight: float
) -> bool:
    """Evaluate ``condition`` on a single edge, whatever its form.

    The ``seq`` policies walk one edge at a time, but a condition marked
    ``@bulk_condition`` only accepts arrays — hand it a length-1 batch so
    bulk-only algorithms (e.g. Brandes' path counting) still run
    sequentially instead of crashing on scalar arguments.
    """
    if getattr(condition, _BULK_ATTR, None) is True:
        mask = condition(
            np.asarray([src], dtype=np.int64),
            np.asarray([dst], dtype=np.int64),
            np.asarray([edge], dtype=np.int64),
            np.asarray([weight]),
        )
        return bool(np.asarray(mask).reshape(-1)[0])
    return bool(condition(src, dst, edge, weight))


def call_predicate_scalar(predicate: Callable, vertex: int) -> bool:
    """Single-vertex twin of :func:`call_condition_scalar`."""
    if getattr(predicate, _BULK_PRED_ATTR, None) is True:
        mask = predicate(np.asarray([vertex], dtype=np.int64))
        return bool(np.asarray(mask).reshape(-1)[0])
    return bool(predicate(vertex))


def _loop_condition(
    condition: Callable,
    sources: np.ndarray,
    dests: np.ndarray,
    edges: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    out = np.empty(sources.shape[0], dtype=bool)
    for k in range(sources.shape[0]):
        out[k] = bool(
            condition(
                int(sources[k]), int(dests[k]), int(edges[k]), float(weights[k])
            )
        )
    return out


def apply_edge_condition(
    condition: Callable,
    sources: np.ndarray,
    dests: np.ndarray,
    edges: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Evaluate ``condition`` over a batch of edges; return a boolean mask.

    Dispatch order: explicit marking via the decorators, else probe the
    bulk call and fall back to the scalar loop on failure.  A bulk result
    must be a boolean-convertible array of the batch length; anything
    else (scalar ``bool`` from a condition that used ``if``, wrong
    length, exception) triggers the fallback.
    """
    n = sources.shape[0]
    if n == 0:
        return np.empty(0, dtype=bool)
    marked = getattr(condition, _BULK_ATTR, None)
    if marked is False:
        return _loop_condition(condition, sources, dests, edges, weights)
    try:
        result = condition(sources, dests, edges, weights)
    except Exception:
        if marked is True:
            raise
        return _loop_condition(condition, sources, dests, edges, weights)
    result = np.asarray(result)
    if result.shape == (n,):
        return result.astype(bool, copy=False)
    if marked is True:
        raise ValueError(
            f"bulk condition returned shape {result.shape}, expected ({n},)"
        )
    return _loop_condition(condition, sources, dests, edges, weights)


_BULK_PRED_ATTR = "__repro_bulk_predicate__"


def bulk_predicate(fn: Callable) -> Callable:
    """Mark a vertex predicate ``fn(vertices) -> mask`` as vectorized."""
    setattr(fn, _BULK_PRED_ATTR, True)
    return fn


def scalar_predicate(fn: Callable) -> Callable:
    """Mark a vertex predicate as scalar-only."""
    setattr(fn, _BULK_PRED_ATTR, False)
    return fn


def apply_vertex_predicate(predicate: Callable, vertices: np.ndarray) -> np.ndarray:
    """Evaluate a per-vertex predicate over a batch; return a boolean mask.

    Same probe-then-fallback protocol as :func:`apply_edge_condition`.
    """
    n = vertices.shape[0]
    if n == 0:
        return np.empty(0, dtype=bool)
    marked = getattr(predicate, _BULK_PRED_ATTR, None)

    def loop() -> np.ndarray:
        out = np.empty(n, dtype=bool)
        for k in range(n):
            out[k] = bool(predicate(int(vertices[k])))
        return out

    if marked is False:
        return loop()
    try:
        result = predicate(vertices)
    except Exception:
        if marked is True:
            raise
        return loop()
    result = np.asarray(result)
    if result.shape == (n,):
        return result.astype(bool, copy=False)
    if marked is True:
        raise ValueError(
            f"bulk predicate returned shape {result.shape}, expected ({n},)"
        )
    return loop()
