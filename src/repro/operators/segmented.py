"""Segmented neighborhood reduce: fold a value over each vertex's
neighbors in one bulk operation.

The pull-direction workhorse: PageRank's "sum my in-neighbors' shares",
pull-SSSP's "min over in-neighbors of dist+w", degree-weighted averages
for label propagation — all are segmented reductions over the CSC (or
CSR) segments.  The vectorized implementation is a ufunc scatter-reduce
over the flattened edge list; the threaded overload splits the segment
space (vertex-disjoint output, so no synchronization).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.errors import ExecutionPolicyError
from repro.graph.graph import Graph
from repro.execution.policy import (
    ExecutionPolicy,
    ParallelNoSyncPolicy,
    ParallelPolicy,
    SequencedPolicy,
    VectorPolicy,
    resolve_policy,
)
from repro.execution.thread_pool import even_chunks, get_pool

_UFUNCS = {
    "sum": (np.add, 0.0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
}


def segmented_neighbor_reduce(
    policy: Union[str, ExecutionPolicy],
    graph: Graph,
    values: np.ndarray,
    *,
    op: str = "sum",
    direction: str = "out",
    edge_transform: Optional[Callable] = None,
) -> np.ndarray:
    """For every vertex v, reduce ``values[u]`` over its neighbors u.

    Parameters
    ----------
    values:
        Per-vertex input vector (length n).
    op:
        ``"sum"`` | ``"min"`` | ``"max"``.
    direction:
        ``"out"`` reduces over out-neighbors (CSR), ``"in"`` over
        in-neighbors (CSC) — the pull form.
    edge_transform:
        Optional ``f(neighbor_values, weights) -> contributions`` applied
        per edge before the fold (e.g. ``lambda vals, w: vals + w`` for
        pull-SSSP relaxation, ``lambda vals, w: vals * w`` for weighted
        sums).  Receives ndarrays under the vectorized policy and is
        expected to broadcast.

    Returns
    -------
    numpy.ndarray
        Length-n float64 vector; vertices with no neighbors hold the
        fold identity (0 / +inf / -inf).
    """
    policy = resolve_policy(policy)
    if op not in _UFUNCS:
        raise ValueError(f"op must be one of {sorted(_UFUNCS)}, got {op!r}")
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    ufunc, identity = _UFUNCS[op]
    n = graph.n_vertices
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] != n:
        raise ValueError(
            f"values must have one entry per vertex ({n}), got {values.shape[0]}"
        )
    out = np.full(n, identity, dtype=np.float64)

    if direction == "out":
        csr = graph.csr()
        offsets, targets, weights = (
            csr.row_offsets,
            csr.column_indices,
            csr.values,
        )
    else:
        csc = graph.csc()
        offsets, targets, weights = (
            csc.col_offsets,
            csc.row_indices,
            csc.values,
        )

    def reduce_span(start: int, stop: int) -> None:
        lo, hi = int(offsets[start]), int(offsets[stop])
        if lo == hi:
            return
        contrib = values[targets[lo:hi]]
        if edge_transform is not None:
            contrib = edge_transform(
                contrib, weights[lo:hi].astype(np.float64)
            )
        # Segment ids relative to the span, then one scatter-reduce.
        seg = (
            np.searchsorted(
                offsets[start : stop + 1],
                np.arange(lo, hi),
                side="right",
            )
            - 1
        )
        ufunc.at(out[start:stop], seg, contrib)

    if isinstance(policy, (SequencedPolicy, VectorPolicy)):
        reduce_span(0, n)
        return out
    if isinstance(policy, (ParallelPolicy, ParallelNoSyncPolicy)):
        pool = get_pool(policy.num_workers)
        chunks = even_chunks(n, policy.num_workers or pool.num_workers)
        # Output spans are vertex-disjoint: race-free by construction.
        pool.run_tasks([lambda s=s, e=e: reduce_span(s, e) for s, e in chunks])
        return out
    raise ExecutionPolicyError(
        f"segmented_neighbor_reduce has no overload for policy {policy!r}"
    )
