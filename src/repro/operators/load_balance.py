"""Load-balancing schedules for the threaded operator overloads.

"A high-performance graph analytics implementation relies on efficient
parallel operators ... This is where the bulk of optimizations can be
introduced, such as utilizing data parallelism and load balancing."
(§IV-C)

Two schedules split a frontier into contiguous chunks for the worker
threads:

* **vertex-balanced** — equal *vertex counts* per chunk.  Cheap to
  compute, but a chunk that contains one hub of a scale-free graph does
  almost all the work (the classic R-MAT pathology; bench F2).
* **edge-balanced** — equal *total degree* per chunk (a merge-path-style
  split on the cumulative degree curve).  Costs one cumsum +
  searchsorted; equalizes actual traversal work.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.execution.thread_pool import even_chunks

Chunk = Tuple[int, int]


def vertex_balanced_chunks(n_vertices: int, n_chunks: int) -> List[Chunk]:
    """Split ``range(n_vertices)`` into near-equal-count spans."""
    return even_chunks(n_vertices, n_chunks)


def edge_balanced_chunks(degrees: np.ndarray, n_chunks: int) -> List[Chunk]:
    """Split frontier positions so each chunk owns ~equal total degree.

    ``degrees[i]`` is the degree of the i-th frontier element.  Chunk
    boundaries are found by binary-searching the cumulative degree curve
    at evenly spaced work targets; empty chunks are dropped.
    """
    n = degrees.shape[0]
    if n == 0:
        return []
    n_chunks = max(1, min(n_chunks, n))
    if n_chunks == 1:
        return [(0, n)]
    cum = np.cumsum(degrees, dtype=np.int64)
    total = int(cum[-1])
    if total == 0:
        return even_chunks(n, n_chunks)
    targets = (np.arange(1, n_chunks, dtype=np.float64) * total) / n_chunks
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate(([0], np.minimum(cuts, n), [n]))
    bounds = np.maximum.accumulate(bounds)  # keep monotone after clamping
    chunks = [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]
    return chunks


def make_chunks(
    degrees: np.ndarray, n_chunks: int, mode: str
) -> List[Chunk]:
    """Dispatch on the policy's ``load_balance`` knob."""
    if mode == "vertex":
        return vertex_balanced_chunks(degrees.shape[0], n_chunks)
    if mode == "edge":
        return edge_balanced_chunks(degrees, n_chunks)
    raise ValueError(f"unknown load-balance mode {mode!r}")


def chunk_imbalance(degrees: np.ndarray, chunks: List[Chunk]) -> float:
    """Max/mean ratio of per-chunk work — 1.0 is a perfect balance.

    The metric the load-balancing bench reports for both schedules.
    """
    if not chunks:
        return 1.0
    work = np.array([int(degrees[s:e].sum()) for s, e in chunks], dtype=np.float64)
    mean = work.mean()
    if mean == 0:
        return 1.0
    return float(work.max() / mean)
