"""Filter: frontier contraction by a per-vertex predicate.

The companion of advance — "operators ... transform, expand, or
*contract* the frontiers" (§IV-C).  BFS uses it to drop already-visited
discoveries; k-core uses it to keep only vertices below the degree
threshold.  Overloaded on policy like every operator.
"""

from __future__ import annotations

import threading
from typing import Callable, Union

import numpy as np

from repro.errors import ExecutionPolicyError, FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.frontier.dense import DenseFrontier
from repro.frontier.sparse import SparseFrontier
from repro.operators.conditions import (
    apply_vertex_predicate,
    call_predicate_scalar,
)
from repro.execution.policy import (
    ExecutionPolicy,
    ParallelNoSyncPolicy,
    ParallelPolicy,
    SequencedPolicy,
    VectorPolicy,
    resolve_policy,
)
from repro.execution.thread_pool import even_chunks, get_pool
from repro.observability.probe import active_probe


def filter_frontier(
    policy: Union[str, ExecutionPolicy],
    frontier: Frontier,
    predicate: Callable,
    *,
    output_representation: str = "sparse",
) -> Frontier:
    """Keep only the active vertices for which ``predicate(v)`` is true.

    ``predicate`` may be scalar (``v -> bool``) or bulk
    (``ndarray -> mask``); see :mod:`repro.operators.conditions`.
    The output preserves input multiplicity (duplicates that pass remain
    duplicated) except with a dense output, whose bitmap dedups.
    """
    policy = resolve_policy(policy)
    if frontier.kind is not FrontierKind.VERTEX:
        raise FrontierError("filter_frontier requires a vertex frontier")
    if output_representation == "sparse":
        output: Frontier = SparseFrontier(frontier.capacity)
    elif output_representation == "dense":
        output = DenseFrontier(frontier.capacity)
    else:
        raise FrontierError(
            f"unknown output representation {output_representation!r}"
        )
    vertices = (
        frontier.indices_view()
        if isinstance(frontier, SparseFrontier)
        else frontier.to_indices()
    )
    if vertices.size == 0:
        return output

    probe = active_probe()
    if not probe.enabled:
        return _filter_dispatch(policy, vertices, predicate, output)
    with probe.span(
        "operator:filter",
        policy=policy.name,
        frontier_size=int(vertices.size),
    ) as span:
        result = _filter_dispatch(policy, vertices, predicate, output)
        span.set("output_size", len(result))
        return result


def _filter_dispatch(policy, vertices, predicate, output):
    """Overload selection shared by the traced and untraced paths."""
    if isinstance(policy, SequencedPolicy):
        for v in vertices:
            if call_predicate_scalar(predicate, int(v)):
                output.add(int(v))
        return output
    if isinstance(policy, VectorPolicy):
        mask = apply_vertex_predicate(predicate, vertices)
        output.add_many(vertices[mask])
        return output
    if isinstance(policy, (ParallelPolicy, ParallelNoSyncPolicy)):
        pool = get_pool(policy.num_workers)
        chunks = even_chunks(
            vertices.shape[0], policy.num_workers or pool.num_workers
        )
        if isinstance(policy, ParallelPolicy):
            results = pool.run_tasks(
                [
                    (lambda s=s, e=e: vertices[s:e][
                        apply_vertex_predicate(predicate, vertices[s:e])
                    ])
                    for s, e in chunks
                ]
            )
            for passed in results:
                output.add_many(passed)
        else:
            lock = threading.Lock()

            def body(s, e):
                passed = vertices[s:e][
                    apply_vertex_predicate(predicate, vertices[s:e])
                ]
                with lock:
                    output.add_many(passed)

            pool.run_tasks([lambda s=s, e=e: body(s, e) for s, e in chunks])
        return output
    raise ExecutionPolicyError(
        f"filter_frontier has no overload for policy {policy!r}"
    )
