"""For-each: per-element compute over a frontier or the whole vertex set.

The "transformation" operator family: PageRank's rank update, CC's
pointer assignments, initialization sweeps.  The function mutates shared
per-vertex arrays (shared-memory communication model); with threaded
policies the caller is responsible for making the body race-free
(element-local writes or :class:`~repro.execution.atomics.AtomicArray`).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.errors import ExecutionPolicyError
from repro.frontier.base import Frontier
from repro.frontier.sparse import SparseFrontier
from repro.execution.policy import (
    ExecutionPolicy,
    ParallelNoSyncPolicy,
    ParallelPolicy,
    SequencedPolicy,
    VectorPolicy,
    resolve_policy,
)
from repro.execution.thread_pool import even_chunks, get_pool
from repro.types import VERTEX_DTYPE


def for_each(
    policy: Union[str, ExecutionPolicy],
    elements: Union[Frontier, np.ndarray, int],
    fn: Callable,
) -> None:
    """Apply ``fn`` to every element.

    ``elements`` may be a frontier (its active set), an index array, or
    an integer ``n`` (meaning ``0..n-1`` — the "over all vertices" sweep).

    ``fn`` contract by policy:

    * ``seq`` / ``par`` / ``par_nosync`` — scalar ``fn(v)`` per element;
      the threaded overloads chunk the index space (``par`` barriers at
      the end, ``par_nosync`` runs chunks unordered — identical here
      since for_each returns nothing, but the overload exists so timing
      measurements compare like with like).
    * ``par_vector`` — **one** call ``fn(indices_array)``; the body is
      expected to use NumPy fancy indexing itself.
    """
    policy = resolve_policy(policy)
    if isinstance(elements, Frontier):
        indices = (
            elements.indices_view()
            if isinstance(elements, SparseFrontier)
            else elements.to_indices()
        )
    elif isinstance(elements, (int, np.integer)):
        indices = np.arange(int(elements), dtype=VERTEX_DTYPE)
    else:
        indices = np.asarray(elements).ravel()
    if indices.size == 0:
        return

    if isinstance(policy, SequencedPolicy):
        for v in indices:
            fn(int(v))
        return
    if isinstance(policy, VectorPolicy):
        fn(indices)
        return
    if isinstance(policy, (ParallelPolicy, ParallelNoSyncPolicy)):
        pool = get_pool(policy.num_workers)
        chunks = even_chunks(indices.shape[0], policy.num_workers or pool.num_workers)

        def body(start, stop):
            for v in indices[start:stop]:
                fn(int(v))

        pool.run_tasks([lambda s=s, e=e: body(s, e) for s, e in chunks])
        return
    raise ExecutionPolicyError(f"for_each has no overload for policy {policy!r}")
