"""Neighbor-expand (advance): the traversal operator of Listing 3.

``neighbors_expand(policy, graph, frontier, condition)`` visits every
edge incident to the frontier and builds the output frontier from the
edges whose user ``condition(src, dst, edge, weight)`` returns true —
the same contract for every execution policy:

========== ===================================================================
policy      implementation selected (the "overload")
========== ===================================================================
seq         Python loop in the invoking thread, scalar condition
par         frontier chunked over the thread pool (vertex- or edge-balanced),
            each chunk a vectorized mini-expand, barrier before returning
par_nosync  same chunks as tasks on a queue; results stream into an
            AsyncQueueFrontier as each task retires — chunks are never
            barriered against each other (callers typically hand that queue
            straight to the async enactor; see loop/async_enactor.py for the
            fully barrier-free loop)
par_vector  one bulk NumPy gather + mask over the whole frontier
========== ===================================================================

Direction (§III-C): ``push`` walks out-edges of active sources via the
CSR view; ``pull`` walks in-edges of *candidate* vertices via the CSC
view and asks whether any active in-neighbor satisfies the condition.
Pull hands the condition CSC edge positions (documented, since edge ids
then index the transposed layout).  ``direction="auto"`` picks per call
via the Beamer alpha/beta heuristic; ``output_representation="auto"``
picks sparse vs dense from the input frontier's density (both in
:mod:`repro.operators.fused`).

Conditions built by the fused factories
(:func:`~repro.operators.fused.min_relax_condition`,
:func:`~repro.operators.fused.claim_levels_condition`) carry a
single-pass kernel; under the vectorized policy ``neighbors_expand``
routes through it — same signature, same results, one pass instead of
gather → condition → scatter.  The optional ``workspace=`` reuses
scratch buffers across calls (see
:mod:`repro.execution.workspace`).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Union

import numpy as np

from repro.errors import ExecutionPolicyError, FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.frontier.dense import DenseFrontier
from repro.frontier.edge import EdgeFrontier
from repro.frontier.queue import AsyncQueueFrontier
from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.operators.conditions import apply_edge_condition, call_condition_scalar
from repro.operators.fused import (
    _gather_segments,
    choose_direction,
    choose_representation,
    dedup_ids,
    fused_kernel_of,
)
from repro.operators.load_balance import make_chunks
from repro.execution.policy import (
    ExecutionPolicy,
    ParallelNoSyncPolicy,
    ParallelPolicy,
    ProcPolicy,
    SequencedPolicy,
    VectorPolicy,
    resolve_policy,
)
from repro.execution.thread_pool import get_pool
from repro.observability.probe import active_probe
from repro.types import VERTEX_DTYPE


def _frontier_vertices(frontier: Frontier) -> np.ndarray:
    if frontier.kind is not FrontierKind.VERTEX:
        raise FrontierError(
            "neighbors_expand requires a vertex frontier; convert edge "
            "frontiers with EdgeFrontier.resolve first"
        )
    if isinstance(frontier, SparseFrontier):
        return frontier.indices_view()
    return frontier.to_indices()


def _make_output(
    representation: str, capacity: int
) -> Union[SparseFrontier, DenseFrontier, AsyncQueueFrontier]:
    if representation == "sparse":
        return SparseFrontier(capacity)
    if representation == "dense":
        return DenseFrontier(capacity)
    if representation == "queue":
        return AsyncQueueFrontier(capacity)
    raise FrontierError(
        f"unknown output representation {representation!r}; expected "
        f"'sparse', 'dense', or 'queue'"
    )


# -- push implementations ------------------------------------------------------


def _push_seq(graph, vertices, condition, output):
    csr = graph.csr()
    for v in vertices:
        v = int(v)
        for e in csr.get_edges(v):
            n = csr.get_dest_vertex(e)
            w = csr.get_edge_weight(e)
            if call_condition_scalar(condition, v, n, e, w):
                output.add(n)
    return output


def _push_vector(graph, vertices, condition, output, workspace=None):
    csr = graph.csr()
    if workspace is None:
        sources, dests, edges, weights = csr.expand_vertices(vertices)
        if dests.size == 0:
            return output
    else:
        edges, counts = _gather_segments(csr.row_offsets, vertices, workspace)
        if edges is None:
            return output
        sources = np.repeat(vertices, counts)
        dests = workspace.take("advance.dsts", csr.column_indices, edges)
        weights = workspace.take("advance.wts", csr.values, edges)
    mask = apply_edge_condition(condition, sources, dests, edges, weights)
    passed = dests[mask]
    # Destinations come from the graph's own column_indices: in range by
    # construction, so the sparse output can skip re-validation.
    if isinstance(output, SparseFrontier):
        output.add_many_trusted(passed)
    else:
        output.add_many(passed)
    return output


def _push_threaded(policy, graph, vertices, condition, output, *, ordered_merge):
    """Shared body of the ``par`` and ``par_nosync`` overloads.

    Each chunk runs the vectorized mini-expand; ``ordered_merge`` selects
    whether results are merged after the barrier in chunk order (par) or
    pushed into the (thread-safe) output as each chunk retires
    (par_nosync).
    """
    csr = graph.csr()
    pool = get_pool(policy.num_workers)
    degrees = csr.degrees_of(vertices) if vertices.size else np.empty(0, np.int64)
    n_chunks = policy.num_workers or pool.num_workers
    if policy.chunk_size is not None and vertices.size:
        n_chunks = max(1, -(-vertices.size // policy.chunk_size))
    chunks = make_chunks(degrees, n_chunks, policy.load_balance)
    if not chunks:
        return output
    lock = threading.Lock()

    if ordered_merge:
        def body(start, stop):
            srcs, dsts, eids, wts = csr.expand_vertices(vertices[start:stop])
            mask = apply_edge_condition(condition, srcs, dsts, eids, wts)
            return dsts[mask]

        results = pool.run_tasks(
            [lambda s=s, e=e: body(s, e) for s, e in chunks]
        )
        for dsts in results:
            output.add_many(dsts)
    else:
        def body_stream(start, stop):
            srcs, dsts, eids, wts = csr.expand_vertices(vertices[start:stop])
            mask = apply_edge_condition(condition, srcs, dsts, eids, wts)
            passed = dsts[mask]
            if isinstance(output, AsyncQueueFrontier):
                output.add_many(passed)  # queue is internally synchronized
            else:
                with lock:
                    output.add_many(passed)

        pool.run_tasks(
            [lambda s=s, e=e: body_stream(s, e) for s, e in chunks]
        )
    return output


# -- pull implementation ----------------------------------------------------------


def _pull(graph, frontier, condition, output, candidates, policy, workspace=None):
    """Pull advance: for each candidate, scan in-edges from active sources.

    A candidate joins the output if **any** of its in-edges from an
    active vertex satisfies the condition.  Vectorized for all policies
    except ``seq`` (there is no per-vertex ordering to preserve — pull is
    inherently a bulk membership question).
    """
    csc = graph.csc()
    n = graph.n_vertices
    if isinstance(frontier, DenseFrontier):
        active = frontier.flags_view()
    else:
        active = (
            workspace.cleared("advance.active", n, bool)
            if workspace is not None
            else np.zeros(n, dtype=bool)
        )
        idx = (
            frontier.indices_view()
            if isinstance(frontier, SparseFrontier)
            else frontier.to_indices()
        )
        if idx.size:
            active[idx] = True
    if candidates is None:
        cand = np.arange(n, dtype=VERTEX_DTYPE)
    else:
        cand = np.asarray(candidates, dtype=VERTEX_DTYPE).ravel()
    if cand.size == 0:
        return output
    if isinstance(policy, SequencedPolicy):
        for v in cand:
            v = int(v)
            # Evaluate EVERY live in-edge, as the bulk overloads do —
            # conditions may carry side effects (SSSP pull relaxes the
            # distance inside the condition), so short-circuiting after
            # the first hit would skip relaxations the other policies
            # perform and break cross-policy equivalence.
            hit = False
            for e in csc.get_in_edges(v):
                u = csc.get_source_vertex(e)
                if active[u] and call_condition_scalar(
                    condition, u, v, e, csc.get_edge_weight(e)
                ):
                    hit = True
            if hit:
                output.add(v)
        return output
    srcs, dsts, eids, wts = csc.gather_in_edges(cand)
    live = active[srcs]
    if not np.any(live):
        return output
    srcs, dsts, eids, wts = srcs[live], dsts[live], eids[live], wts[live]
    mask = apply_edge_condition(condition, srcs, dsts, eids, wts)
    winners = dedup_ids(dsts[mask], n, workspace)
    output.add_many(winners)
    return output


# -- public operator ------------------------------------------------------------------


def neighbors_expand(
    policy: Union[str, ExecutionPolicy],
    graph: Graph,
    frontier: Frontier,
    condition: Callable,
    *,
    direction: str = "push",
    output_representation: str = "sparse",
    candidates: Optional[np.ndarray] = None,
    workspace=None,
) -> Frontier:
    """Expand ``frontier`` along graph edges, keeping edges that satisfy
    ``condition`` (Listing 3).

    Parameters
    ----------
    policy:
        Execution policy object or name; selects the overload (see module
        docstring).
    graph:
        The graph; push uses its CSR view, pull its CSC view.
    frontier:
        Active vertex set (any vertex representation).
    condition:
        ``cond(src, dst, edge, weight) -> bool`` — scalar, bulk, or both
        (see :mod:`repro.operators.conditions`).
    direction:
        ``"push"`` (expand out-edges of active vertices), ``"pull"``
        (test in-edges of ``candidates`` against the active set), or
        ``"auto"`` (Beamer alpha/beta heuristic picks per call from
        frontier size × average degree).
    output_representation:
        ``"sparse"`` | ``"dense"`` | ``"queue"`` for the output frontier,
        or ``"auto"`` (dense once the input frontier passes the density
        threshold).  ``par_nosync`` defaults to (and is most useful
        with) ``"queue"``.
    candidates:
        Pull only: vertex ids to consider (default: every vertex).
    workspace:
        Optional :class:`~repro.execution.workspace.Workspace` whose
        pooled buffers the vectorized/pull/fused paths reuse across
        calls.  ``None`` falls back to plain allocation.  Must not be
        shared with the threaded policies' chunk bodies.

    Returns
    -------
    Frontier
        The output frontier.  Push with a sparse output may contain
        duplicates (several parents discovering one child), matching the
        paper's semantics; apply :func:`~repro.operators.uniquify.uniquify`
        or use a dense output for set semantics.
    """
    policy = resolve_policy(policy)
    if direction == "auto":
        direction = choose_direction(graph, frontier)
    if direction not in ("push", "pull"):
        raise ValueError(
            f"direction must be 'push', 'pull', or 'auto', got {direction!r}"
        )
    if output_representation == "auto":
        output_representation = choose_representation(frontier)
    if isinstance(policy, ParallelNoSyncPolicy) and output_representation == "sparse":
        # The natural pairing for the asynchronous overload.
        output_representation = "queue"
    output = _make_output(output_representation, graph.n_vertices)

    # Fused single-pass routing: only the vectorized overload, and only
    # when the condition carries a kernel that supports the direction
    # (edge-masked kernels are push-only — CSC edge ids index the
    # transposed layout).
    kernel = None
    if isinstance(policy, VectorPolicy):
        kernel = fused_kernel_of(condition)
        if kernel is not None and direction == "pull" and not kernel.supports_pull:
            kernel = None

    probe = active_probe()
    if not probe.enabled:
        return _expand_dispatch(
            policy, graph, frontier, condition, output, direction, candidates,
            kernel, workspace,
        )
    with probe.span(
        "operator:advance",
        direction=direction,
        policy=policy.name,
        frontier_size=len(frontier),
        fused=kernel is not None,
        representation=output_representation,
    ) as span:
        result = _expand_dispatch(
            policy, graph, frontier, condition, output, direction, candidates,
            kernel, workspace,
        )
        span.set("output_size", len(result))
        return result


def _expand_dispatch(
    policy, graph, frontier, condition, output, direction, candidates,
    kernel=None, workspace=None,
):
    """Overload selection shared by the traced and untraced paths."""
    if kernel is not None and isinstance(policy, ProcPolicy):
        # Multiprocess sharded round (lazy import: spawning the worker
        # pool and shm machinery is par_proc-only).  ``None`` means the
        # round cannot run here (inside a worker process) — fall through
        # to the in-process vectorized overloads below.
        from repro.execution.proc_engine import proc_expand

        result = proc_expand(
            policy, graph, frontier, kernel, output, direction, candidates
        )
        if result is not None:
            return result
    if direction == "pull":
        if kernel is not None:
            return kernel.pull(graph, frontier, candidates, output, workspace)
        return _pull(graph, frontier, condition, output, candidates, policy, workspace)

    vertices = _frontier_vertices(frontier)
    if vertices.size == 0:
        return output
    if kernel is not None:
        return kernel.push(graph, vertices, output, workspace)
    if isinstance(policy, SequencedPolicy):
        return _push_seq(graph, vertices, condition, output)
    if isinstance(policy, VectorPolicy):
        return _push_vector(graph, vertices, condition, output, workspace)
    if isinstance(policy, ParallelPolicy):
        return _push_threaded(
            policy, graph, vertices, condition, output, ordered_merge=True
        )
    if isinstance(policy, ParallelNoSyncPolicy):
        return _push_threaded(
            policy, graph, vertices, condition, output, ordered_merge=False
        )
    raise ExecutionPolicyError(
        f"neighbors_expand has no overload for policy {policy!r}"
    )


def expand_to_edges(
    policy: Union[str, ExecutionPolicy],
    graph: Graph,
    frontier: Frontier,
    condition: Callable,
) -> EdgeFrontier:
    """Advance variant producing an *edge* frontier: the CSR edge ids
    (not destinations) of edges that satisfied the condition.

    The building block for edge-centric programs (§III-C): a vertex
    frontier in, an edge frontier out.
    """
    policy = resolve_policy(policy)
    vertices = _frontier_vertices(frontier)
    output = EdgeFrontier(graph.n_edges)
    if vertices.size == 0:
        return output
    csr = graph.csr()
    if isinstance(policy, SequencedPolicy):
        for v in vertices:
            v = int(v)
            for e in csr.get_edges(v):
                if call_condition_scalar(
                    condition, v, csr.get_dest_vertex(e), e, csr.get_edge_weight(e)
                ):
                    output.add(e)
        return output
    sources, dests, edges, weights = csr.expand_vertices(vertices)
    mask = apply_edge_condition(condition, sources, dests, edges, weights)
    output.add_many(edges[mask])
    return output
