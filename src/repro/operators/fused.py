"""Fused advance kernels and frontier-adaptive dispatch heuristics.

The operator chain the paper composes per superstep — advance, apply
the user condition, scatter the survivors into the output frontier —
is semantically three steps but does not have to be three *passes*.
For the condition shapes that dominate graph analytics the whole chain
collapses into one vectorized kernel (Gunrock's fused-operator trick):

* **min-relax** — SSSP / delta-stepping / CC label propagation:
  ``candidate = values[src] (+ weight); atomic-min into values[dst];
  emit improved destinations``;
* **claim-unvisited** — BFS discovery: ``emit destinations whose level
  is unset, stamping level and parent``;
* **sum-aggregate** — PageRank / HITS / SpMV: a dense segmented sum,
  provided here as :func:`segmented_sum` (``np.bincount`` beats
  ``np.add.at`` by an order of magnitude on dense index arrays).

Algorithms opt in by building their condition through a factory below
(:func:`min_relax_condition`, :func:`claim_levels_condition`).  The
result is an ordinary bulk condition — byte-identical under every
policy — that additionally carries a :class:`FusedKernel`;
``neighbors_expand`` detects the kernel and, under the vectorized
policy, routes the whole superstep through the single-pass form
instead of the generic gather → condition → scatter pipeline.  Every
other policy ignores the kernel and runs the condition unchanged, so
fusion never forks semantics.

The same module holds the frontier-adaptive dispatch heuristics the
enactor layer uses (§III-C's direction choice, made per-iteration):
:func:`choose_direction` is the Beamer alpha/beta push↔pull rule driven
by frontier size × average degree; :class:`DirectionOptimizer` adds the
hysteresis (stay pulled until the frontier re-narrows);
:func:`choose_representation` picks sparse vs dense output frontiers at
a density threshold.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

import numpy as np

from repro.frontier.base import Frontier
from repro.frontier.dense import DenseFrontier
from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.operators.conditions import bulk_condition
from repro.execution.atomics import bulk_min_relax
from repro.execution.workspace import Workspace
from repro.types import INF, VERTEX_DTYPE

#: Attribute carrying a condition's fused kernel (when eligible).
FUSED_ATTR = "__repro_fused_kernel__"

#: Beamer direction-optimization defaults (alpha: push→pull when the
#: frontier's edge estimate exceeds m/alpha; beta: pull→push when the
#: frontier shrinks under n/beta).
DEFAULT_ALPHA = 14.0
DEFAULT_BETA = 24.0

#: Output frontiers denser than this fraction of the graph switch to
#: the bitmap representation (measured on the *input* frontier, the
#: best single predictor available before the expand runs).
DENSE_REPRESENTATION_THRESHOLD = 0.05


#: Global fusion switch.  Fused kernels and the generic pipeline must be
#: semantically identical; the conformance matrix flips this to prove it
#: (``repro verify --fused off``).
_FUSION_ENABLED = True


def fusion_enabled() -> bool:
    """Whether conditions may route through their fused kernels."""
    return _FUSION_ENABLED


@contextmanager
def fusion_override(enabled: bool):
    """Temporarily force fusion on or off (conformance sweeps)."""
    global _FUSION_ENABLED
    prev = _FUSION_ENABLED
    _FUSION_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSION_ENABLED = prev


def fused_kernel_of(condition: Callable) -> Optional["FusedKernel"]:
    """The fused kernel attached to ``condition``, if any.

    Returns ``None`` while fusion is globally disabled, so every caller
    (advance dispatch *and* the algorithms' emits-deduplicated-sets
    bookkeeping) falls back to the generic pipeline consistently.
    """
    if not _FUSION_ENABLED:
        return None
    return getattr(condition, FUSED_ATTR, None)


# -- output plumbing (trusted: ids come from the graph's own arrays) -----------


def _emit(output: Frontier, ids: np.ndarray) -> Frontier:
    """Append ``ids`` (already-validated vertex ids) to ``output``."""
    if isinstance(output, SparseFrontier):
        output.add_many_trusted(ids)
    elif isinstance(output, DenseFrontier):
        output.add_many(ids)
    else:  # queue or exotic frontier: generic path
        output.add_many(ids)
    return output


# -- fused kernels ---------------------------------------------------------------


class FusedKernel:
    """A single-pass advance+condition+scatter kernel.

    ``push`` expands the frontier's out-edges via the CSR;
    ``pull`` tests candidates' in-edges against the active set via the
    CSC.  Both must apply exactly the state mutations the generic
    pipeline would for the same condition, and emit the same output
    *set* — fused kernels additionally deduplicate and sort their
    emission (the bitmap round-trip is nearly free inside the kernel),
    so algorithms can skip their own between-superstep dedup pass when
    the fused route is active.
    """

    name = "fused"
    supports_pull = True

    def push(
        self,
        graph: Graph,
        vertices: np.ndarray,
        output: Frontier,
        workspace: Optional[Workspace],
    ) -> Frontier:
        """Expand ``vertices``' out-edges (CSR), mutate state, emit into
        ``output``."""
        raise NotImplementedError

    def pull(
        self,
        graph: Graph,
        frontier: Frontier,
        candidates: Optional[np.ndarray],
        output: Frontier,
        workspace: Optional[Workspace],
    ) -> Frontier:
        """Scan ``candidates``' in-edges (CSC) against the active
        ``frontier``, mutate state, emit into ``output``."""
        raise NotImplementedError


def _gather_segments(offsets, vertices, workspace):
    """Multi-range gather bookkeeping shared by the fused kernels.

    Returns ``(edge_ids, counts)`` — the flat positions of every edge
    incident to ``vertices`` in the given offsets array, and the
    per-vertex segment lengths.  Uses the workspace's cached ramp so the
    steady state allocates only the two ``repeat`` outputs.

    Written in method/``out=`` form (``.take``, ``.repeat``, in-place
    arithmetic into just-produced temporaries): on superstep-sized
    frontiers every avoided Python-level ufunc dispatch is a visible
    fraction of the kernel.
    """
    starts = offsets.take(vertices)
    ends = offsets.take(vertices + 1)
    counts = np.subtract(ends, starts, out=starts)  # starts dies here
    cum = counts.cumsum()
    total = int(cum[-1]) if counts.size else 0
    if total == 0:
        return None, counts
    # Segment base of each edge slot: ends - cum == starts - (cum - counts).
    base = np.subtract(ends, cum, out=ends)  # ends dies here
    edge_ids = base.repeat(counts)
    ramp = (
        workspace.arange(total)
        if workspace is not None
        else np.arange(total, dtype=edge_ids.dtype)
    )
    np.add(ramp, edge_ids, out=edge_ids)
    return edge_ids, counts


def dedup_ids(
    ids: np.ndarray, capacity: int, workspace: Optional[Workspace] = None
) -> np.ndarray:
    """Sorted duplicate-free copy of ``ids`` via a bitmap round-trip.

    O(k + n) scatter/gather instead of ``np.unique``'s O(k log k) sort —
    the per-superstep dedup cost for frontiers that are any appreciable
    fraction of the graph, with the flag buffer pooled when a workspace
    is supplied.  (``np.unique`` also lazily imports ``numpy.ma`` on
    first use, a one-time hit that would otherwise land inside the first
    timed superstep of a cold process.)
    """
    if workspace is not None:
        flags = workspace.cleared("dedup.flags", capacity, bool)
    else:
        flags = np.zeros(capacity, dtype=bool)
    flags[ids] = True
    return np.nonzero(flags)[0].astype(VERTEX_DTYPE, copy=False)


def _active_flags(frontier: Frontier, n: int, workspace: Optional[Workspace]):
    """Dense bool view of a frontier's active set (pooled when possible)."""
    if isinstance(frontier, DenseFrontier):
        return frontier.flags_view()
    if workspace is not None:
        flags = workspace.cleared("fused.active", n, bool)
    else:
        flags = np.zeros(n, dtype=bool)
    idx = (
        frontier.indices_view()
        if isinstance(frontier, SparseFrontier)
        else frontier.to_indices()
    )
    if idx.size:
        flags[idx] = True
    return flags


class MinRelaxKernel(FusedKernel):
    """Fused relax-and-emit: the SSSP / delta-stepping / CC shape.

    ``candidate[e] = values[src(e)] (+ weight(e) when weighted)``,
    batched ``atomic::min`` into ``values``, output = the (deduplicated,
    sorted) set of destinations whose pre-batch value improved — exactly
    :func:`~repro.execution.atomics.bulk_min_relax` run inside the
    expand, with no intermediate edge tuple materialized for the
    condition protocol.

    ``edge_mask`` restricts relaxation to a fixed edge subset (delta
    stepping's light/heavy split).  Masked kernels are push-only: the
    mask indexes CSR edge ids, which do not survive the transpose.
    """

    name = "min_relax"

    def __init__(
        self,
        values: np.ndarray,
        *,
        weighted: bool = True,
        edge_mask: Optional[np.ndarray] = None,
    ) -> None:
        self.values = values
        self.weighted = weighted
        self.edge_mask = edge_mask
        self.supports_pull = edge_mask is None

    def push(self, graph, vertices, output, workspace):
        """Relax the frontier's out-edges in one batched min pass."""
        csr = graph.csr()
        edge_ids, counts = _gather_segments(csr.row_offsets, vertices, workspace)
        if edge_ids is None:
            return output
        values = self.values
        dsts = (
            workspace.take("fused.dsts", csr.column_indices, edge_ids)
            if workspace is not None
            else csr.column_indices.take(edge_ids)
        )
        # Gather per-vertex then repeat: k reads + one repeat instead of
        # a length-E fancy gather through a repeated source array.
        cand = values.take(vertices).repeat(counts)
        if self.weighted:
            cand += csr.values.take(edge_ids)
        if self.edge_mask is not None:
            live = self.edge_mask.take(edge_ids)
            np.copyto(cand, INF, where=~live)
        old = values.take(dsts)  # pre-batch copy
        np.minimum.at(values, dsts, cand)
        improved = cand < old
        if self.edge_mask is not None:
            improved &= live
        winners = dsts.compress(improved)
        if winners.size:
            return _emit(
                output, dedup_ids(winners, values.shape[0], workspace)
            )
        return output

    def pull(self, graph, frontier, candidates, output, workspace):
        """Relax candidates' in-edges from the active set (CSC side)."""
        csc = graph.csc()
        n = graph.n_vertices
        active = _active_flags(frontier, n, workspace)
        if candidates is None:
            cand_ids = np.arange(n, dtype=VERTEX_DTYPE)
        else:
            cand_ids = np.asarray(candidates, dtype=VERTEX_DTYPE).ravel()
        if cand_ids.size == 0:
            return output
        edge_ids, counts = _gather_segments(csc.col_offsets, cand_ids, workspace)
        if edge_ids is None:
            return output
        srcs = csc.row_indices[edge_ids]
        live = active[srcs]
        if not np.any(live):
            return output
        srcs = srcs[live]
        dsts = np.repeat(cand_ids, counts)[live]
        values = self.values
        cand = values[srcs]
        if self.weighted:
            cand = cand + csc.values[edge_ids[live]]
        improved = bulk_min_relax(values, dsts, cand)
        return _emit(output, dedup_ids(dsts[improved], n, workspace))


class ClaimLevelsKernel(FusedKernel):
    """Fused BFS discovery: claim unvisited destinations, stamping level
    and parent in the same pass.

    Matches the classic bulk ``discover`` condition exactly: freshness
    is evaluated against pre-batch levels (so several parents of one
    child all pass) and the level/parent writes are last-write-wins,
    which is benign — any discovering parent is a valid BFS parent.
    """

    name = "claim_levels"

    def __init__(
        self, levels: np.ndarray, parents: np.ndarray, *, unreached: int = -1
    ) -> None:
        self.levels = levels
        self.parents = parents
        self.unreached = unreached

    def push(self, graph, vertices, output, workspace):
        """Claim unvisited children of the frontier (CSR expand)."""
        csr = graph.csr()
        edge_ids, counts = _gather_segments(csr.row_offsets, vertices, workspace)
        if edge_ids is None:
            return output
        levels = self.levels
        dsts = (
            workspace.take("fused.dsts", csr.column_indices, edge_ids)
            if workspace is not None
            else csr.column_indices.take(edge_ids)
        )
        fresh = levels.take(dsts) == self.unreached
        claimed = dsts.compress(fresh)
        if claimed.size:
            srcs = vertices.repeat(counts).compress(fresh)
            levels[claimed] = levels.take(srcs) + 1
            self.parents[claimed] = srcs
            return _emit(
                output, dedup_ids(claimed, levels.shape[0], workspace)
            )
        return output

    def pull(self, graph, frontier, candidates, output, workspace):
        """Unvisited candidates scan in-edges for a visited parent."""
        csc = graph.csc()
        n = graph.n_vertices
        active = _active_flags(frontier, n, workspace)
        if candidates is None:
            cand_ids = np.arange(n, dtype=VERTEX_DTYPE)
        else:
            cand_ids = np.asarray(candidates, dtype=VERTEX_DTYPE).ravel()
        if cand_ids.size == 0:
            return output
        edge_ids, counts = _gather_segments(csc.col_offsets, cand_ids, workspace)
        if edge_ids is None:
            return output
        srcs = csc.row_indices[edge_ids]
        live = active[srcs]
        if not np.any(live):
            return output
        srcs = srcs[live]
        dsts = np.repeat(cand_ids, counts)[live]
        levels = self.levels
        fresh = levels[dsts] == self.unreached
        if not np.any(fresh):
            return output
        claimed = dsts[fresh]
        claiming = srcs[fresh]
        levels[claimed] = levels[claiming] + 1
        self.parents[claimed] = claiming
        return _emit(output, dedup_ids(claimed, n, workspace))


# -- condition factories ------------------------------------------------------------


def min_relax_condition(
    values: np.ndarray,
    *,
    weighted: bool = True,
    edge_mask: Optional[np.ndarray] = None,
) -> Callable:
    """A bulk min-relax condition carrying its fused kernel.

    Under any policy the returned condition behaves exactly like the
    handwritten form (``new = values[src] (+ w); return
    bulk_min_relax(values, dst, new)``); under ``par_vector`` the
    attached :class:`MinRelaxKernel` lets ``neighbors_expand`` run the
    whole superstep in one pass.
    """

    if edge_mask is None and weighted:

        @bulk_condition
        def condition(srcs, dsts, edges, weights):
            return bulk_min_relax(values, dsts, values[srcs] + weights)

    elif edge_mask is None:

        @bulk_condition
        def condition(srcs, dsts, edges, weights):
            return bulk_min_relax(values, dsts, values[srcs])

    else:

        @bulk_condition
        def condition(srcs, dsts, edges, weights):
            mask = edge_mask[edges]
            cand = np.where(mask, values[srcs] + weights, INF)
            return bulk_min_relax(values, dsts, cand) & mask

    setattr(
        condition,
        FUSED_ATTR,
        MinRelaxKernel(values, weighted=weighted, edge_mask=edge_mask),
    )
    return condition


def claim_levels_condition(
    levels: np.ndarray, parents: np.ndarray, *, unreached: int = -1
) -> Callable:
    """A BFS discovery condition carrying its fused kernel.

    The plain-call form serves both scalar (``seq``) and bulk policies,
    normalizing scalars the same way the handwritten BFS condition did.
    """

    @bulk_condition
    def condition(srcs, dsts, edges, weights):
        scalar = np.ndim(srcs) == 0
        s = np.atleast_1d(np.asarray(srcs, dtype=np.int64))
        d = np.atleast_1d(np.asarray(dsts, dtype=np.int64))
        fresh = levels[d] == unreached
        if np.any(fresh):
            claimed = d[fresh]
            levels[claimed] = levels[s[fresh]] + 1
            parents[claimed] = s[fresh]
        return bool(fresh[0]) if scalar else fresh

    setattr(
        condition, FUSED_ATTR, ClaimLevelsKernel(levels, parents, unreached=unreached)
    )
    return condition


# -- segmented sums (the PageRank / HITS / SpMV aggregate) -----------------------------


def segmented_sum(
    indices: np.ndarray,
    weights: np.ndarray,
    size: int,
    *,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Dense scatter-add: ``out[i] = Σ weights[k] for indices[k] == i``.

    The ``np.bincount`` form of ``np.add.at(out, indices, weights)`` —
    an order of magnitude faster when ``indices`` covers most of
    ``0..size-1`` (every whole-graph aggregate does).  Returns float64,
    matching the accumulator dtype the rank algorithms already use.
    Prefer ``np.add.at`` only when the index set is a small, sparse
    subset of the range (then the O(size) bincount pass dominates).
    """
    return np.bincount(indices, weights=weights, minlength=size)


# -- frontier-adaptive dispatch ------------------------------------------------------


def choose_direction(
    graph: Graph,
    frontier: Frontier,
    *,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
    last_direction: str = "push",
) -> str:
    """Beamer-style per-iteration push↔pull choice.

    Estimates the frontier's outgoing work as ``|frontier| × average
    degree`` (degree statistics, no per-vertex gather) and switches to
    pull when it exceeds ``m / alpha`` — the regime where scanning
    candidates' in-edges beats expanding a huge frontier.  Once pulled,
    switches back to push only when the frontier re-narrows below
    ``n / beta`` (the hysteresis that avoids thrashing at the crossover).
    """
    n = graph.n_vertices
    m = graph.n_edges
    size = frontier.size()
    if n == 0 or m == 0 or size == 0:
        return "push"
    frontier_edges = size * (m / n)
    if last_direction == "pull":
        return "push" if size < n / beta else "pull"
    return "pull" if frontier_edges > m / alpha else "push"


class DirectionOptimizer:
    """Stateful direction chooser: :func:`choose_direction` + memory.

    One instance serves one run; ``choose`` records its decision so the
    hysteresis branch sees the previous superstep's direction, and
    ``history`` keeps the per-iteration choices for result objects and
    span-level assertions.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
    ) -> None:
        if alpha <= 0 or beta <= 0:
            raise ValueError(
                f"alpha and beta must be positive, got {alpha}, {beta}"
            )
        self.graph = graph
        self.alpha = alpha
        self.beta = beta
        self.history: list = []

    @property
    def last_direction(self) -> str:
        return self.history[-1] if self.history else "push"

    def choose(self, frontier: Frontier) -> str:
        """Pick push/pull for this superstep and record the choice."""
        direction = choose_direction(
            self.graph,
            frontier,
            alpha=self.alpha,
            beta=self.beta,
            last_direction=self.last_direction,
        )
        self.history.append(direction)
        return direction


def choose_representation(
    frontier: Frontier,
    *,
    threshold: float = DENSE_REPRESENTATION_THRESHOLD,
) -> str:
    """Sparse↔dense output choice at a density threshold.

    The input frontier's active fraction is the predictor: a dense
    frontier expands into a dense output (bitmap dedup is free there),
    a narrow one stays sparse (O(k) instead of O(n) per superstep).
    """
    return "dense" if frontier.active_fraction() >= threshold else "sparse"
