"""Reductions over per-vertex values, optionally restricted to a frontier.

Convergence conditions are often reductions — "has any rank changed more
than epsilon?" is a max-reduce; delta-stepping's next bucket is a
min-reduce.  The vectorized overload is a single NumPy reduction; the
threaded overload reduces per chunk then combines (the classic two-level
parallel reduction tree), which tests verify agrees exactly for
integer ops and to float tolerance otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import ExecutionPolicyError
from repro.frontier.base import Frontier
from repro.execution.policy import (
    ExecutionPolicy,
    ParallelNoSyncPolicy,
    ParallelPolicy,
    SequencedPolicy,
    VectorPolicy,
    resolve_policy,
)
from repro.execution.thread_pool import even_chunks, get_pool
from repro.observability.probe import active_probe

_OPS = {
    "sum": (np.add.reduce, 0.0),
    "min": (np.minimum.reduce, np.inf),
    "max": (np.maximum.reduce, -np.inf),
}


def _selected(values: np.ndarray, frontier: Optional[Frontier]) -> np.ndarray:
    if frontier is None:
        return values
    idx = frontier.to_indices()
    return values[idx]


def reduce_values(
    policy: Union[str, ExecutionPolicy],
    values: np.ndarray,
    *,
    frontier: Optional[Frontier] = None,
    op: str = "sum",
) -> float:
    """Reduce ``values`` (or ``values[frontier]``) with ``op``.

    ``op`` is ``"sum"``, ``"min"``, or ``"max"``.  Empty selections
    return the op's identity (0, +inf, -inf).
    """
    policy = resolve_policy(policy)
    if op not in _OPS:
        raise ValueError(f"op must be one of {sorted(_OPS)}, got {op!r}")
    reducer, identity = _OPS[op]
    selected = _selected(np.asarray(values), frontier)
    if selected.size == 0:
        return float(identity)
    probe = active_probe()
    if not probe.enabled:
        return _reduce_dispatch(policy, reducer, selected)
    with probe.span(
        "operator:reduce", op=op, policy=policy.name, n=int(selected.size)
    ):
        return _reduce_dispatch(policy, reducer, selected)


def _reduce_dispatch(policy, reducer, selected):
    """Overload selection shared by the traced and untraced paths."""
    if isinstance(policy, (SequencedPolicy, VectorPolicy)):
        # Sequential and vectorized share NumPy's reduction; the "seq"
        # distinction matters for operators with user code, not for a
        # fixed arithmetic reduction.
        return float(reducer(selected))
    if isinstance(policy, (ParallelPolicy, ParallelNoSyncPolicy)):
        pool = get_pool(policy.num_workers)
        chunks = even_chunks(selected.shape[0], policy.num_workers or pool.num_workers)
        partials = pool.run_tasks(
            [lambda s=s, e=e: reducer(selected[s:e]) for s, e in chunks]
        )
        return float(reducer(np.asarray(partials)))
    raise ExecutionPolicyError(f"reduce_values has no overload for policy {policy!r}")


def argreduce(
    policy: Union[str, ExecutionPolicy],
    values: np.ndarray,
    *,
    frontier: Optional[Frontier] = None,
    op: str = "min",
) -> Tuple[int, float]:
    """Return ``(index, value)`` of the extreme element.

    With a frontier the returned index is the *vertex id* (not the
    position within the frontier).  Ties resolve to the smallest index,
    for determinism across policies.
    """
    policy = resolve_policy(policy)
    if op not in ("min", "max"):
        raise ValueError(f"op must be 'min' or 'max', got {op!r}")
    values = np.asarray(values)
    if frontier is not None:
        idx = np.sort(frontier.to_indices())
        selected = values[idx]
    else:
        idx = None
        selected = values
    if selected.size == 0:
        raise ValueError("argreduce over an empty selection")
    pos = int(np.argmin(selected) if op == "min" else np.argmax(selected))
    vertex = int(idx[pos]) if idx is not None else pos
    return vertex, float(selected[pos])
