"""Segmented intersection: |N(u) ∩ N(v)| per requested pair.

The operator behind triangle counting (and clustering coefficients):
for each edge (u, v) count the common neighbors.  Requires sorted
neighbor lists (build the graph with
:meth:`~repro.graph.graph.Graph.with_sorted_neighbors`).

Per-pair intersection uses the two-pointer merge realized via
``np.searchsorted`` of the smaller list into the larger — O(min·log max)
with all comparisons in C.  The threaded overload splits the pair list
across the pool.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ExecutionPolicyError, GraphFormatError
from repro.graph.graph import Graph
from repro.execution.policy import (
    ExecutionPolicy,
    ParallelNoSyncPolicy,
    ParallelPolicy,
    SequencedPolicy,
    VectorPolicy,
    resolve_policy,
)
from repro.execution.thread_pool import even_chunks, get_pool


def _intersect_size(a: np.ndarray, b: np.ndarray) -> int:
    """Size of the intersection of two sorted unique arrays."""
    if a.shape[0] > b.shape[0]:
        a, b = b, a
    if a.shape[0] == 0:
        return 0
    pos = np.searchsorted(b, a)
    pos[pos == b.shape[0]] = b.shape[0] - 1
    return int(np.count_nonzero(b[pos] == a))


def segmented_intersection_counts(
    policy: Union[str, ExecutionPolicy],
    graph: Graph,
    pairs_u: np.ndarray,
    pairs_v: np.ndarray,
) -> np.ndarray:
    """Count common out-neighbors for each pair ``(pairs_u[k], pairs_v[k])``.

    Raises :class:`GraphFormatError` unless the graph was built or
    converted with sorted neighbor lists.
    """
    policy = resolve_policy(policy)
    if not graph.properties.sorted_neighbors:
        raise GraphFormatError(
            "segmented intersection requires sorted neighbor lists; call "
            "graph.with_sorted_neighbors() first"
        )
    u = np.asarray(pairs_u).ravel()
    v = np.asarray(pairs_v).ravel()
    if u.shape != v.shape:
        raise ValueError(
            f"pair arrays must have equal length, got {u.shape[0]} and {v.shape[0]}"
        )
    csr = graph.csr()
    out = np.zeros(u.shape[0], dtype=np.int64)

    def run_span(start: int, stop: int) -> None:
        for k in range(start, stop):
            out[k] = _intersect_size(
                csr.get_neighbors(int(u[k])), csr.get_neighbors(int(v[k]))
            )

    if isinstance(policy, (SequencedPolicy, VectorPolicy)):
        # The per-pair kernel is already NumPy-backed; "vector" here means
        # the batch loop runs in the invoking thread.
        run_span(0, u.shape[0])
        return out
    if isinstance(policy, (ParallelPolicy, ParallelNoSyncPolicy)):
        pool = get_pool(policy.num_workers)
        chunks = even_chunks(u.shape[0], policy.num_workers or pool.num_workers)
        # Disjoint output spans -> no synchronization needed.
        pool.run_tasks([lambda s=s, e=e: run_span(s, e) for s, e in chunks])
        return out
    raise ExecutionPolicyError(
        f"segmented_intersection_counts has no overload for policy {policy!r}"
    )
