"""Reference PageRank: plain power iteration with explicit loops kept
NumPy-light, as an independently-written oracle for the framework
version (a second implementation of the same spec, not shared code)."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def sequential_pagerank(
    graph: Graph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> np.ndarray:
    """Damped PageRank with uniform dangling redistribution."""
    n = graph.n_vertices
    if n == 0:
        return np.empty(0)
    csr = graph.csr()
    ranks = [1.0 / n] * n
    degrees = [csr.get_num_neighbors(v) for v in range(n)]
    for _ in range(max_iterations):
        incoming = [0.0] * n
        dangling_mass = 0.0
        for v in range(n):
            if degrees[v] == 0:
                dangling_mass += ranks[v]
                continue
            share = ranks[v] / degrees[v]
            for u in csr.get_neighbors(v):
                incoming[int(u)] += share
        base = (1.0 - damping) / n + damping * dangling_mass / n
        new_ranks = [base + damping * incoming[v] for v in range(n)]
        delta = sum(abs(new_ranks[v] - ranks[v]) for v in range(n))
        ranks = new_ranks
        if delta <= tolerance:
            break
    return np.asarray(ranks, dtype=np.float64)
