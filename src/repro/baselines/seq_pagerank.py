"""Reference PageRank: plain power iteration with explicit loops kept
NumPy-light, as an independently-written oracle for the framework
version (a second implementation of the same spec, not shared code)."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def sequential_pagerank(
    graph: Graph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> np.ndarray:
    """Damped PageRank with uniform dangling redistribution.

    Rank mass flows along edges in proportion to edge weight (the
    networkx convention the framework version follows); with unit
    weights this reduces to the classic degree-uniform split.  A vertex
    whose outgoing weight sums to zero is dangling.
    """
    n = graph.n_vertices
    if n == 0:
        return np.empty(0)
    csr = graph.csr()
    ranks = [1.0 / n] * n
    out_weight = [
        sum(float(csr.get_edge_weight(e)) for e in csr.get_edges(v))
        for v in range(n)
    ]
    for _ in range(max_iterations):
        incoming = [0.0] * n
        dangling_mass = 0.0
        for v in range(n):
            if out_weight[v] == 0.0:
                dangling_mass += ranks[v]
                continue
            for e in csr.get_edges(v):
                u = int(csr.get_dest_vertex(e))
                w = float(csr.get_edge_weight(e))
                incoming[u] += ranks[v] * w / out_weight[v]
        base = (1.0 - damping) / n + damping * dangling_mass / n
        new_ranks = [base + damping * incoming[v] for v in range(n)]
        delta = sum(abs(new_ranks[v] - ranks[v]) for v in range(n))
        ranks = new_ranks
        if delta <= tolerance:
            break
    return np.asarray(ranks, dtype=np.float64)
