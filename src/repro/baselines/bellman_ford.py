"""Textbook Bellman–Ford [CLRS ch. 24] — the label-correcting ancestor
of the paper's parallel SSSP, vectorized per round over the edge list."""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.graph import Graph
from repro.types import INF, VALUE_DTYPE
from repro.utils.validation import check_vertex_in_range


def bellman_ford(
    graph: Graph, source: int, *, detect_negative_cycles: bool = True
) -> np.ndarray:
    """SSSP distances by |V|-1 rounds of full edge relaxation.

    Handles negative weights; raises
    :class:`~repro.errors.ConvergenceError` when a negative cycle is
    reachable and detection is on.  Rounds early-exit at the first
    fixed point.
    """
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    coo = graph.coo()
    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[source] = 0.0
    rows = coo.rows
    cols = coo.cols
    weights = coo.vals
    for _round in range(max(n - 1, 1)):
        reachable = dist[rows] < INF
        if not np.any(reachable):
            break
        candidates = np.where(reachable, dist[rows] + weights, INF)
        old = dist.copy()
        np.minimum.at(dist, cols, candidates)
        if np.array_equal(old, dist):
            break
    if detect_negative_cycles and n:
        reachable = dist[rows] < INF
        candidates = np.where(reachable, dist[rows] + weights, INF)
        if np.any(candidates < dist[cols] - 1e-6 * np.abs(dist[cols])):
            raise ConvergenceError("negative cycle reachable from source")
    return dist
