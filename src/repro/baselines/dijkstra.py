"""Textbook Dijkstra with a binary heap [CLRS ch. 24]."""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.graph import Graph
from repro.types import INF, VALUE_DTYPE
from repro.utils.validation import check_vertex_in_range


def dijkstra(graph: Graph, source: int) -> np.ndarray:
    """Single-source shortest path distances via a lazy-deletion heap.

    Requires non-negative weights (unchecked beyond the algorithm's own
    behavior, matching the textbook precondition).  Returns float32
    distances with ``INF`` for unreachable vertices — the same contract
    as :func:`repro.algorithms.sssp.sssp`.
    """
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    csr = graph.csr()
    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[source] = 0.0
    heap = [(0.0, source)]
    settled = np.zeros(n, dtype=bool)
    while heap:
        d, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        start, stop = int(csr.row_offsets[v]), int(csr.row_offsets[v + 1])
        for k in range(start, stop):
            u = int(csr.column_indices[k])
            nd = d + float(csr.values[k])
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist
