"""Brute-force pure-Python references for oracles networkx lacks.

Written against dict-of-sets adjacency with none of the library's own
operator machinery, so a bug in frontiers/operators/policies cannot
cancel out in the comparison.  Only suitable for the small conformance
graphs (everything is O(n·m) or worse on purpose — clarity over speed).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import numpy as np

from repro.graph.graph import Graph


def _simple_undirected_adjacency(graph: Graph) -> Dict[int, Set[int]]:
    """Symmetrized, self-loop-free, deduplicated neighbor sets."""
    adj: Dict[int, Set[int]] = {v: set() for v in range(graph.n_vertices)}
    coo = graph.coo()
    for u, v in zip(coo.rows.tolist(), coo.cols.tolist()):
        if u != v:
            adj[u].add(v)
            adj[v].add(u)
    return adj


def brute_truss_numbers(graph: Graph) -> Dict[Tuple[int, int], int]:
    """Truss number per canonical undirected edge ``(min, max)``.

    Standard peeling: at level k, repeatedly delete edges whose triangle
    support in the surviving subgraph is below ``k - 2``; a deleted edge
    gets truss number ``k - 1`` (floor 2, the no-triangle convention).
    """
    adj = _simple_undirected_adjacency(graph)
    edges = {
        (u, v) for u in adj for v in adj[u] if u < v
    }
    truss: Dict[Tuple[int, int], int] = {}
    live: Dict[int, Set[int]] = {v: set(nbrs) for v, nbrs in adj.items()}

    def support(u: int, v: int) -> int:
        return len(live[u] & live[v])

    k = 3
    remaining = set(edges)
    while remaining:
        while True:
            victims = [
                (u, v) for (u, v) in remaining if support(u, v) < k - 2
            ]
            if not victims:
                break
            for u, v in victims:
                remaining.discard((u, v))
                truss[(u, v)] = k - 1
                live[u].discard(v)
                live[v].discard(u)
        if remaining:
            for e in remaining:
                truss[e] = k
            k += 1
    for e in edges:
        truss.setdefault(e, 2)
    return truss


def brute_core_numbers(graph: Graph) -> np.ndarray:
    """Core number per vertex by naive peeling on undirected degrees."""
    adj = _simple_undirected_adjacency(graph)
    n = graph.n_vertices
    core = np.zeros(n, dtype=np.int64)
    live = {v: set(nbrs) for v, nbrs in adj.items()}
    alive = set(range(n))
    k = 0
    while alive:
        while True:
            victims = [v for v in alive if len(live[v]) < k + 1]
            if not victims:
                break
            for v in victims:
                core[v] = k
                alive.discard(v)
                for u in live[v]:
                    live[u].discard(v)
                live[v].clear()
        k += 1
    return core


def brute_spmv(graph: Graph, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` accumulated edge by edge in float64."""
    coo = graph.coo()
    y = np.zeros(graph.n_vertices, dtype=np.float64)
    for u, v, w in zip(
        coo.rows.tolist(), coo.cols.tolist(), coo.vals.tolist()
    ):
        y[u] += w * x[v]
    return y


def brute_forest_is_valid(
    graph: Graph,
    edge_sources: np.ndarray,
    edge_destinations: np.ndarray,
    edge_weights: np.ndarray,
) -> Tuple[bool, str]:
    """Check a claimed spanning forest: every edge exists in the graph
    with its claimed weight, and no cycle forms (union-find)."""
    coo = graph.coo()
    weight_of: Dict[Tuple[int, int], Set[float]] = {}
    for u, v, w in zip(
        coo.rows.tolist(), coo.cols.tolist(), coo.vals.tolist()
    ):
        weight_of.setdefault((u, v), set()).add(round(float(w), 6))
        weight_of.setdefault((v, u), set()).add(round(float(w), 6))
    parent = list(range(graph.n_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v, w in zip(
        edge_sources.tolist(), edge_destinations.tolist(), edge_weights.tolist()
    ):
        claimed = round(float(w), 6)
        if claimed not in weight_of.get((u, v), set()):
            return False, f"forest edge ({u}, {v}, w={w:g}) not in the graph"
        ru, rv = find(u), find(v)
        if ru == rv:
            return False, f"forest edge ({u}, {v}) closes a cycle"
        parent[ru] = rv
    return True, ""
