"""networkx oracle wrappers — third-party ground truth for tests.

Each wrapper converts a :class:`~repro.graph.graph.Graph` to networkx
once and runs the reference algorithm, returning arrays aligned to our
vertex ids so test assertions are one ``allclose``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.types import INF


def nx_graph_of(graph: Graph):
    """Convert to ``networkx.DiGraph``/``Graph`` with ``weight`` attrs."""
    import networkx as nx

    G = nx.DiGraph() if graph.properties.directed else nx.Graph()
    G.add_nodes_from(range(graph.n_vertices))
    coo = graph.coo()
    G.add_weighted_edges_from(
        zip(coo.rows.tolist(), coo.cols.tolist(), coo.vals.tolist())
    )
    return G


def nx_shortest_paths(graph: Graph, source: int) -> np.ndarray:
    """Dijkstra distances as float array, INF where unreachable."""
    import networkx as nx

    G = nx_graph_of(graph)
    lengths = nx.single_source_dijkstra_path_length(G, source)
    out = np.full(graph.n_vertices, INF, dtype=np.float64)
    for v, d in lengths.items():
        out[v] = d
    return out


def nx_bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """Hop distances as int array, -1 where unreachable."""
    import networkx as nx

    G = nx_graph_of(graph)
    lengths = nx.single_source_shortest_path_length(G, source)
    out = np.full(graph.n_vertices, -1, dtype=np.int64)
    for v, d in lengths.items():
        out[v] = d
    return out


def nx_pagerank(graph: Graph, *, damping: float = 0.85, tol: float = 1e-10):
    """PageRank vector aligned to vertex ids."""
    import networkx as nx

    G = nx_graph_of(graph)
    pr = nx.pagerank(G, alpha=damping, tol=tol, max_iter=500)
    return np.asarray([pr[v] for v in range(graph.n_vertices)])


def nx_components(graph: Graph) -> int:
    """Number of weakly connected components."""
    import networkx as nx

    G = nx_graph_of(graph)
    if graph.properties.directed:
        return nx.number_weakly_connected_components(G)
    return nx.number_connected_components(G)


def nx_triangles(graph: Graph) -> int:
    """Total triangle count (undirected)."""
    import networkx as nx

    G = nx_graph_of(graph)
    if graph.properties.directed:
        G = G.to_undirected()
    return sum(nx.triangles(G).values()) // 3


def nx_betweenness(graph: Graph, *, normalized: bool = False) -> np.ndarray:
    """Betweenness centrality aligned to vertex ids."""
    import networkx as nx

    G = nx_graph_of(graph)
    bc = nx.betweenness_centrality(G, normalized=normalized)
    return np.asarray([bc[v] for v in range(graph.n_vertices)])


def nx_core_numbers(graph: Graph) -> np.ndarray:
    """Core numbers aligned to vertex ids (undirected; self-loops removed,
    as networkx requires)."""
    import networkx as nx

    G = nx_graph_of(graph)
    if graph.properties.directed:
        G = G.to_undirected()
    G.remove_edges_from(nx.selfloop_edges(G))
    cores = nx.core_number(G)
    return np.asarray([cores[v] for v in range(graph.n_vertices)], dtype=np.int64)
