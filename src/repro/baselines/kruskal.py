"""Kruskal MST weight [CLRS ch. 23] — oracle for Borůvka's forest weight."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def kruskal_mst_weight(graph: Graph) -> float:
    """Total weight of the minimum spanning forest (undirected semantics).

    Only the weight is returned: specific edge choices may legitimately
    differ between algorithms under ties, but forest weight is unique.
    """
    coo = graph.coo()
    # Undirected graphs store both arcs; keep each pair once.
    u = np.minimum(coo.rows, coo.cols)
    v = np.maximum(coo.rows, coo.cols)
    keys = u.astype(np.int64) * graph.n_vertices + v
    _, keep = np.unique(keys, return_index=True)
    u, v, w = u[keep], v[keep], coo.vals[keep]
    order = np.argsort(w, kind="stable")

    parent = list(range(graph.n_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    total = 0.0
    for idx in order:
        a, b = find(int(u[idx])), find(int(v[idx]))
        if a != b:
            parent[a] = b
            total += float(w[idx])
    return total
