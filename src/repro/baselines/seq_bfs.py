"""Textbook queue-based BFS [CLRS ch. 22]."""

from __future__ import annotations

import collections

import numpy as np

from repro.graph.graph import Graph
from repro.utils.validation import check_vertex_in_range


def sequential_bfs(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` (-1 for unreachable) via a FIFO."""
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    csr = graph.csr()
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    queue = collections.deque([source])
    while queue:
        v = queue.popleft()
        next_level = levels[v] + 1
        for u in csr.get_neighbors(v):
            u = int(u)
            if levels[u] == -1:
                levels[u] = next_level
                queue.append(u)
    return levels
