"""Sequential textbook baselines [CLRS] and networkx oracles.

Every framework algorithm is validated against one of these, and the
benchmark tables report framework-vs-baseline ratios — the paper derives
its operators "from a traditional textbook graph algorithm [8]", so the
textbook versions are the natural comparators.
"""

from repro.baselines.dijkstra import dijkstra
from repro.baselines.bellman_ford import bellman_ford
from repro.baselines.seq_bfs import sequential_bfs
from repro.baselines.seq_pagerank import sequential_pagerank
from repro.baselines.seq_cc import union_find_components
from repro.baselines.kruskal import kruskal_mst_weight
from repro.baselines.networkx_ref import (
    nx_graph_of,
    nx_shortest_paths,
    nx_bfs_levels,
    nx_pagerank,
    nx_components,
    nx_triangles,
    nx_betweenness,
    nx_core_numbers,
)

__all__ = [
    "dijkstra",
    "bellman_ford",
    "sequential_bfs",
    "sequential_pagerank",
    "union_find_components",
    "kruskal_mst_weight",
    "nx_graph_of",
    "nx_shortest_paths",
    "nx_bfs_levels",
    "nx_pagerank",
    "nx_components",
    "nx_triangles",
    "nx_betweenness",
    "nx_core_numbers",
]
