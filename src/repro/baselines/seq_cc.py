"""Union-find connected components with path compression + union by rank
[CLRS ch. 21] — the oracle for both CC formulations."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def union_find_components(graph: Graph) -> np.ndarray:
    """Weakly connected component labels, canonicalized to the minimum
    vertex id in each component (comparable to the framework's labels)."""
    n = graph.n_vertices
    parent = list(range(n))
    rank = [0] * n

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1

    coo = graph.coo()
    for s, d in zip(coo.rows.tolist(), coo.cols.tolist()):
        union(s, d)
    # Canonical labels: smallest member id per component.
    roots = np.asarray([find(v) for v in range(n)], dtype=np.int64)
    labels = np.full(n, -1, dtype=np.int64)
    order = np.argsort(roots, kind="stable")
    sorted_roots = roots[order]
    boundaries = np.empty(n, dtype=bool)
    if n:
        boundaries[0] = True
        boundaries[1:] = sorted_roots[1:] != sorted_roots[:-1]
        # The first (lowest-id) member of each root group is its canonical
        # label — order is stable on vertex id.
        labels_by_root = {}
        for pos in np.nonzero(boundaries)[0]:
            labels_by_root[int(sorted_roots[pos])] = int(order[pos])
        labels = np.asarray(
            [labels_by_root[int(r)] for r in roots], dtype=np.int64
        )
    return labels
