"""Semirings — the algebra that turns one matrix kernel into many
graph algorithms.

The paper's §IV-A observation (and GraphBLAST's whole premise) is that
the advance/reduce pair of the native-graph formulation *is* a sparse
matrix–vector product over a non-standard semiring: BFS discovery is
``(or, and)``, SSSP relaxation is ``(min, +)``, PageRank/HITS/SpMV mass
flow is the ordinary ``(+, ×)``.  A :class:`Semiring` packages the two
operations plus the additive identity (the value a vertex holds when no
edge reaches it), and every kernel in :mod:`repro.linalg.kernels` is
written against this interface — swap the semiring, get a different
algorithm, same memory traffic.

The additive identity is load-bearing: masked/segmented reductions fill
untouched outputs with it, and the conformance matrix catches a wrong
identity immediately (a planted-bug test locks this in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """One (⊕, ⊗) pair with identities and dtype conventions.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"min_plus"``.
    add:
        The ⊕ reduction as a NumPy binary ufunc (must support ``.at``
        and ``.reduceat``-style scatter reduction).
    multiply:
        The ⊗ combine: ``multiply(x_values, edge_weights) -> contrib``.
        Receives broadcastable ndarrays; must be vectorized.
    add_identity:
        Scalar identity of ⊕ — what an output slot holds when no edge
        contributes to it.
    dtype:
        Accumulator dtype the kernels allocate outputs in.
    """

    name: str
    add: np.ufunc = field(repr=False)
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray] = field(repr=False)
    add_identity: float
    dtype: np.dtype = field(default=np.dtype(np.float64), repr=False)

    def zeros(self, n: int) -> np.ndarray:
        """A length-``n`` accumulator filled with the ⊕ identity."""
        return np.full(n, self.add_identity, dtype=self.dtype)


def _mul_plus(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    # (min, +): ⊗ is addition along the edge (dist + weight).
    return x + w


def _mul_and(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    # (or, and): ⊗ is conjunction with the structural edge (weight
    # presence); any stored edge counts, so this is just x.
    return x.astype(bool) & (np.ones_like(w, dtype=bool))


def _mul_times(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    # (+, ×): the ordinary ring — weighted mass flow.
    return x * w


#: Tropical semiring — SSSP relaxation / shortest distances.
MIN_PLUS = Semiring(
    name="min_plus",
    add=np.minimum,
    multiply=_mul_plus,
    add_identity=np.inf,
)

#: Boolean semiring — BFS reachability / frontier discovery.
OR_AND = Semiring(
    name="or_and",
    add=np.logical_or,
    multiply=_mul_and,
    add_identity=False,
    dtype=np.dtype(bool),
)

#: The ordinary ring — PageRank/HITS/SpMV mass flow.
PLUS_TIMES = Semiring(
    name="plus_times",
    add=np.add,
    multiply=_mul_times,
    add_identity=0.0,
)

SEMIRINGS: Dict[str, Semiring] = {
    s.name: s for s in (MIN_PLUS, OR_AND, PLUS_TIMES)
}


def resolve_semiring(semiring) -> Semiring:
    """Accept a :class:`Semiring` or its registry name."""
    if isinstance(semiring, Semiring):
        return semiring
    got = SEMIRINGS.get(semiring)
    if got is None:
        raise KeyError(
            f"unknown semiring {semiring!r}; expected one of "
            f"{sorted(SEMIRINGS)}"
        )
    return got


def semiring_names() -> Tuple[str, ...]:
    """Sorted names of the registered semirings."""
    return tuple(sorted(SEMIRINGS))
