"""Linear-algebra backend: graph algorithms as masked matrix products.

The paper's taxonomy splits frameworks into native-graph (frontiers +
advance/filter — the rest of this repo) and linear-algebra based
(GraphBLAST: masked SpMV/SpMSpV over semirings).  This package is the
second kind, built on the same :class:`~repro.graph.graph.Graph`
facade:

* :mod:`repro.linalg.semiring` — the (⊕, ⊗) algebras: ``(min, +)``,
  ``(or, and)``, ``(+, ×)``.
* :mod:`repro.linalg.kernels` — masked SpMV (pull) and SpMSpV (push),
  pure NumPy with an opportunistic scipy fast path.
* :mod:`repro.linalg.algorithms` — eight algorithms as semiring
  iterations, returning the native result types.

Select it per call with ``backend="linalg"`` on the native entry
points, or via ``--backend`` on the CLI; the conformance matrix crosses
it as its own axis.
"""

from repro.linalg.algorithms import (
    MIN_SELECT,
    linalg_bfs,
    linalg_cc,
    linalg_hits,
    linalg_pagerank,
    linalg_ppr,
    linalg_spgemm,
    linalg_spmv,
    linalg_sssp,
)
from repro.linalg.kernels import (
    force_numpy,
    scipy_adjacency,
    scipy_available,
    spmspv,
    spmv,
)
from repro.linalg.semiring import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    SEMIRINGS,
    Semiring,
    resolve_semiring,
    semiring_names,
)

__all__ = [
    "MIN_PLUS",
    "MIN_SELECT",
    "OR_AND",
    "PLUS_TIMES",
    "SEMIRINGS",
    "Semiring",
    "force_numpy",
    "linalg_bfs",
    "linalg_cc",
    "linalg_hits",
    "linalg_pagerank",
    "linalg_ppr",
    "linalg_spgemm",
    "linalg_spmv",
    "linalg_sssp",
    "resolve_semiring",
    "scipy_adjacency",
    "scipy_available",
    "semiring_names",
    "spmspv",
    "spmv",
]
