"""The eight algorithms as linear-algebra iterations.

Each driver here reproduces one native-graph algorithm as a loop of
masked SpMV / SpMSpV products (§IV-A: "the duality of graphs and sparse
matrices"), returning the *same result type* as the native entry point
so callers, oracles, and the CLI cannot tell the backends apart — which
is exactly what the conformance matrix then proves mechanically:

====================  =========================  =======================
algorithm             semiring                   kernel shape
====================  =========================  =======================
bfs                   (or, and)                  push SpMSpV / pull
                                                 masked SpMV, visited
                                                 complement mask
sssp                  (min, +)                   push SpMSpV over the
                                                 improved frontier
cc                    (min, select)              SpMSpV label push over
                                                 both orientations
pagerank / ppr        (+, ×)                     dense SpMV (Aᵀ·share)
hits                  (+, ×)                     Aᵀ·hub then A·auth
spmv                  (+, ×)                     A·x
spgemm                (+, ×)                     A·B (scipy or COO
                                                 expand/collapse)
====================  =========================  =======================

The drivers reuse the native direction optimizer's thresholds: push
(SpMSpV) while the frontier is small, pull (masked SpMV) when it covers
more than ``pull_threshold`` of the graph — the Beamer heuristic
re-expressed as a choice between matrix kernels.

Execution is bulk by construction (one NumPy/scipy product per
superstep), so the execution-policy axis is accepted for interface
parity but does not change the schedule — the conformance matrix
crosses ``backend="linalg"`` against the default policy instead.
"""

from __future__ import annotations

import time as _time
from typing import Optional, Sequence, Union

import numpy as np

from repro.algorithms.bfs import BFSResult, UNREACHED
from repro.algorithms.cc import CCResult
from repro.algorithms.hits import HITSResult
from repro.algorithms.pagerank import PageRankResult
from repro.algorithms.ppr import PPRResult
from repro.algorithms.sssp import SSSPResult
from repro.graph.graph import Graph
from repro.linalg.kernels import scipy_adjacency, spmspv, spmv
from repro.linalg.semiring import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
)
from repro.types import INF, INVALID_VERTEX, VALUE_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.counters import IterationStats, RunStats
from repro.utils.validation import check_vertex_in_range

#: Label propagation's algebra: ⊕ = min, ⊗ = "carry the source value"
#: (edges are structural, their weights don't enter the label order).
MIN_SELECT = Semiring(
    name="min_select",
    add=np.minimum,
    multiply=lambda x, w: x,
    add_identity=np.inf,
)


def _record(stats: RunStats, i: int, frontier: int, edges: int, t0: float):
    stats.record(
        IterationStats(
            iteration=i,
            frontier_size=frontier,
            edges_touched=edges,
            seconds=_time.perf_counter() - t0,
        )
    )


# -- bfs ----------------------------------------------------------------------


def linalg_bfs(
    graph: Graph,
    source: int,
    *,
    direction: str = "push",
    pull_threshold: float = 0.05,
    push_back_threshold: float = 0.01,
) -> BFSResult:
    """BFS as boolean matrix products over the (or, and) semiring.

    Push supersteps are SpMSpV over the frontier with the visited set as
    a structural-complement output mask; pull supersteps are a masked
    SpMV over the CSC restricted to unvisited rows.  ``"auto"`` switches
    between them on the frontier's active fraction, same thresholds as
    the native direction optimizer.
    """
    if direction not in ("push", "pull", "auto"):
        raise ValueError(
            f"direction must be 'push', 'pull', or 'auto', got {direction!r}"
        )
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    levels = np.full(n, UNREACHED, dtype=np.int64)
    parents = np.full(n, INVALID_VERTEX, dtype=VERTEX_DTYPE)
    levels[source] = 0
    parents[source] = source
    result = BFSResult(levels=levels, parents=parents, source=source)
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.asarray([source], dtype=np.int64)
    out_deg = graph.out_degrees()
    indicator = np.zeros(n, dtype=bool)
    level = 0
    stats = RunStats()
    last_pull = False
    while frontier.shape[0]:
        t0 = _time.perf_counter()
        level += 1
        if direction == "auto":
            frac = frontier.shape[0] / max(n, 1)
            use_pull = frac >= pull_threshold or (
                last_pull and frac > push_back_threshold
            )
            result.directions.append("pull" if use_pull else "push")
        else:
            use_pull = direction == "pull"
        last_pull = use_pull
        if use_pull:
            # Pull: every unvisited vertex asks "does any in-neighbor
            # hold the frontier bit?" — masked SpMV over the CSC with
            # the visited set's structural complement.
            indicator[:] = False
            indicator[frontier] = True
            y = spmv(
                graph,
                indicator,
                semiring=OR_AND,
                transpose=True,
                mask=visited,
                complement=True,
            )
            discovered = np.nonzero(y)[0]
            edges = int(np.count_nonzero(~visited))  # rows scanned
        else:
            # Push: SpMSpV over the frontier, visited-complement mask.
            _, discovered = spmspv(
                graph,
                frontier,
                np.ones(n, dtype=bool),
                semiring=OR_AND,
                mask=visited,
                complement=True,
            )
            edges = int(out_deg[frontier].sum())
        levels[discovered] = level
        visited[discovered] = True
        _record(stats, level - 1, int(frontier.shape[0]), edges, t0)
        frontier = discovered
    stats.converged = True
    result.stats = stats
    _fill_parents(graph, levels, parents)
    return result


def _fill_parents(
    graph: Graph, levels: np.ndarray, parents: np.ndarray
) -> None:
    """Assign each reached vertex an in-neighbor one level closer.

    The boolean products discard which source set each bit; parents are
    recovered in one CSC pass at the end — any in-neighbor at
    ``level - 1`` is a valid BFS parent (same benign-race contract as
    the native push claim).
    """
    csc = graph.csc()
    reached = np.nonzero(levels > 0)[0]
    if reached.shape[0] == 0:
        return
    starts = csc.col_offsets[reached]
    lengths = (csc.col_offsets[reached + 1] - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return
    flat = np.repeat(starts, lengths) + (
        np.arange(total) - np.repeat(np.cumsum(lengths) - lengths, lengths)
    )
    srcs = csc.row_indices[flat].astype(np.int64)
    dsts = np.repeat(reached, lengths)
    good = levels[srcs] == levels[dsts] - 1
    # First qualifying in-edge per destination wins (np.unique keeps
    # the first occurrence index of each sorted key).
    uniq, first = np.unique(dsts[good], return_index=True)
    parents[uniq] = srcs[np.nonzero(good)[0][first]].astype(VERTEX_DTYPE)


# -- sssp ---------------------------------------------------------------------


def linalg_sssp(
    graph: Graph,
    source: int,
    *,
    direction: str = "push",
    pull_threshold: float = 0.05,
    max_iterations: Optional[int] = None,
) -> SSSPResult:
    """Label-correcting SSSP as (min, +) matrix products.

    Push supersteps relax the improved frontier's out-edges via SpMSpV;
    pull supersteps recompute every vertex's best in-edge bound via the
    transposed SpMV (converging to the same fixed point, Listing 4's
    invariant).  The next frontier is exactly the vertices whose
    distance dropped.
    """
    if direction not in ("push", "pull", "auto"):
        raise ValueError(
            f"direction must be 'push', 'pull', or 'auto', got {direction!r}"
        )
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    frontier = np.asarray([source], dtype=np.int64)
    out_deg = graph.out_degrees()
    cap = max_iterations if max_iterations is not None else 4 * max(n, 1) + 8
    stats = RunStats()
    i = 0
    while frontier.shape[0] and i < cap:
        t0 = _time.perf_counter()
        use_pull = direction == "pull" or (
            direction == "auto"
            and frontier.shape[0] / max(n, 1) >= pull_threshold
        )
        if use_pull:
            candidate = spmv(
                graph, dist, semiring=MIN_PLUS, transpose=True
            )
            improved = np.nonzero(candidate < dist)[0]
            edges = graph.n_edges
        else:
            candidate, touched = spmspv(
                graph, frontier, dist, semiring=MIN_PLUS
            )
            improved = touched[candidate[touched] < dist[touched]]
            edges = int(out_deg[frontier].sum())
        dist[improved] = candidate[improved]
        _record(stats, i, int(frontier.shape[0]), edges, t0)
        frontier = improved
        i += 1
    stats.converged = frontier.shape[0] == 0
    distances = np.where(np.isinf(dist), np.float64(INF), dist).astype(
        VALUE_DTYPE
    )
    return SSSPResult(distances=distances, source=source, stats=stats)


# -- cc -----------------------------------------------------------------------


def linalg_cc(graph: Graph) -> CCResult:
    """Weakly connected components as (min, select) label products.

    Every changed vertex pushes its label along out-edges, and (for
    directed graphs) along in-edges of the reversed adjacency, until
    the min-label fixed point — the same convergence as native label
    propagation, as matrix products.
    """
    n = graph.n_vertices
    labels = np.arange(n, dtype=np.float64)
    reverse = (
        graph.derived("linalg.reverse", graph.reverse)
        if graph.properties.directed
        else None
    )
    frontier = np.arange(n, dtype=np.int64)
    stats = RunStats()
    i = 0
    while frontier.shape[0]:
        t0 = _time.perf_counter()
        candidate, touched = spmspv(
            graph, frontier, labels, semiring=MIN_SELECT
        )
        if reverse is not None:
            cand_r, touched_r = spmspv(
                reverse, frontier, labels, semiring=MIN_SELECT
            )
            np.minimum(candidate, cand_r, out=candidate)
            touched = np.union1d(touched, touched_r)
        improved = touched[candidate[touched] < labels[touched]]
        labels[improved] = candidate[improved]
        _record(stats, i, int(frontier.shape[0]), int(touched.shape[0]), t0)
        frontier = improved
        i += 1
    stats.converged = True
    out = labels.astype(np.int64)
    return CCResult(
        labels=out,
        n_components=int(np.unique(out).shape[0]) if n else 0,
        stats=stats,
    )


# -- rank family --------------------------------------------------------------


def _out_weight(graph: Graph) -> np.ndarray:
    """Per-vertex total outgoing edge weight (the rank-share divisor)."""
    n = graph.n_vertices
    return spmv(graph, np.ones(n, dtype=np.float64), semiring=PLUS_TIMES)


def linalg_pagerank(
    graph: Graph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
    initial_ranks: Optional[np.ndarray] = None,
) -> PageRankResult:
    """Damped PageRank as dense (+, ×) products: ``incoming = Aᵀ·share``.

    Numerically the same update as the native vectorized superstep
    (dangling mass redistributed uniformly); the product routes through
    scipy's C matvec when available, the bulk-workload crossover the
    benchmark entry records.
    """
    if not (0.0 <= damping <= 1.0):
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    n = graph.n_vertices
    if n == 0:
        return PageRankResult(
            ranks=np.empty(0), iterations=0, delta=0.0, converged=True
        )
    out_weight = _out_weight(graph)
    dangling = out_weight == 0
    if initial_ranks is not None:
        if initial_ranks.shape != (n,):
            raise ValueError(
                f"initial_ranks must have shape ({n},), "
                f"got {initial_ranks.shape}"
            )
        ranks = initial_ranks.astype(np.float64, copy=True)
        total = float(ranks.sum())
        if total > 0:
            ranks /= total
    else:
        ranks = np.full(n, 1.0 / n, dtype=np.float64)
    delta = np.inf
    iterations = 0
    stats = RunStats()
    for iterations in range(1, max_iterations + 1):
        t0 = _time.perf_counter()
        share = np.where(
            dangling, 0.0, ranks / np.maximum(out_weight, 1e-300)
        )
        incoming = spmv(graph, share, semiring=PLUS_TIMES, transpose=True)
        dangling_mass = float(ranks[dangling].sum()) / n
        new_ranks = (1.0 - damping) / n + damping * (
            incoming + dangling_mass
        )
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        _record(stats, iterations - 1, n, graph.n_edges, t0)
        if delta <= tolerance:
            break
    converged = delta <= tolerance
    stats.converged = converged
    return PageRankResult(
        ranks=ranks,
        iterations=iterations,
        delta=delta,
        converged=converged,
        stats=stats,
    )


def linalg_ppr(
    graph: Graph,
    seeds: Union[int, Sequence[int]],
    *,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
    initial_ranks: Optional[np.ndarray] = None,
) -> PPRResult:
    """Personalized PageRank as dense (+, ×) products (teleport to seeds)."""
    damping = float(damping)
    if not (0.0 <= damping <= 1.0):
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    n = graph.n_vertices
    seeds = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        raise ValueError("at least one seed vertex is required")
    if int(seeds.min()) < 0 or int(seeds.max()) >= n:
        raise ValueError(f"seed ids must lie in [0, {n})")
    out_weight = _out_weight(graph)
    dangling = out_weight == 0
    teleport = np.zeros(n, dtype=np.float64)
    teleport[seeds] = 1.0 / seeds.size
    if initial_ranks is not None:
        if initial_ranks.shape != (n,):
            raise ValueError(
                f"initial_ranks must have shape ({n},), "
                f"got {initial_ranks.shape}"
            )
        ranks = initial_ranks.astype(np.float64, copy=True)
        total = float(ranks.sum())
        if total > 0:
            ranks /= total
    else:
        ranks = teleport.copy()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        share = np.where(
            dangling, 0.0, ranks / np.maximum(out_weight, 1e-300)
        )
        incoming = spmv(graph, share, semiring=PLUS_TIMES, transpose=True)
        dangling_mass = float(ranks[dangling].sum())
        new_ranks = (1.0 - damping) * teleport + damping * (
            incoming + dangling_mass * teleport
        )
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if delta <= tolerance:
            converged = True
            break
    stats = RunStats()
    stats.converged = converged
    return PPRResult(
        ranks=ranks,
        seeds=seeds,
        iterations=iterations,
        converged=converged,
        stats=stats,
    )


def linalg_hits(
    graph: Graph,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> HITSResult:
    """HITS as the push/pull product pair: ``auth = Aᵀ·hub``, ``hub = A·auth``."""
    n = graph.n_vertices
    if n == 0:
        empty = np.empty(0)
        return HITSResult(empty, empty, 0, True)
    hubs = np.full(n, 1.0 / np.sqrt(n), dtype=np.float64)
    auth = hubs.copy()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_auth = spmv(graph, hubs, semiring=PLUS_TIMES, transpose=True)
        norm = np.linalg.norm(new_auth)
        if norm > 0:
            new_auth /= norm
        new_hubs = spmv(graph, new_auth, semiring=PLUS_TIMES)
        norm = np.linalg.norm(new_hubs)
        if norm > 0:
            new_hubs /= norm
        delta = max(
            float(np.abs(new_auth - auth).max(initial=0.0)),
            float(np.abs(new_hubs - hubs).max(initial=0.0)),
        )
        auth, hubs = new_auth, new_hubs
        if delta <= tolerance:
            converged = True
            break
    stats = RunStats()
    stats.converged = converged
    return HITSResult(
        hubs=hubs,
        authorities=auth,
        iterations=iterations,
        converged=converged,
        stats=stats,
    )


# -- spmv / spgemm ------------------------------------------------------------


def linalg_spmv(graph: Graph, x: np.ndarray) -> np.ndarray:
    """``y = A·x`` through the kernel layer (out-edge gather)."""
    n = graph.n_vertices
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.shape[0] != n:
        raise ValueError(
            f"x must have one entry per vertex ({n}), got {x.shape[0]}"
        )
    return spmv(graph, x, semiring=PLUS_TIMES)


def linalg_spgemm(a: Graph, b: Graph) -> Graph:
    """``C = A·B`` over (+, ×); the product comes back as a graph.

    scipy's C SpGEMM when available; otherwise a COO expand/collapse
    (each A-nonzero (i,k,w) fans out over B's row k, duplicate (i,j)
    pairs fold by summation — Gustavson's algorithm written as array
    ops).  Structural zeros are kept out, same contract as native.
    """
    from repro.errors import GraphFormatError
    from repro.graph.coo import COOMatrix
    from repro.graph.csr import CSRMatrix

    if a.n_vertices != b.n_vertices:
        raise GraphFormatError(
            f"operand vertex counts differ: {a.n_vertices} vs {b.n_vertices}"
        )
    n = a.n_vertices
    probe_rows: np.ndarray
    sp_a = scipy_adjacency(a)
    if sp_a is not None:
        sp_b = scipy_adjacency(b)
        c = (sp_a @ sp_b).tocoo()
        # scipy keeps explicit zeros out of @-products already, but a
        # cancellation can leave stored zeros; drop them structurally.
        keep = c.data != 0
        rows = c.row[keep].astype(VERTEX_DTYPE)
        cols = c.col[keep].astype(VERTEX_DTYPE)
        vals = c.data[keep].astype(WEIGHT_DTYPE)
    else:
        a_coo = a.coo()
        b_csr = b.csr()
        # Fan each A-nonzero (i, k, w_ik) out over B's row k.
        k_mid = a_coo.cols.astype(np.int64)
        starts = b_csr.row_offsets[k_mid]
        lengths = (b_csr.row_offsets[k_mid + 1] - starts).astype(np.int64)
        total = int(lengths.sum())
        if total:
            flat = np.repeat(starts, lengths) + (
                np.arange(total)
                - np.repeat(np.cumsum(lengths) - lengths, lengths)
            )
            i_rep = np.repeat(a_coo.rows.astype(np.int64), lengths)
            w_rep = np.repeat(a_coo.vals.astype(np.float64), lengths)
            j_dst = b_csr.column_indices[flat].astype(np.int64)
            contrib = w_rep * b_csr.values[flat].astype(np.float64)
            keys = i_rep * n + j_dst
            uniq, inverse = np.unique(keys, return_inverse=True)
            summed = np.bincount(
                inverse, weights=contrib, minlength=uniq.shape[0]
            )
            rows = (uniq // n).astype(VERTEX_DTYPE)
            cols = (uniq % n).astype(VERTEX_DTYPE)
            vals = summed.astype(WEIGHT_DTYPE)
        else:
            rows = np.empty(0, dtype=VERTEX_DTYPE)
            cols = np.empty(0, dtype=VERTEX_DTYPE)
            vals = np.empty(0, dtype=WEIGHT_DTYPE)
    coo = COOMatrix(n, n, rows, cols, vals)
    ro, ci, v = coo.to_csr_arrays()
    return Graph(
        {"csr": CSRMatrix(n, n, ro, ci, v), "coo": coo},
        a.properties.with_(weighted=True),
    )
