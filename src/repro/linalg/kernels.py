"""Masked SpMV / SpMSpV kernels — advance and reduce as matrix products.

The two kernels mirror the paper's push/pull duality exactly
(§III-C / §IV-A, and GraphBLAST's execution model):

* :func:`spmspv` — **push**: the frontier is a sparse vector; expand
  the out-edges (CSR rows) of its nonzeros, ⊗-combine each edge with
  the source's value, ⊕-scatter into destinations.  Work is
  O(edges out of the frontier), the frontier-driven regime.
* :func:`spmv` — **pull**: a dense product over the CSC (i.e.
  ``y = Aᵀ ⊗ x`` when ``transpose``), optionally restricted by a
  per-vertex *mask* — the still-unvisited set, with
  ``complement=True`` giving the structural-complement masking
  GraphBLAST uses for the visited set.  Work is O(edges into the
  masked rows), the bulk regime.

Both kernels are pure NumPy (segmented scatter-reduce over the offsets
arrays, the same searchsorted/ufunc.at pattern as
:mod:`repro.operators.segmented`); when :mod:`scipy.sparse` is
importable the ``(+, ×)`` dense products route through its C matvec
instead — opportunistic acceleration, never a hard dependency.  The
``REPRO_NO_SCIPY`` environment variable (or :func:`force_numpy`) pins
the pure-NumPy path, which CI exercises with scipy uninstalled.

Kernel invocations are traced as ``linalg:spmv`` / ``linalg:spmspv``
spans, attributed to the operator layer by the analysis engine.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.observability.probe import active_probe
from repro.linalg.semiring import PLUS_TIMES, Semiring, resolve_semiring

# -- scipy gating -------------------------------------------------------------

_FORCE_NUMPY = 0  # nesting depth of force_numpy() contexts


def _scipy_sparse():
    """The ``scipy.sparse`` module, or ``None`` when gated/absent."""
    if _FORCE_NUMPY or os.environ.get("REPRO_NO_SCIPY"):
        return None
    try:
        import scipy.sparse as sp
    except ImportError:
        return None
    return sp


def scipy_available() -> bool:
    """Whether the scipy fast path is importable *and* not gated off."""
    return _scipy_sparse() is not None


@contextmanager
def force_numpy():
    """Pin the pure-NumPy reference path for the duration (tests)."""
    global _FORCE_NUMPY
    _FORCE_NUMPY += 1
    try:
        yield
    finally:
        _FORCE_NUMPY -= 1


# -- adjacency caching --------------------------------------------------------

#: Key under which the scipy CSR adjacency is cached on the graph facade.
_SCIPY_KEY = "linalg.scipy_csr"


def scipy_adjacency(graph: Graph):
    """The graph's weighted adjacency as a cached ``scipy.sparse.csr_matrix``.

    ``A[u, v] = w`` for each stored edge (parallel edges fold by
    summation, scipy's canonical duplicate handling — matching what the
    ``(+, ×)`` kernels need).  Returns ``None`` when scipy is gated off.
    Cached through the facade's derived-artifact cache, so repeated
    iterations (PageRank, HITS, power iteration) build it once.
    """
    sp = _scipy_sparse()
    if sp is None:
        return None

    def build():
        coo = graph.coo()
        n = graph.n_vertices
        mat = sp.csr_matrix(
            (
                coo.vals.astype(np.float64),
                (coo.rows.astype(np.int64), coo.cols.astype(np.int64)),
            ),
            shape=(n, n),
        )
        return mat

    return graph.derived(_SCIPY_KEY, build)


# -- the kernels --------------------------------------------------------------


def _masked_rows(
    n: int,
    mask: Optional[np.ndarray],
    complement: bool,
) -> Optional[np.ndarray]:
    """Row ids selected by ``mask`` (None = all rows)."""
    if mask is None:
        return None
    mask = np.asarray(mask, dtype=bool)
    if mask.shape[0] != n:
        raise ValueError(
            f"mask must have one entry per vertex ({n}), got {mask.shape[0]}"
        )
    return np.nonzero(~mask if complement else mask)[0]


def spmv(
    graph: Graph,
    x: np.ndarray,
    *,
    semiring: Semiring = PLUS_TIMES,
    transpose: bool = False,
    mask: Optional[np.ndarray] = None,
    complement: bool = False,
) -> np.ndarray:
    """Masked (row-segmented) sparse matrix–vector product.

    ``y[u] = ⊕_{(u,v,w)} x[v] ⊗ w`` over u's out-edges, or over its
    in-edges when ``transpose`` (``y = Aᵀ ⊗ x`` — the pull form: each
    destination reduces over its sources).  Rows outside ``mask``
    (inside it, under ``complement``) keep the ⊕ identity and their
    edges are never touched — the masked-SpMV work saving that makes
    pull-BFS linear in the unvisited set, not the graph.
    """
    semiring = resolve_semiring(semiring)
    n = graph.n_vertices
    x = np.asarray(x)
    if x.shape[0] != n:
        raise ValueError(
            f"x must have one entry per vertex ({n}), got {x.shape[0]}"
        )
    rows = _masked_rows(n, mask, complement)
    probe = active_probe()
    with probe.span(
        "linalg:spmv",
        semiring=semiring.name,
        transpose=transpose,
        masked=mask is not None,
        rows=int(rows.shape[0]) if rows is not None else n,
    ):
        sp = _scipy_sparse()
        if (
            sp is not None
            and semiring.name == PLUS_TIMES.name
            and rows is None
        ):
            # Unmasked (+, ×) is exactly the classical product: one C
            # matvec through the cached scipy adjacency.
            a = scipy_adjacency(graph)
            xv = np.asarray(x, dtype=np.float64)
            return (a.T @ xv) if transpose else (a @ xv)
        return _spmv_numpy(
            graph, x, semiring=semiring, transpose=transpose, rows=rows
        )


def _spmv_numpy(
    graph: Graph,
    x: np.ndarray,
    *,
    semiring: Semiring,
    transpose: bool,
    rows: Optional[np.ndarray],
) -> np.ndarray:
    """The always-on NumPy reference path: segmented scatter-reduce."""
    n = graph.n_vertices
    if transpose:
        csc = graph.csc()
        offsets, targets, weights = (
            csc.col_offsets, csc.row_indices, csc.values,
        )
    else:
        csr = graph.csr()
        offsets, targets, weights = (
            csr.row_offsets, csr.column_indices, csr.values,
        )
    out = semiring.zeros(n)
    xv = np.asarray(x, dtype=semiring.dtype)

    if rows is None:
        lo, hi = 0, int(offsets[-1])
        if lo == hi:
            return out
        contrib = semiring.multiply(
            xv[targets], weights.astype(np.float64)
        ).astype(semiring.dtype, copy=False)
        seg = (
            np.searchsorted(offsets, np.arange(lo, hi), side="right") - 1
        )
        semiring.add.at(out, seg, contrib)
        return out

    # Masked form: gather only the selected rows' segments.
    starts = offsets[rows]
    lengths = (offsets[rows + 1] - starts).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return out
    # Flat edge positions of every selected segment, in row order.
    flat = np.repeat(starts, lengths) + (
        np.arange(total) - np.repeat(np.cumsum(lengths) - lengths, lengths)
    )
    contrib = semiring.multiply(
        xv[targets[flat]], weights[flat].astype(np.float64)
    ).astype(semiring.dtype, copy=False)
    seg = np.repeat(np.arange(rows.shape[0]), lengths)
    local = semiring.zeros(rows.shape[0])
    semiring.add.at(local, seg, contrib)
    out[rows] = local
    return out


def spmspv(
    graph: Graph,
    frontier_ids: np.ndarray,
    x: np.ndarray,
    *,
    semiring: Semiring = PLUS_TIMES,
    mask: Optional[np.ndarray] = None,
    complement: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sparse matrix × sparse vector over the frontier (the push kernel).

    ``frontier_ids`` are the nonzero positions of the sparse input
    vector; ``x`` is the dense value backing (only frontier entries are
    read).  Expands the frontier's out-edges (CSR) and ⊕-reduces the
    ⊗-combined contributions by destination:

        ``y[v] = ⊕_{(u,v,w), u ∈ frontier} x[u] ⊗ w``

    Returns ``(y, touched)`` where ``y`` is the dense accumulator
    (⊕ identity everywhere untouched) and ``touched`` the sorted unique
    destinations that received at least one contribution — the natural
    sparsity pattern of the output vector, i.e. the next frontier before
    masking.  ``mask``/``complement`` filter *outputs* structurally:
    contributions to excluded destinations are dropped before the
    reduction (the visited-set complement mask of push-BFS).
    """
    semiring = resolve_semiring(semiring)
    n = graph.n_vertices
    x = np.asarray(x)
    frontier_ids = np.asarray(frontier_ids, dtype=np.int64).ravel()
    probe = active_probe()
    with probe.span(
        "linalg:spmspv",
        semiring=semiring.name,
        nnz=int(frontier_ids.shape[0]),
        masked=mask is not None,
    ):
        out = semiring.zeros(n)
        if frontier_ids.shape[0] == 0:
            return out, np.empty(0, dtype=np.int64)
        csr = graph.csr()
        starts = csr.row_offsets[frontier_ids]
        lengths = (csr.row_offsets[frontier_ids + 1] - starts).astype(
            np.int64
        )
        total = int(lengths.sum())
        if total == 0:
            return out, np.empty(0, dtype=np.int64)
        flat = np.repeat(starts, lengths) + (
            np.arange(total)
            - np.repeat(np.cumsum(lengths) - lengths, lengths)
        )
        dsts = csr.column_indices[flat].astype(np.int64)
        srcs = np.repeat(frontier_ids, lengths)
        xv = np.asarray(x, dtype=semiring.dtype)
        contrib = semiring.multiply(
            xv[srcs], csr.values[flat].astype(np.float64)
        ).astype(semiring.dtype, copy=False)
        if mask is not None:
            keep_mask = np.asarray(mask, dtype=bool)
            if keep_mask.shape[0] != n:
                raise ValueError(
                    f"mask must have one entry per vertex ({n}), got "
                    f"{keep_mask.shape[0]}"
                )
            keep = (
                ~keep_mask[dsts] if complement else keep_mask[dsts]
            )
            dsts, contrib = dsts[keep], contrib[keep]
            if dsts.shape[0] == 0:
                return out, np.empty(0, dtype=np.int64)
        semiring.add.at(out, dsts, contrib)
        return out, np.unique(dsts)
