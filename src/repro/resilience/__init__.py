"""Fault tolerance for the iterative loop — chaos, retry, checkpoint,
supervision.

The paper's essential component 4 (the loop with convergence conditions)
is where this reproduction adds recovery, in the spirit of GraphX's
checkpoint/lineage recovery for iterative graph computation and enabled
by the Gunrock-style operator/enactor separation — algorithms never see
any of it.  Four cooperating pieces:

* :mod:`~repro.resilience.chaos` — :class:`FaultInjector`, a
  deterministic seed-driven fault source (task raises, worker death,
  message drop/duplicate/delay, transient I/O errors) installable as a
  context manager so any test or benchmark runs under chaos;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, exponential
  backoff + jitter + deadline re-execution, sound under the documented
  monotone-task contract;
* :mod:`~repro.resilience.checkpoint` — periodic superstep snapshots
  (frontier + value arrays, copy-on-write) with resume;
* :mod:`~repro.resilience.supervisor` — worker restart, a progress
  watchdog, and graceful degradation to the sequential execution policy;
* :mod:`~repro.resilience.deadline` — absolute monotonic
  :class:`Deadline` and :class:`CancelToken`, the cooperative
  cancellation substrate the query service threads through every
  enactor, scheduler, and retry scope.

A :class:`ResiliencePolicy` bundles them; every enactor, the async
scheduler, and the Pregel engine accept one via ``resilience=``.
"""

from repro.resilience.chaos import (
    FAULT_KINDS,
    FaultInjector,
    active_injector,
    io_fault_point,
)
from repro.resilience.deadline import (
    CancelToken,
    Deadline,
    active_token,
    check_cancelled,
    clamp_timeout,
)
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointStore,
    snapshot_arrays,
)
from repro.resilience.policy import ResiliencePolicy, protective
from repro.resilience.retry import DEFAULT_RETRYABLE, RetryPolicy, with_retry
from repro.resilience.supervisor import (
    SupervisionConfig,
    WorkerSupervisor,
    run_with_fallback,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "active_injector",
    "io_fault_point",
    "CancelToken",
    "Deadline",
    "active_token",
    "check_cancelled",
    "clamp_timeout",
    "Checkpoint",
    "CheckpointStore",
    "snapshot_arrays",
    "ResiliencePolicy",
    "protective",
    "DEFAULT_RETRYABLE",
    "RetryPolicy",
    "with_retry",
    "SupervisionConfig",
    "WorkerSupervisor",
    "run_with_fallback",
]
