"""The :class:`ResiliencePolicy` — one object bundling a run's fault
tolerance configuration.

Mirrors the execution-policy design (:mod:`repro.execution.policy`): the
enactors and schedulers take an optional ``resilience=`` parameter the
same way operators take an execution policy, and algorithm code never
changes — recovery lives entirely at the loop/execution/comm layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ResilienceError
from repro.resilience.chaos import FaultInjector, active_injector
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisionConfig
from repro.utils.counters import ResilienceCounters


@dataclass
class ResiliencePolicy:
    """What an enactor/scheduler/router does about failure.

    Attributes
    ----------
    chaos:
        Fault injector for this run; when ``None`` the ambient injector
        installed via ``with FaultInjector(...):`` (if any) applies.
    retry:
        Retry/backoff policy for tasks, supersteps, and message
        delivery; ``None`` disables retries.
    checkpoint_every:
        Snapshot the loop state every N completed supersteps (0 = off).
    store:
        Checkpoint destination; auto-created when checkpointing is on.
    supervision:
        Worker restart / watchdog / degradation knobs; ``None`` disables
        supervision.
    counters:
        Shared event counters the whole resilience machinery reports to.
    """

    chaos: Optional[FaultInjector] = None
    retry: Optional[RetryPolicy] = None
    checkpoint_every: int = 0
    store: Optional[CheckpointStore] = None
    supervision: Optional[SupervisionConfig] = None
    counters: ResilienceCounters = field(default_factory=ResilienceCounters)

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ResilienceError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_every and self.store is None:
            self.store = CheckpointStore()

    def active_chaos(self) -> Optional[FaultInjector]:
        """This policy's injector, else the ambient one, else ``None``."""
        return self.chaos if self.chaos is not None else active_injector()

    def execute(self, fn, *, site: str = ""):
        """Run ``fn`` under this policy's retry (or directly without one)."""
        if self.retry is None:
            return fn()
        return self.retry.execute(fn, site=site, counters=self.counters)


def protective(
    *,
    seed: Optional[int] = None,
    chaos_rate: float = 0.0,
    max_attempts: int = 5,
    checkpoint_every: int = 0,
    supervise: bool = False,
) -> ResiliencePolicy:
    """Convenience constructor the CLI and tests share: retry always on,
    chaos only when a rate is given, supervision opt-in."""
    chaos = None
    if chaos_rate > 0.0:
        chaos = FaultInjector.uniform(seed or 0, chaos_rate)
    return ResiliencePolicy(
        chaos=chaos,
        retry=RetryPolicy(max_attempts=max_attempts),
        checkpoint_every=checkpoint_every,
        supervision=SupervisionConfig() if supervise else None,
    )
