"""Deterministic, seed-driven fault injection — the chaos harness.

A :class:`FaultInjector` is the simulated hostile environment: it decides,
from a seeded per-kind random stream, whether the k-th operation of each
kind fails.  Decisions depend only on ``(seed, kind, decision index)``,
never on thread interleaving, so a failing chaos run replays from its
seed.

Fault kinds cover the seams the paper's essential components expose:

* ``task``              — raise :class:`~repro.errors.FaultInjected` at a
  task/superstep boundary (enactors, async scheduler);
* ``worker_death``      — a scheduler worker thread silently dies;
* ``message_drop``      — a routed message is lost in flight;
* ``message_duplicate`` — a routed message is delivered twice;
* ``message_delay``     — a superstep-delivery message slips one barrier;
* ``io``                — a transient graph-file read error.

Faults are injected *at operation boundaries* (before a task runs, as a
message batch is routed), never mid-mutation — re-execution is therefore
safe exactly when the documented monotone-task contract holds, which is
what lets :mod:`repro.resilience.retry` recover to bit-identical results.

Installing an injector as a context manager makes it *ambient*: every
instrumented seam (enactors, the async scheduler, the mailbox router,
graph I/O readers) consults :func:`active_injector`, so any existing test
or benchmark runs under chaos by wrapping it in ``with injector:``.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import FaultInjected, ResilienceError
from repro.observability.probe import active_probe
from repro.utils.rng import spawn_rngs

#: Every fault kind an injector can produce, in stream-derivation order
#: (the order matters: kind i draws from the i-th spawned child stream).
FAULT_KINDS = (
    "task",
    "worker_death",
    "message_drop",
    "message_duplicate",
    "message_delay",
    "io",
)

_active_lock = threading.Lock()
_active: Optional["FaultInjector"] = None


def active_injector() -> Optional["FaultInjector"]:
    """The ambient injector installed by ``with FaultInjector(...):``, or
    ``None`` outside any chaos context (the zero-overhead common case)."""
    return _active


class FaultInjector:
    """Seeded fault-decision source, installable as a context manager.

    Parameters
    ----------
    seed:
        Drives every decision stream; same seed + same call sequence =
        same faults.
    task_rate, worker_death_rate, message_drop_rate,
    message_duplicate_rate, message_delay_rate, io_rate:
        Per-decision fault probabilities in ``[0, 1]``.
    max_faults:
        Optional cap on *total* injected faults across all kinds; after
        the budget is spent the injector goes quiet.  Keeps e.g.
        ``worker_death_rate=1.0`` from killing every restarted worker
        forever.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        *,
        task_rate: float = 0.0,
        worker_death_rate: float = 0.0,
        message_drop_rate: float = 0.0,
        message_duplicate_rate: float = 0.0,
        message_delay_rate: float = 0.0,
        io_rate: float = 0.0,
        max_faults: Optional[int] = None,
    ) -> None:
        rates = {
            "task": task_rate,
            "worker_death": worker_death_rate,
            "message_drop": message_drop_rate,
            "message_duplicate": message_duplicate_rate,
            "message_delay": message_delay_rate,
            "io": io_rate,
        }
        for kind, rate in rates.items():
            if not (0.0 <= rate <= 1.0):
                raise ResilienceError(
                    f"{kind} fault rate must be in [0, 1], got {rate}"
                )
        if max_faults is not None and max_faults < 0:
            raise ResilienceError(
                f"max_faults must be >= 0, got {max_faults}"
            )
        if seed is None:
            # Unseeded injectors follow the ambient chaos seed so the
            # test harness can replay a whole chaotic run from one env
            # var; outside tests the fallback keeps the old default.
            seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
        self.seed = seed
        self.rates = rates
        self.max_faults = max_faults
        self._lock = threading.Lock()
        self._rngs = dict(zip(FAULT_KINDS, spawn_rngs(seed, len(FAULT_KINDS))))
        #: Faults injected so far, by kind.
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        #: Decisions asked so far, by kind (faulting or not).
        self.decisions: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._prev: Optional[FaultInjector] = None

    @classmethod
    def uniform(
        cls, seed: int = 0, rate: float = 0.05, *, max_faults: Optional[int] = None
    ) -> "FaultInjector":
        """Injector with the same rate on every recoverable fault kind
        (worker death excluded — that one needs supervision, not retry,
        so it stays opt-in)."""
        return cls(
            seed,
            task_rate=rate,
            message_drop_rate=rate,
            message_duplicate_rate=rate,
            message_delay_rate=rate,
            io_rate=rate,
            max_faults=max_faults,
        )

    # -- decision streams --------------------------------------------------------------

    @property
    def total_faults(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def decide(self, kind: str) -> bool:
        """Whether the next operation of ``kind`` faults.

        The k-th decision for a kind is a pure function of
        ``(seed, kind, k)``; the lock serializes stream access so the
        mapping holds under any thread interleaving of *other* kinds.
        """
        if kind not in self.rates:
            raise ResilienceError(f"unknown fault kind {kind!r}")
        with self._lock:
            self.decisions[kind] += 1
            rate = self.rates[kind]
            if rate <= 0.0:
                return False
            if (
                self.max_faults is not None
                and sum(self.counts.values()) >= self.max_faults
            ):
                return False
            hit = bool(self._rngs[kind].random() < rate)
            if hit:
                self.counts[kind] += 1
            return hit

    def decide_many(self, kind: str, n: int) -> np.ndarray:
        """Vectorized :meth:`decide`: one boolean per operation, budget-aware."""
        if n <= 0:
            return np.zeros(0, dtype=bool)
        with self._lock:
            self.decisions[kind] += n
            rate = self.rates[kind]
            if rate <= 0.0:
                return np.zeros(n, dtype=bool)
            hits = self._rngs[kind].random(n) < rate
            if self.max_faults is not None:
                budget = self.max_faults - sum(self.counts.values())
                if budget <= 0:
                    return np.zeros(n, dtype=bool)
                hit_idx = np.nonzero(hits)[0]
                if hit_idx.size > budget:
                    hits[hit_idx[budget:]] = False
            self.counts[kind] += int(np.count_nonzero(hits))
            return hits

    # -- convenience fault points ------------------------------------------------------

    def maybe_fail_task(self, site: str = "task") -> None:
        """Raise :class:`FaultInjected` at a task/superstep boundary."""
        if self.decide("task"):
            active_probe().event("fault", kind="task", site=site)
            raise FaultInjected(
                f"injected task fault at {site} "
                f"(fault #{self.counts['task']}, seed={self.seed})"
            )

    def maybe_fail_io(self, site: str = "io") -> None:
        """Raise :class:`FaultInjected` at a graph-I/O boundary."""
        if self.decide("io"):
            active_probe().event("fault", kind="io", site=site)
            raise FaultInjected(
                f"injected transient I/O fault at {site} "
                f"(fault #{self.counts['io']}, seed={self.seed})"
            )

    def should_kill_worker(self) -> bool:
        """Whether the asking worker thread dies now (silently exits)."""
        if self.decide("worker_death"):
            active_probe().event("fault", kind="worker_death")
            return True
        return False

    def split_messages(
        self, destinations: np.ndarray, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Apply drop/duplicate faults to a routed message batch.

        Returns ``(kept_dsts, kept_vals, dropped_dsts, dropped_vals,
        n_duplicated)``.  Kept messages include the extra copies of
        duplicated ones (at-least-once semantics downstream combiners
        must tolerate); the dropped subset is returned so a retrying
        sender can re-offer it.
        """
        n = int(destinations.shape[0])
        dropped = self.decide_many("message_drop", n)
        duplicated = self.decide_many("message_duplicate", n)
        n_duplicated = int(np.count_nonzero(duplicated & ~dropped))
        if not dropped.any() and n_duplicated == 0:
            return destinations, values, destinations[:0], values[:0], 0
        keep = ~dropped
        dup = duplicated & keep
        kept_d = np.concatenate([destinations[keep], destinations[dup]])
        kept_v = np.concatenate([values[keep], values[dup]])
        return kept_d, kept_v, destinations[dropped], values[dropped], n_duplicated

    def delay_mask(self, n: int) -> np.ndarray:
        """Per-message "slips one superstep barrier" mask."""
        return self.decide_many("message_delay", n)

    # -- ambient installation ----------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        global _active
        with _active_lock:
            self._prev = _active
            _active = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active
        with _active_lock:
            _active = self._prev
            self._prev = None

    def __repr__(self) -> str:
        knobs = ", ".join(
            f"{kind}={rate}" for kind, rate in self.rates.items() if rate > 0
        )
        return f"FaultInjector(seed={self.seed}, {knobs or 'quiet'})"


def io_fault_point(site: str) -> None:
    """Module-level hook graph I/O readers call: raises under an ambient
    injector with a nonzero ``io`` rate, no-op otherwise."""
    injector = active_injector()
    if injector is not None:
        injector.maybe_fail_io(site)
