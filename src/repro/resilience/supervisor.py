"""Worker supervision: restarts, stall detection, graceful degradation.

Three recovery mechanisms for the parallel execution engines:

* **Worker restart** — the supervisor thread watches the scheduler's
  worker threads and respawns any that died (chaos ``worker_death``, or a
  real crash that escaped the task try/except), up to ``max_restarts``.
* **Progress watchdog** — if work is outstanding but the processed count
  has not moved for ``stall_timeout`` seconds, the run is aborted with
  :class:`~repro.errors.StallDetected` instead of hanging forever.
* **Graceful degradation** — :func:`run_with_fallback` re-attempts a
  parallel execution a bounded number of times and then falls back to
  the sequential execution policy: per the paper's policy-independence
  claim, the sequential run produces the same results, just slower.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type

from repro.errors import CancellationError, ResilienceError, StallDetected
from repro.utils.counters import ResilienceCounters


@dataclass(frozen=True)
class SupervisionConfig:
    """Knobs for worker supervision and degradation.

    Attributes
    ----------
    restart_workers:
        Respawn dead worker threads.
    max_restarts:
        Total restart budget per run (bounds a crash loop).
    stall_timeout:
        Seconds of outstanding-but-unmoving work before the watchdog
        aborts with :class:`StallDetected`; ``None`` disables it.
    poll_interval:
        Supervisor wake-up period in seconds.
    degrade_to_sequential:
        Whether :func:`run_with_fallback` may fall back at all.
    max_parallel_failures:
        Parallel attempts before degrading to sequential.
    """

    restart_workers: bool = True
    max_restarts: int = 8
    stall_timeout: Optional[float] = None
    poll_interval: float = 0.02
    degrade_to_sequential: bool = True
    max_parallel_failures: int = 2

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ResilienceError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ResilienceError(
                f"stall_timeout must be positive, got {self.stall_timeout}"
            )
        if self.poll_interval <= 0:
            raise ResilienceError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.max_parallel_failures < 1:
            raise ResilienceError(
                f"max_parallel_failures must be >= 1, got "
                f"{self.max_parallel_failures}"
            )


class WorkerSupervisor:
    """Monitor thread over a scheduler's worker threads.

    The scheduler hands over its (mutable) ``threads`` list, a ``spawn``
    callback that builds-and-starts a replacement for worker slot ``i``,
    and progress probes.  While the run's ``stop`` event is clear the
    supervisor respawns dead workers and watches for stalls; ``on_stall``
    lets the scheduler abort the run (record the error, set ``stop``).

    The supervisor owns mutation of ``threads`` while running; callers
    must only touch the list after :meth:`join`.
    """

    def __init__(
        self,
        *,
        threads: List[threading.Thread],
        spawn: Callable[[int], threading.Thread],
        stop: threading.Event,
        progress: Callable[[], int],
        outstanding: Callable[[], int],
        config: SupervisionConfig,
        counters: Optional[ResilienceCounters] = None,
        on_stall: Optional[Callable[[StallDetected], None]] = None,
    ) -> None:
        self.threads = threads
        self.spawn = spawn
        self.stop = stop
        self.progress = progress
        self.outstanding = outstanding
        self.config = config
        self.counters = counters
        self.on_stall = on_stall
        self.restarts = 0
        self._thread = threading.Thread(
            target=self._loop, name="repro-supervisor", daemon=True
        )

    def start(self) -> None:
        """Start the monitor thread."""
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the monitor thread to exit (it stops with the run)."""
        self._thread.join(timeout)

    def _loop(self) -> None:
        cfg = self.config
        last_progress = self.progress()
        last_change = time.monotonic()
        while not self.stop.wait(cfg.poll_interval):
            if cfg.restart_workers:
                for i, t in enumerate(self.threads):
                    if t.is_alive() or self.stop.is_set():
                        continue
                    if self.restarts >= cfg.max_restarts:
                        continue
                    self.threads[i] = self.spawn(i)
                    self.restarts += 1
                    if self.counters is not None:
                        self.counters.increment("workers_restarted")
            now = time.monotonic()
            current = self.progress()
            if current != last_progress:
                last_progress = current
                last_change = now
                continue
            if (
                cfg.stall_timeout is not None
                and self.outstanding() > 0
                and now - last_change >= cfg.stall_timeout
            ):
                if self.counters is not None:
                    self.counters.increment("stalls_detected")
                exc = StallDetected(
                    f"no progress for {cfg.stall_timeout}s with "
                    f"{self.outstanding()} items outstanding "
                    f"({current} processed, {self.restarts} restarts)"
                )
                if self.on_stall is not None:
                    self.on_stall(exc)
                return


def run_with_fallback(
    parallel_fn: Callable[[], object],
    sequential_fn: Callable[[], object],
    *,
    config: SupervisionConfig,
    counters: Optional[ResilienceCounters] = None,
    fall_back_on: Tuple[Type[BaseException], ...] = (Exception,),
) -> object:
    """Attempt ``parallel_fn`` up to ``config.max_parallel_failures``
    times, then degrade to ``sequential_fn``.

    Sound for monotone computations: a partially completed parallel
    attempt leaves value arrays in a state any further (re-)execution —
    parallel or sequential — converges from to the same fixed point, so
    degradation trades only speed, never results.
    """
    last: Optional[BaseException] = None
    for _ in range(config.max_parallel_failures):
        try:
            return parallel_fn()
        except fall_back_on as exc:
            if isinstance(exc, CancellationError):
                # A fired deadline/cancel is a caller decision, not a
                # failure to recover from — degrading to a (slower)
                # sequential run would overshoot the deadline by design.
                raise
            last = exc
            if counters is not None:
                counters.increment("parallel_failures")
    if not config.degrade_to_sequential:
        assert last is not None
        raise last
    if counters is not None:
        counters.increment("degraded_runs")
    return sequential_fn()
