"""Retry with exponential backoff — recovery for transient failures.

A :class:`RetryPolicy` re-executes an operation that raised a *transient*
exception (injected faults, I/O hiccups, communication errors) up to
``max_attempts`` times, sleeping an exponentially growing, jittered delay
between attempts and respecting an optional wall-clock deadline.

Re-execution is only sound because of the monotone-task contract the
execution layer documents (:mod:`repro.execution.scheduler`): tasks and
supersteps may be re-run with stale inputs without corrupting results —
label-correcting graph algorithms satisfy this by construction, which is
exactly why retry can promise *bit-identical* outputs under chaos (the
equivalence suite in ``tests/test_resilience.py`` checks this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple, Type

import numpy as np

from repro.errors import (
    CommunicationError,
    FaultInjected,
    GraphIOError,
    ResilienceError,
    RetryExhausted,
)
from repro.observability.probe import active_probe
from repro.resilience.deadline import active_token
from repro.utils.counters import ResilienceCounters

#: Exception types retried by default: chaos faults plus the transient
#: classes real deployments retry (file and network hiccups).
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    FaultInjected,
    GraphIOError,
    CommunicationError,
    OSError,
)

_jitter_rng = np.random.default_rng()


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to re-execute a failed operation.

    Attributes
    ----------
    max_attempts:
        Total tries including the first; ``1`` means "no retries".
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Backoff growth factor per retry.
    max_delay:
        Ceiling on any single sleep.
    jitter:
        Fraction of the delay randomized symmetrically around it
        (decorrelates synchronized retry storms; affects timing only,
        never results).
    deadline:
        Optional overall wall-clock budget in seconds, *relative to call
        start*; attempts stop — raising
        :class:`~repro.errors.RetryExhausted` — once it is spent, even
        with attempts remaining.
    deadline_at:
        Optional *absolute monotonic* deadline (a ``time.monotonic()``
        timestamp, e.g. ``Deadline.after(0.5).at``).  Unlike the
        relative ``deadline``, nesting cannot overshoot it: every retry
        scope sharing the timestamp stops at the same instant, and
        backoff sleeps are clamped so the policy never sleeps past it.
        The ambient :class:`~repro.resilience.deadline.CancelToken` (if
        one is installed on the calling thread) is folded in the same
        way, so service-level deadlines bound nested retries without
        any parameter threading.
    retry_on:
        Exception types considered transient; anything else propagates
        immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    deadline: Optional[float] = None
    deadline_at: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = field(
        default=DEFAULT_RETRYABLE
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ResilienceError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ResilienceError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ResilienceError(
                f"deadline must be positive, got {self.deadline}"
            )

    def with_attempts(self, max_attempts: int) -> "RetryPolicy":
        """Copy of this policy with a different attempt budget."""
        return replace(self, max_attempts=max_attempts)

    def with_deadline_at(self, at: float) -> "RetryPolicy":
        """Copy of this policy bounded by an absolute monotonic deadline
        (tightens an existing one, never loosens it)."""
        if self.deadline_at is not None:
            at = min(at, self.deadline_at)
        return replace(self, deadline_at=at)

    def _budget_end(self, start: float) -> Optional[float]:
        """The absolute monotonic instant this execute() must stop at:
        the tightest of the relative deadline, the absolute deadline,
        and the calling thread's ambient cancel token."""
        end: Optional[float] = None
        if self.deadline is not None:
            end = start + self.deadline
        if self.deadline_at is not None:
            end = self.deadline_at if end is None else min(end, self.deadline_at)
        token = active_token()
        if token is not None and token.deadline is not None:
            at = token.deadline.at
            end = at if end is None else min(end, at)
        return end

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is transient under this policy."""
        return isinstance(exc, self.retry_on)

    def delay_for(self, retry_index: int) -> float:
        """Sleep before the ``retry_index``-th retry (0-based), jittered."""
        delay = min(
            self.base_delay * (self.multiplier ** retry_index), self.max_delay
        )
        if self.jitter and delay > 0:
            span = delay * self.jitter
            delay = max(0.0, delay + float(_jitter_rng.uniform(-span, span)))
        return delay

    def execute(
        self,
        fn: Callable[[], object],
        *,
        site: str = "",
        counters: Optional[ResilienceCounters] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> object:
        """Run ``fn`` to success or :class:`RetryExhausted`.

        ``counters`` (when given) records ``tasks_retried`` per retry and
        ``retries_exhausted`` on final failure.
        """
        start = time.monotonic()
        budget_end = self._budget_end(start)
        token = active_token()
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as exc:
                if not self.is_retryable(exc):
                    raise
                last = exc
                out_of_budget = (
                    attempt >= self.max_attempts
                    or (
                        budget_end is not None
                        and time.monotonic() >= budget_end
                    )
                    or (token is not None and token.cancelled)
                )
                if out_of_budget:
                    if counters is not None:
                        counters.increment("retries_exhausted")
                    active_probe().event(
                        "retry:exhausted",
                        site=site,
                        attempts=attempt,
                        error=type(exc).__name__,
                    )
                    where = f" at {site}" if site else ""
                    raise RetryExhausted(
                        f"operation{where} failed after {attempt} attempts: "
                        f"{type(exc).__name__}: {exc}",
                        attempts=attempt,
                    ) from exc
                if counters is not None:
                    counters.increment("tasks_retried")
                active_probe().event(
                    "retry",
                    site=site,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
                delay = self.delay_for(attempt - 1)
                if budget_end is not None:
                    # Never sleep past the absolute budget: the retry
                    # must wake with time left to actually re-attempt.
                    delay = min(delay, max(0.0, budget_end - time.monotonic()))
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


def with_retry(
    policy: RetryPolicy,
    *,
    counters: Optional[ResilienceCounters] = None,
) -> Callable[[Callable], Callable]:
    """Decorator form: ``@with_retry(policy)`` wraps a function so every
    call runs under :meth:`RetryPolicy.execute`."""

    def decorate(fn: Callable) -> Callable:
        def wrapped(*args, **kwargs):
            return policy.execute(
                lambda: fn(*args, **kwargs),
                site=getattr(fn, "__name__", "fn"),
                counters=counters,
            )

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        return wrapped

    return decorate
