"""Deadlines and cooperative cancellation — the serving-path substrate.

A one-shot CLI run can afford to let an algorithm finish; a multi-tenant
service cannot.  Every query the service layer admits carries a
:class:`CancelToken` — an *absolute monotonic* :class:`Deadline` plus an
explicit cancel flag — and the loop/execution layers consult it at their
natural safe points:

* the BSP and priority enactors check at superstep/bucket boundaries;
* the async schedulers fold the remaining budget into their quiescence
  timeout and abort their wait when the token fires;
* :class:`~repro.resilience.retry.RetryPolicy` stops retrying (and
  clamps its backoff sleeps) so nested retries can never overshoot a
  service-level deadline.

Checks happen only *between* mutations — the same boundary discipline
the chaos injector uses — so a cancelled run leaves thread pools,
schedulers, and workspaces reusable for the next query instead of
stranding threads or poisoning shared state.

The token is installed *ambiently per thread* (``with token: ...``),
mirroring :func:`~repro.resilience.chaos.active_injector` but
thread-local rather than process-global: concurrent queries on different
server threads each see only their own deadline, and algorithm
signatures never change.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import DeadlineExceeded, QueryCancelled


class Deadline:
    """An absolute point on the monotonic clock.

    Absolute (not "seconds from now") so it can be handed down through
    nested layers — admission wait, retry attempts, supersteps — without
    each layer restarting the budget.
    """

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = float(at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """Deadline ``seconds`` from now on the monotonic clock."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - time.monotonic()

    def expired(self) -> bool:
        """Whether the instant has passed."""
        return time.monotonic() >= self.at

    def check(self, site: str = "") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` once expired."""
        over = time.monotonic() - self.at
        if over >= 0:
            where = f" at {site}" if site else ""
            raise DeadlineExceeded(
                f"deadline exceeded{where} (over by {over * 1e3:.1f} ms)"
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


class CancelToken:
    """Deadline + explicit cancel flag, shared across a query's layers.

    Thread-safe: any thread may :meth:`cancel`; the running query's
    thread observes it at the next cooperative checkpoint.  Install as
    ambient for the current thread with ``with token: ...``.
    """

    __slots__ = ("deadline", "label", "reason", "_cancelled", "_prev")

    def __init__(
        self, deadline: Optional[Deadline] = None, *, label: str = ""
    ) -> None:
        self.deadline = deadline
        self.label = label
        self.reason = ""
        self._cancelled = threading.Event()
        self._prev: Optional[CancelToken] = None

    @classmethod
    def after(cls, seconds: float, *, label: str = "") -> "CancelToken":
        return cls(Deadline.after(seconds), label=label)

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self._cancelled.is_set():
            self.reason = reason or "cancelled"
            self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def expired(self) -> bool:
        """Whether the token's deadline (if any) has passed."""
        return self.deadline is not None and self.deadline.expired()

    def should_stop(self) -> bool:
        """Cheap poll: cancelled or past deadline (never raises)."""
        return self._cancelled.is_set() or (
            self.deadline is not None and self.deadline.expired()
        )

    def remaining(self) -> Optional[float]:
        """Seconds to the deadline, or ``None`` when unbounded."""
        return None if self.deadline is None else self.deadline.remaining()

    def check(self, site: str = "") -> None:
        """Raise at a cooperative checkpoint if the token has fired."""
        if self._cancelled.is_set():
            self._note_fired(site, "cancelled")
            where = f" at {site}" if site else ""
            what = f" ({self.reason})" if self.reason else ""
            raise QueryCancelled(f"query cancelled{where}{what}")
        if self.deadline is not None:
            try:
                self.deadline.check(site)
            except DeadlineExceeded:
                self._note_fired(site, "deadline")
                raise

    def _note_fired(self, site: str, kind: str) -> None:
        """Mark the raise on the open span — a trace of a 504 then shows
        exactly which checkpoint observed the fired token.  Lazy import:
        this module sits below observability in the dependency order,
        and the cold path (the token fired) can afford the lookup."""
        from repro.observability.probe import active_probe

        probe = active_probe()
        if probe.enabled:
            probe.event(
                "resilience:cancelled",
                kind=kind,
                site=site,
                label=self.label,
            )

    # -- ambient installation (per thread) ---------------------------------------------

    def __enter__(self) -> "CancelToken":
        self._prev = getattr(_tls, "token", None)
        _tls.token = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _tls.token = self._prev
        self._prev = None

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return (
            f"CancelToken({self.label or 'anonymous'}, {state}, "
            f"deadline={self.deadline!r})"
        )


_tls = threading.local()


def active_token() -> Optional[CancelToken]:
    """The current thread's ambient token, or ``None`` outside any query
    scope (the zero-overhead common case — one thread-local read)."""
    return getattr(_tls, "token", None)


def check_cancelled(site: str = "") -> None:
    """Module-level cooperative checkpoint: raises if the current
    thread's ambient token (if any) has fired, no-op otherwise."""
    token = getattr(_tls, "token", None)
    if token is not None:
        token.check(site)


def clamp_timeout(timeout: Optional[float]) -> Optional[float]:
    """Fold the ambient deadline into a relative timeout.

    Returns the smaller of ``timeout`` and the ambient token's remaining
    budget (floored at 0 so expired deadlines surface immediately rather
    than blocking).  ``None`` in, no token → ``None`` out.
    """
    token = getattr(_tls, "token", None)
    if token is None or token.deadline is None:
        return timeout
    remaining = max(0.0, token.deadline.remaining())
    return remaining if timeout is None else min(timeout, remaining)
