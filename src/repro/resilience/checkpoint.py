"""Superstep checkpointing — crash recovery for the iterative loop.

The paper's essential component 4 (the convergent loop) is the natural
recovery seam: a BSP run's entire state between supersteps is (frontier,
value arrays, loop context).  A :class:`Checkpoint` snapshots exactly
that; the enactors save one every ``checkpoint_every`` supersteps into a
:class:`CheckpointStore`, and ``Enactor.resume_from_checkpoint`` restarts
a crashed run from the last completed snapshot instead of superstep 0 —
the GraphX-style recovery argument applied at the loop layer, with no
algorithm-code changes.

Snapshots are copy-on-write: an array that has not changed since the
previous checkpoint shares that checkpoint's buffer instead of being
copied again (a BFS ``parents`` array settles early; CC labels freeze
component by component).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import CheckpointError

#: Checkpoint kinds the enactors produce.
KIND_BSP = "bsp"
KIND_PRIORITY = "priority"


@dataclass
class Checkpoint:
    """One recoverable loop state.

    Attributes
    ----------
    superstep:
        Completed supersteps (BSP) or drained buckets (priority) at the
        time of the snapshot; resume continues from here.
    frontier_indices:
        Active vertex ids entering the next superstep.
    capacity:
        Frontier capacity (vertex count) for reconstruction.
    arrays:
        Named snapshots of the algorithm's value arrays (``dist``,
        ``levels``, ``labels``, ...).  May share buffers with earlier
        checkpoints (copy-on-write); treat as immutable.
    context:
        Shallow copy of the loop's context dict.
    kind:
        ``"bsp"`` or ``"priority"``.
    extra:
        Kind-specific state — the priority enactor stores its bucket
        table and current bucket index here.
    """

    superstep: int
    frontier_indices: np.ndarray
    capacity: int
    arrays: Dict[str, np.ndarray]
    context: Dict[str, object] = field(default_factory=dict)
    kind: str = KIND_BSP
    extra: Dict[str, object] = field(default_factory=dict)

    def restore_arrays(self, targets: Dict[str, np.ndarray]) -> None:
        """Copy every snapshot back into the live arrays, in place.

        Raises :class:`~repro.errors.CheckpointError` when a named array
        is missing or its shape/dtype disagrees with the snapshot.
        """
        for name, saved in self.arrays.items():
            if name not in targets:
                raise CheckpointError(
                    f"checkpoint array {name!r} has no restore target; "
                    f"targets: {sorted(targets)}"
                )
            live = targets[name]
            if live.shape != saved.shape or live.dtype != saved.dtype:
                raise CheckpointError(
                    f"checkpoint array {name!r} is {saved.dtype}{saved.shape}, "
                    f"target is {live.dtype}{live.shape}"
                )
            np.copyto(live, saved)

    def nbytes(self) -> int:
        """Total snapshot payload (shared buffers counted once per id)."""
        seen = set()
        total = int(self.frontier_indices.nbytes)
        for arr in self.arrays.values():
            if id(arr) not in seen:
                seen.add(id(arr))
                total += int(arr.nbytes)
        return total


def snapshot_arrays(
    arrays: Dict[str, np.ndarray], previous: Optional[Checkpoint]
) -> Dict[str, np.ndarray]:
    """Copy-on-write snapshot of ``arrays`` against the previous checkpoint:
    unchanged arrays share the prior snapshot's buffer."""
    out: Dict[str, np.ndarray] = {}
    for name, arr in arrays.items():
        prev = previous.arrays.get(name) if previous is not None else None
        if (
            prev is not None
            and prev.shape == arr.shape
            and prev.dtype == arr.dtype
            and np.array_equal(prev, arr)
        ):
            out[name] = prev
        else:
            out[name] = np.array(arr, copy=True)
    return out


class CheckpointStore:
    """Bounded in-memory checkpoint history, newest last.

    ``keep_last`` bounds memory; two is enough for copy-on-write sharing
    plus recovery.  Thread-safe so an enactor can save while a monitor
    inspects.
    """

    def __init__(self, keep_last: int = 2) -> None:
        if keep_last < 1:
            raise CheckpointError(
                f"keep_last must be >= 1, got {keep_last}"
            )
        self.keep_last = keep_last
        self._checkpoints: List[Checkpoint] = []
        self._lock = threading.Lock()

    def save(self, checkpoint: Checkpoint) -> None:
        """Append a checkpoint, evicting beyond ``keep_last``."""
        with self._lock:
            self._checkpoints.append(checkpoint)
            del self._checkpoints[: -self.keep_last]

    def latest(self) -> Optional[Checkpoint]:
        """Most recent checkpoint, or ``None`` when the store is empty."""
        with self._lock:
            return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)

    def clear(self) -> None:
        """Discard every stored checkpoint."""
        with self._lock:
            self._checkpoints.clear()

    # -- durable form ------------------------------------------------------------------

    def dump(self, path: str) -> None:
        """Write the latest checkpoint as an ``.npz`` (arrays verbatim,
        scalars and the context dict JSON-encoded under ``__meta__``)."""
        ckpt = self.latest()
        if ckpt is None:
            raise CheckpointError("no checkpoint to dump")
        payload = {f"array__{k}": v for k, v in ckpt.arrays.items()}
        payload["frontier_indices"] = ckpt.frontier_indices
        meta = {
            "superstep": ckpt.superstep,
            "capacity": ckpt.capacity,
            "kind": ckpt.kind,
            "context": ckpt.context,
            "extra": ckpt.extra,
        }
        try:
            payload["__meta__"] = np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            )
        except TypeError as exc:
            raise CheckpointError(
                f"checkpoint context/extra not JSON-serializable: {exc}"
            ) from exc
        np.savez(path, **payload)

    @staticmethod
    def load(path: str) -> Checkpoint:
        """Read a checkpoint written by :meth:`dump`."""
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
                arrays = {
                    k[len("array__"):]: data[k]
                    for k in data.files
                    if k.startswith("array__")
                }
                frontier_indices = data["frontier_indices"]
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(
                f"cannot load checkpoint from {path!r}: {exc}"
            ) from exc
        return Checkpoint(
            superstep=int(meta["superstep"]),
            frontier_indices=frontier_indices,
            capacity=int(meta["capacity"]),
            arrays=arrays,
            context=dict(meta.get("context", {})),
            kind=meta.get("kind", KIND_BSP),
            extra=dict(meta.get("extra", {})),
        )
