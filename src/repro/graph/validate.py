"""Structural validation of graph representations.

Validation is deliberately separate from construction: the format classes
check only cheap shape invariants in their constructors so bulk pipelines
stay fast, while these functions perform the full O(V + E) audit used by
tests, loaders, and debugging sessions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csc import CSCMatrix
from repro.graph.csr import CSRMatrix


def validate_csr(csr: CSRMatrix) -> None:
    """Fully audit a CSR structure; raise :class:`GraphFormatError` on fault.

    Checks: monotone offsets anchored at 0 and n_edges, column indices in
    range, finite weights.
    """
    ro = csr.row_offsets
    if ro[0] != 0:
        raise GraphFormatError(f"row_offsets[0] must be 0, got {int(ro[0])}")
    if np.any(np.diff(ro) < 0):
        bad = int(np.argmax(np.diff(ro) < 0))
        raise GraphFormatError(f"row_offsets decreases at row {bad}")
    n_edges = int(ro[-1])
    if csr.column_indices.shape[0] != n_edges:
        raise GraphFormatError(
            f"column_indices length {csr.column_indices.shape[0]} != "
            f"row_offsets[-1] = {n_edges}"
        )
    if n_edges:
        cmin = int(csr.column_indices.min())
        cmax = int(csr.column_indices.max())
        if cmin < 0 or cmax >= csr.n_cols:
            raise GraphFormatError(
                f"column indices must lie in [0, {csr.n_cols}); found "
                f"range [{cmin}, {cmax}]"
            )
        if not np.all(np.isfinite(csr.values)):
            raise GraphFormatError("edge weights must be finite")


def validate_csc(csc: CSCMatrix) -> None:
    """Fully audit a CSC structure (mirror of :func:`validate_csr`)."""
    co = csc.col_offsets
    if co[0] != 0:
        raise GraphFormatError(f"col_offsets[0] must be 0, got {int(co[0])}")
    if np.any(np.diff(co) < 0):
        bad = int(np.argmax(np.diff(co) < 0))
        raise GraphFormatError(f"col_offsets decreases at column {bad}")
    n_edges = int(co[-1])
    if csc.row_indices.shape[0] != n_edges:
        raise GraphFormatError(
            f"row_indices length {csc.row_indices.shape[0]} != "
            f"col_offsets[-1] = {n_edges}"
        )
    if n_edges:
        rmin = int(csc.row_indices.min())
        rmax = int(csc.row_indices.max())
        if rmin < 0 or rmax >= csc.n_rows:
            raise GraphFormatError(
                f"row indices must lie in [0, {csc.n_rows}); found "
                f"range [{rmin}, {rmax}]"
            )
        if not np.all(np.isfinite(csc.values)):
            raise GraphFormatError("edge weights must be finite")


def validate_graph(graph) -> None:
    """Audit every materialized view of a :class:`~repro.graph.graph.Graph`
    and verify cross-view consistency (same vertex and edge counts, and the
    CSC really is the transpose of the CSR).
    """
    csr = graph.view("csr") if graph.has_view("csr") else None
    csc = graph.view("csc") if graph.has_view("csc") else None
    if csr is not None:
        validate_csr(csr)
    if csc is not None:
        validate_csc(csc)
    if csr is not None and csc is not None:
        if csr.get_num_edges() != csc.get_num_edges():
            raise GraphFormatError(
                f"CSR has {csr.get_num_edges()} edges but CSC has "
                f"{csc.get_num_edges()}"
            )
        # Compare edge multisets: (src, dst, weight) triples must agree.
        n = csr.get_num_edges()
        src_r = csr.source_of_edges(np.arange(n))
        dst_r = csr.column_indices
        order_r = np.lexsort((csr.values, dst_r, src_r))
        dst_c = (
            np.searchsorted(csc.col_offsets, np.arange(n), side="right") - 1
        ).astype(dst_r.dtype)
        src_c = csc.row_indices
        order_c = np.lexsort((csc.values, dst_c, src_c))
        if not (
            np.array_equal(src_r[order_r], src_c[order_c])
            and np.array_equal(dst_r[order_r], dst_c[order_c])
            and np.allclose(csr.values[order_r], csc.values[order_c])
        ):
            raise GraphFormatError("CSC view is not the transpose of the CSR view")


def validate_overlay(overlay) -> None:
    """Audit a :class:`~repro.dynamic.overlay.DeltaOverlay`'s invariants.

    Checks, in O(base + delta):

    * tombstone flags cover exactly the base edge-id range, none counted
      twice (``_dead_count`` agrees with the mask);
    * every staged insert endpoint is a valid vertex id, every staged
      weight finite;
    * the staged-insert index is coherent (one log slot per arc, every
      slot indexed);
    * **no duplicate live arc across base+delta**: a staged insert whose
      ``(src, dst)`` also exists as a live (un-tombstoned) base arc
      would make the merged CSR a multigraph the mutation API promised
      not to create.
    """
    base = overlay.base
    n = base.get_num_vertices()
    m = base.get_num_edges()
    dead = overlay.dead_edge_ids()
    if dead.size:
        if int(dead.min()) < 0 or int(dead.max()) >= m:
            raise GraphFormatError(
                f"tombstones must reference base edge ids in [0, {m}); "
                f"found range [{int(dead.min())}, {int(dead.max())}]"
            )
    if int(dead.size) != overlay.n_deleted:
        raise GraphFormatError(
            f"tombstone count disagrees: mask has {int(dead.size)}, "
            f"counter says {overlay.n_deleted}"
        )
    add_src, add_dst, add_w = overlay.inserted_arrays()
    if not (len(add_src) == len(add_dst) == len(add_w)):
        raise GraphFormatError("staged-insert arrays disagree on length")
    if add_src.size:
        lo = min(int(add_src.min()), int(add_dst.min()))
        hi = max(int(add_src.max()), int(add_dst.max()))
        if lo < 0 or hi >= n:
            raise GraphFormatError(
                f"staged inserts must reference vertices in [0, {n}); "
                f"found range [{lo}, {hi}]"
            )
        if not np.all(np.isfinite(add_w)):
            raise GraphFormatError("staged insert weights must be finite")
    index = overlay._add_index
    if len(index) != add_src.shape[0]:
        raise GraphFormatError(
            f"staged-insert index has {len(index)} entries for "
            f"{add_src.shape[0]} log slots (duplicate staged arc?)"
        )
    for (s, d), pos in index.items():
        if not (0 <= pos < add_src.shape[0]) or (
            int(add_src[pos]) != s or int(add_dst[pos]) != d
        ):
            raise GraphFormatError(
                f"staged-insert index entry ({s}, {d}) -> {pos} does not "
                f"match the log"
            )
    # No staged insert may duplicate a live base arc.
    for i in range(add_src.shape[0]):
        s, d = int(add_src[i]), int(add_dst[i])
        if overlay.find_live_base_edge(s, d) >= 0:
            raise GraphFormatError(
                f"staged insert ({s}, {d}) duplicates a live base edge — "
                f"inserting an existing arc must tombstone or rewrite it"
            )
