"""Structural validation of graph representations.

Validation is deliberately separate from construction: the format classes
check only cheap shape invariants in their constructors so bulk pipelines
stay fast, while these functions perform the full O(V + E) audit used by
tests, loaders, and debugging sessions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csc import CSCMatrix
from repro.graph.csr import CSRMatrix


def validate_csr(csr: CSRMatrix) -> None:
    """Fully audit a CSR structure; raise :class:`GraphFormatError` on fault.

    Checks: monotone offsets anchored at 0 and n_edges, column indices in
    range, finite weights.
    """
    ro = csr.row_offsets
    if ro[0] != 0:
        raise GraphFormatError(f"row_offsets[0] must be 0, got {int(ro[0])}")
    if np.any(np.diff(ro) < 0):
        bad = int(np.argmax(np.diff(ro) < 0))
        raise GraphFormatError(f"row_offsets decreases at row {bad}")
    n_edges = int(ro[-1])
    if csr.column_indices.shape[0] != n_edges:
        raise GraphFormatError(
            f"column_indices length {csr.column_indices.shape[0]} != "
            f"row_offsets[-1] = {n_edges}"
        )
    if n_edges:
        cmin = int(csr.column_indices.min())
        cmax = int(csr.column_indices.max())
        if cmin < 0 or cmax >= csr.n_cols:
            raise GraphFormatError(
                f"column indices must lie in [0, {csr.n_cols}); found "
                f"range [{cmin}, {cmax}]"
            )
        if not np.all(np.isfinite(csr.values)):
            raise GraphFormatError("edge weights must be finite")


def validate_csc(csc: CSCMatrix) -> None:
    """Fully audit a CSC structure (mirror of :func:`validate_csr`)."""
    co = csc.col_offsets
    if co[0] != 0:
        raise GraphFormatError(f"col_offsets[0] must be 0, got {int(co[0])}")
    if np.any(np.diff(co) < 0):
        bad = int(np.argmax(np.diff(co) < 0))
        raise GraphFormatError(f"col_offsets decreases at column {bad}")
    n_edges = int(co[-1])
    if csc.row_indices.shape[0] != n_edges:
        raise GraphFormatError(
            f"row_indices length {csc.row_indices.shape[0]} != "
            f"col_offsets[-1] = {n_edges}"
        )
    if n_edges:
        rmin = int(csc.row_indices.min())
        rmax = int(csc.row_indices.max())
        if rmin < 0 or rmax >= csc.n_rows:
            raise GraphFormatError(
                f"row indices must lie in [0, {csc.n_rows}); found "
                f"range [{rmin}, {rmax}]"
            )
        if not np.all(np.isfinite(csc.values)):
            raise GraphFormatError("edge weights must be finite")


def validate_graph(graph) -> None:
    """Audit every materialized view of a :class:`~repro.graph.graph.Graph`
    and verify cross-view consistency (same vertex and edge counts, and the
    CSC really is the transpose of the CSR).
    """
    csr = graph.view("csr") if graph.has_view("csr") else None
    csc = graph.view("csc") if graph.has_view("csc") else None
    if csr is not None:
        validate_csr(csr)
    if csc is not None:
        validate_csc(csc)
    if csr is not None and csc is not None:
        if csr.get_num_edges() != csc.get_num_edges():
            raise GraphFormatError(
                f"CSR has {csr.get_num_edges()} edges but CSC has "
                f"{csc.get_num_edges()}"
            )
        # Compare edge multisets: (src, dst, weight) triples must agree.
        n = csr.get_num_edges()
        src_r = csr.source_of_edges(np.arange(n))
        dst_r = csr.column_indices
        order_r = np.lexsort((csr.values, dst_r, src_r))
        dst_c = (
            np.searchsorted(csc.col_offsets, np.arange(n), side="right") - 1
        ).astype(dst_r.dtype)
        src_c = csc.row_indices
        order_c = np.lexsort((csc.values, dst_c, src_c))
        if not (
            np.array_equal(src_r[order_r], src_c[order_c])
            and np.array_equal(dst_r[order_r], dst_c[order_c])
            and np.allclose(csr.values[order_r], csc.values[order_c])
        ):
            raise GraphFormatError("CSC view is not the transpose of the CSR view")
