"""Graph metadata carried alongside every representation."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GraphProperties:
    """Structural metadata shared by all views of one graph.

    Attributes
    ----------
    directed:
        ``True`` when edges are one-way.  Undirected graphs are stored with
        both arc directions materialized (the standard CSR convention), so
        operators never need to special-case them.
    weighted:
        ``True`` when edge weights are meaningful; unweighted graphs carry a
        unit weight array so the traversal API stays uniform (Listing 1's
        ``get_edge_weight`` always works).
    has_self_loops:
        Whether ``(v, v)`` edges may be present.
    sorted_neighbors:
        Whether each vertex's neighbor list is sorted by destination id —
        required by the segmented-intersection operator (triangle
        counting) and enables binary-searched membership queries.
    """

    directed: bool = True
    weighted: bool = True
    has_self_loops: bool = False
    sorted_neighbors: bool = False

    def with_(self, **changes) -> "GraphProperties":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Human-readable one-line summary used in reprs and logs."""
        bits = [
            "directed" if self.directed else "undirected",
            "weighted" if self.weighted else "unweighted",
        ]
        if self.has_self_loops:
            bits.append("self-loops")
        if self.sorted_neighbors:
            bits.append("sorted")
        return ", ".join(bits)
