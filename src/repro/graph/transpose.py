"""Graph transposition: CSR <-> CSC in linear time.

Storing both the original and the transposed representation is how the
abstraction supports push *and* pull traversals "at the cost of memory
space" (§III-C / §IV-A sidebar).  The conversion is a stable counting
sort over destinations — O(V + E), no comparison sort.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csc import CSCMatrix
from repro.graph.csr import CSRMatrix
from repro.types import EDGE_DTYPE


def transpose_csr(csr: CSRMatrix) -> CSCMatrix:
    """Build the CSC view of ``csr`` (same logical graph, pull layout).

    The returned CSC groups edges by destination; within one destination,
    sources appear in increasing order (stability of the counting sort over
    a row-sorted input), which pull-side intersection kernels rely on.
    """
    n_rows, n_cols = csr.n_rows, csr.n_cols
    n_edges = csr.get_num_edges()

    counts = np.bincount(csr.column_indices, minlength=n_cols).astype(EDGE_DTYPE)
    col_offsets = np.zeros(n_cols + 1, dtype=EDGE_DTYPE)
    np.cumsum(counts, out=col_offsets[1:])

    # Stable scatter of each edge into its destination's segment.
    order = np.argsort(csr.column_indices, kind="stable")
    sources = csr.source_of_edges(np.arange(n_edges, dtype=EDGE_DTYPE))
    row_indices = sources[order]
    values = csr.values[order]
    return CSCMatrix(n_rows, n_cols, col_offsets, row_indices, values)


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    """Rebuild the CSR (push) view from a CSC (pull) view."""
    n_rows, n_cols = csc.n_rows, csc.n_cols
    n_edges = csc.get_num_edges()

    counts = np.bincount(csc.row_indices, minlength=n_rows).astype(EDGE_DTYPE)
    row_offsets = np.zeros(n_rows + 1, dtype=EDGE_DTYPE)
    np.cumsum(counts, out=row_offsets[1:])

    order = np.argsort(csc.row_indices, kind="stable")
    destinations = (
        np.searchsorted(
            csc.col_offsets, np.arange(n_edges, dtype=EDGE_DTYPE), side="right"
        )
        - 1
    )
    column_indices = destinations[order].astype(csc.row_indices.dtype)
    values = csc.values[order]
    return CSRMatrix(n_rows, n_cols, row_offsets, column_indices, values)
