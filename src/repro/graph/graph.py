"""The multi-view graph facade — Listing 1's ``graph_t`` in Python.

The C++ original uses *variadic inheritance* to give one graph object
several underlying sparse formats simultaneously.  The Python analog is
composition: :class:`Graph` owns a dictionary of named format views
(``"csr"``, ``"csc"``, ``"coo"``) plus the shared
:class:`~repro.graph.properties.GraphProperties`, derives missing views on
demand (and caches them), and answers every native-graph query by
delegating to the cheapest view that can serve it.

Keeping both CSR and CSC materialized is exactly the paper's push/pull
enabler: push advance reads the CSR, pull advance reads the CSC, "at the
cost of memory space".
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphViewError
from repro.graph.coo import COOMatrix
from repro.graph.csc import CSCMatrix
from repro.graph.csr import CSRMatrix
from repro.graph.properties import GraphProperties
from repro.types import EDGE_DTYPE, VERTEX_DTYPE

ViewType = Union[CSRMatrix, CSCMatrix, COOMatrix]

_VIEW_CLASSES = {"csr": CSRMatrix, "csc": CSCMatrix, "coo": COOMatrix}


class Graph:
    """A graph with one or more interchangeable underlying representations.

    Construct via the builder functions in :mod:`repro.graph.builder`
    (``from_edge_array``, ``from_scipy_sparse``, ...) rather than directly.

    Parameters
    ----------
    views:
        Mapping of view name (``"csr"`` | ``"csc"`` | ``"coo"``) to format
        object.  At least one view is required.
    properties:
        Shared structural metadata.
    """

    def __init__(
        self,
        views: Dict[str, ViewType],
        properties: Optional[GraphProperties] = None,
    ) -> None:
        if not views:
            raise GraphViewError("a Graph requires at least one format view")
        for name, view in views.items():
            expected = _VIEW_CLASSES.get(name)
            if expected is None:
                raise GraphViewError(
                    f"unknown view name {name!r}; expected one of "
                    f"{sorted(_VIEW_CLASSES)}"
                )
            if not isinstance(view, expected):
                raise GraphViewError(
                    f"view {name!r} must be a {expected.__name__}, got "
                    f"{type(view).__name__}"
                )
        self._views: Dict[str, ViewType] = dict(views)
        #: Derived-artifact cache (e.g. the linalg backend's scipy
        #: adjacency): keyed blobs computed from the views, built once.
        self._derived: Dict[str, object] = {}
        self.properties = properties or GraphProperties()
        # All views must agree on the vertex count.
        counts = {v.get_num_vertices() for v in self._views.values()}
        if len(counts) != 1:
            raise GraphViewError(f"views disagree on vertex count: {sorted(counts)}")

    # -- view management ----------------------------------------------------------

    def has_view(self, name: str) -> bool:
        """Whether the named view is already materialized."""
        return name in self._views

    def view(self, name: str) -> ViewType:
        """Return the named view, deriving and caching it if absent.

        Derivations: CSR↔CSC via linear-time transpose, COO from CSR by
        expanding offsets.  This mirrors the paper's "multiple underlying
        data structures for a single graph at the same time".
        """
        if name in self._views:
            return self._views[name]
        if name not in ("csr", "csc", "coo"):
            raise GraphViewError(
                f"unknown view name {name!r}; expected one of {sorted(_VIEW_CLASSES)}"
            )
        # View derivation is the graph layer's one nontrivial cost (a
        # linear-time transpose / expansion); trace it so the analysis
        # engine can attribute it.  Happens at most once per view, so
        # the enabled check is off every hot path.
        from repro.observability.probe import active_probe

        probe = active_probe()
        if probe.enabled:
            with probe.span("graph:view", view=name, n_edges=self.n_edges):
                built = self._derive_view(name)
        else:
            built = self._derive_view(name)
        self._views[name] = built
        return built

    def _derive_view(self, name: str) -> ViewType:
        if name == "csr":
            return self._derive_csr()
        if name == "csc":
            return self._derive_csc()
        return self._derive_coo()

    def csr(self) -> CSRMatrix:
        """The push-traversal (CSR) view."""
        return self.view("csr")  # type: ignore[return-value]

    def csc(self) -> CSCMatrix:
        """The pull-traversal (CSC / transposed) view."""
        return self.view("csc")  # type: ignore[return-value]

    def coo(self) -> COOMatrix:
        """The edge-list (COO) view."""
        return self.view("coo")  # type: ignore[return-value]

    def materialized_views(self) -> Tuple[str, ...]:
        """Names of views currently held in memory."""
        return tuple(sorted(self._views))

    def derived(self, key: str, builder):
        """A cached derived artifact, built on first request.

        The facade's lazy-view discipline extended to artifacts that are
        not one of the three sparse formats — e.g. the linalg backend's
        scipy adjacency.  ``builder()`` runs at most once per key; the
        build is traced as a ``graph:derived`` span so conversion cost
        lands in the graph layer, same as view derivation.  Graphs are
        immutable once built (mutation produces new snapshots), so the
        cache never invalidates.
        """
        if key not in self._derived:
            from repro.observability.probe import active_probe

            probe = active_probe()
            if probe.enabled:
                with probe.span(
                    "graph:derived", key=key, n_edges=self.n_edges
                ):
                    self._derived[key] = builder()
            else:
                self._derived[key] = builder()
        return self._derived[key]

    def _derive_csr(self) -> CSRMatrix:
        from repro.graph.transpose import csc_to_csr

        if "coo" in self._views:
            coo: COOMatrix = self._views["coo"]  # type: ignore[assignment]
            ro, ci, vals = coo.to_csr_arrays()
            return CSRMatrix(coo.n_rows, coo.n_cols, ro, ci, vals)
        if "csc" in self._views:
            return csc_to_csr(self._views["csc"])  # type: ignore[arg-type]
        raise GraphViewError("cannot derive CSR: no source view available")

    def _derive_csc(self) -> CSCMatrix:
        from repro.graph.transpose import transpose_csr

        return transpose_csr(self.csr())

    def _derive_coo(self) -> COOMatrix:
        csr = self.csr()
        n_edges = csr.get_num_edges()
        rows = csr.source_of_edges(np.arange(n_edges, dtype=EDGE_DTYPE))
        return COOMatrix(
            csr.n_rows, csr.n_cols, rows, csr.column_indices.copy(), csr.values.copy()
        )

    # -- native-graph API (Listing 1, delegated) -------------------------------------

    @property
    def n_vertices(self) -> int:
        return next(iter(self._views.values())).get_num_vertices()

    @property
    def n_edges(self) -> int:
        return next(iter(self._views.values())).get_num_edges()

    def get_num_vertices(self) -> int:
        """Number of vertices (Listing 1 query form)."""
        return self.n_vertices

    def get_num_edges(self) -> int:
        """Number of directed edges (Listing 1 query form)."""
        return self.n_edges

    def get_edges(self, v: int) -> range:
        """Out-edge ids of vertex ``v`` (CSR positions)."""
        return self.csr().get_edges(v)

    def get_dest_vertex(self, e: int) -> int:
        """Destination of out-edge ``e``."""
        return self.csr().get_dest_vertex(e)

    def get_edge_weight(self, e: int) -> float:
        """Weight of out-edge ``e`` — Listing 1's query verbatim."""
        return self.csr().get_edge_weight(e)

    def get_num_neighbors(self, v: int) -> int:
        """Out-degree of ``v``."""
        return self.csr().get_num_neighbors(v)

    def get_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v``."""
        return self.csr().get_neighbors(v)

    def get_in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (forces the CSC view)."""
        return self.csc().get_in_neighbors(v)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return self.csr().degrees()

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (forces the CSC view)."""
        return self.csc().in_degrees()

    def iter_edges(self) -> Iterator[Tuple[int, int, int, float]]:
        """Yield ``(src, dst, edge_id, weight)`` over all edges (CSR order)."""
        return self.csr().iter_edges()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists."""
        return self.csr().has_edge(
            u, v, assume_sorted=self.properties.sorted_neighbors
        )

    # -- derived graphs -------------------------------------------------------------

    def reverse(self) -> "Graph":
        """The reversed graph (every edge flipped), sharing no mutable state.

        Cheap when the CSC view exists: the reverse's CSR is this graph's
        CSC reinterpreted.
        """
        csc = self.csc()
        rev_csr = CSRMatrix(
            csc.n_cols,
            csc.n_rows,
            csc.col_offsets.copy(),
            csc.row_indices.copy(),
            csc.values.copy(),
        )
        return Graph({"csr": rev_csr}, self.properties)

    def with_sorted_neighbors(self) -> "Graph":
        """A copy whose CSR neighbor lists are sorted by destination id."""
        if self.properties.sorted_neighbors:
            return self
        sorted_csr = self.csr().sort_neighbors()
        return Graph(
            {"csr": sorted_csr}, self.properties.with_(sorted_neighbors=True)
        )

    def induced_subgraph(self, vertices: np.ndarray) -> Tuple["Graph", np.ndarray]:
        """The subgraph induced by ``vertices``, with ids relabeled 0..k-1.

        Returns ``(subgraph, old_ids)`` where ``old_ids[new_id]`` maps back
        to this graph's vertex ids.  Used by partition-local processing.
        """
        vertices = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
        remap = np.full(self.n_vertices, -1, dtype=VERTEX_DTYPE)
        remap[vertices] = np.arange(vertices.shape[0], dtype=VERTEX_DTYPE)
        csr = self.csr()
        srcs, dsts, _, weights = csr.expand_vertices(vertices)
        keep = remap[dsts] >= 0
        coo = COOMatrix(
            vertices.shape[0],
            vertices.shape[0],
            remap[srcs[keep]],
            remap[dsts[keep]],
            weights[keep],
        )
        ro, ci, vals = coo.to_csr_arrays()
        sub = Graph(
            {"csr": CSRMatrix(coo.n_rows, coo.n_cols, ro, ci, vals)}, self.properties
        )
        return sub, vertices

    def memory_footprint(self) -> Dict[str, int]:
        """Bytes held by each materialized view (the push+pull memory cost
        the paper calls out explicitly)."""
        out: Dict[str, int] = {}
        for name, view in self._views.items():
            total = 0
            for slot in view.__slots__:
                val = getattr(view, slot)
                if isinstance(val, np.ndarray):
                    total += val.nbytes
            out[name] = total
        return out

    def __repr__(self) -> str:
        return (
            f"Graph(n_vertices={self.n_vertices}, n_edges={self.n_edges}, "
            f"views={list(self.materialized_views())}, "
            f"{self.properties.describe()})"
        )
