"""Graph builders: every ingestion path normalizes through COO into CSR.

These free functions are the public construction API.  They take edge
data in whatever shape the caller has (arrays, tuples, scipy matrices,
networkx graphs), clean it (optional dedup, self-loop removal,
symmetrization), and return a :class:`~repro.graph.graph.Graph` whose CSR
view is materialized.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.csr import CSRMatrix
from repro.graph.graph import Graph
from repro.graph.properties import GraphProperties
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE


def _finalize(
    coo: COOMatrix,
    *,
    directed: bool,
    weighted: bool,
    remove_self_loops: bool,
    deduplicate: bool,
    combine: str,
) -> Graph:
    if remove_self_loops:
        coo = coo.without_self_loops()
    if not directed:
        coo = coo.symmetrized()
        # Symmetrization always introduces duplicates for inputs that list
        # both directions, so dedup is forced for undirected graphs.
        deduplicate = True
    if deduplicate:
        coo = coo.deduplicated(combine=combine)
    ro, ci, vals = coo.to_csr_arrays()
    csr = CSRMatrix(coo.n_rows, coo.n_cols, ro, ci, vals)
    has_loops = bool(np.any(coo.rows == coo.cols)) if coo.rows.size else False
    props = GraphProperties(
        directed=directed, weighted=weighted, has_self_loops=has_loops
    )
    return Graph({"csr": csr, "coo": coo}, props)


def from_edge_array(
    sources,
    destinations,
    weights=None,
    *,
    n_vertices: Optional[int] = None,
    directed: bool = True,
    remove_self_loops: bool = False,
    deduplicate: bool = False,
    combine: str = "min",
) -> Graph:
    """Build a graph from parallel source/destination (and weight) arrays.

    Parameters
    ----------
    sources, destinations:
        Array-likes of vertex ids, equal length.
    weights:
        Optional array-like of edge weights; unweighted graphs get unit
        weights so the traversal API stays uniform.
    n_vertices:
        Vertex count; inferred as ``max(id) + 1`` when omitted.
    directed:
        When ``False``, both arc directions are materialized and duplicate
        arcs merged.
    remove_self_loops, deduplicate, combine:
        Cleaning options; ``combine`` picks how duplicate-edge weights merge
        (default ``"min"``, the safe choice for shortest paths).
    """
    src = np.asarray(sources, dtype=VERTEX_DTYPE).ravel()
    dst = np.asarray(destinations, dtype=VERTEX_DTYPE).ravel()
    if src.shape != dst.shape:
        raise GraphFormatError(
            f"sources and destinations must have equal length, got "
            f"{src.shape[0]} and {dst.shape[0]}"
        )
    weighted = weights is not None
    if weighted:
        vals = np.asarray(weights, dtype=WEIGHT_DTYPE).ravel()
        if vals.shape != src.shape:
            raise GraphFormatError(
                f"weights length {vals.shape[0]} != edge count {src.shape[0]}"
            )
    else:
        vals = np.ones(src.shape[0], dtype=WEIGHT_DTYPE)
    if n_vertices is None:
        n_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    coo = COOMatrix(n_vertices, n_vertices, src, dst, vals)
    return _finalize(
        coo,
        directed=directed,
        weighted=weighted,
        remove_self_loops=remove_self_loops,
        deduplicate=deduplicate,
        combine=combine,
    )


def without_edges(
    graph: Graph, edges: Iterable[Sequence]
) -> Graph:
    """A new graph with the listed ``(src, dst)`` edges removed.

    The immutable-world counterpart of
    :meth:`~repro.dynamic.dynamic_graph.DynamicGraph.remove_edges`: a
    full rebuild, O(V + E), for callers that want a one-shot derived
    graph rather than a mutation stream.  All arcs matching a listed
    pair are dropped (both directions on undirected graphs); removing a
    pair with no matching edge raises :class:`GraphFormatError`.
    """
    coo = graph.coo()
    props = graph.properties
    keep = np.ones(coo.rows.shape[0], dtype=bool)
    for edge in edges:
        s, d = int(edge[0]), int(edge[1])
        hit = (coo.rows == s) & (coo.cols == d)
        if not props.directed:
            hit |= (coo.rows == d) & (coo.cols == s)
        hit &= keep
        if not hit.any():
            raise GraphFormatError(
                f"cannot remove edge ({s}, {d}): no such edge"
            )
        keep &= ~hit
    return from_edge_array(
        coo.rows[keep],
        coo.cols[keep],
        coo.vals[keep] if props.weighted else None,
        n_vertices=graph.n_vertices,
        directed=props.directed,
    )


def as_undirected_simple(graph: Graph) -> Graph:
    """The simple undirected view of a graph: symmetrized, self-loop-free,
    deduplicated (parallel edges combined by min weight).

    Algorithms with undirected semantics (coloring, MIS, truss) must see
    the edge ``(u, v)`` from both endpoints even when the input stores
    only one arc; this is the canonical way to get that view.  Returns
    the input unchanged when it is already simple and undirected.
    """
    props = graph.properties
    if not props.directed and not props.has_self_loops:
        return graph
    coo = graph.coo()
    return from_edge_array(
        coo.rows,
        coo.cols,
        coo.vals if props.weighted else None,
        n_vertices=graph.n_vertices,
        directed=False,
        remove_self_loops=True,
        deduplicate=True,
    )


def from_edge_list(
    edges: Iterable[Sequence],
    *,
    n_vertices: Optional[int] = None,
    directed: bool = True,
    **kwargs,
) -> Graph:
    """Build a graph from an iterable of ``(src, dst)`` or ``(src, dst, w)``.

    Tuples of both arities may be mixed; 2-tuples get unit weight, and the
    graph is flagged weighted only when at least one 3-tuple appears.
    """
    srcs, dsts, wts = [], [], []
    any_weighted = False
    for edge in edges:
        if len(edge) == 2:
            s, d = edge
            w = 1.0
        elif len(edge) == 3:
            s, d, w = edge
            any_weighted = True
        else:
            raise GraphFormatError(
                f"edges must be (src, dst) or (src, dst, weight); got "
                f"length-{len(edge)} entry"
            )
        srcs.append(s)
        dsts.append(d)
        wts.append(w)
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(wts, dtype=WEIGHT_DTYPE) if any_weighted else None,
        n_vertices=n_vertices,
        directed=directed,
        **kwargs,
    )


def from_csr_arrays(
    row_offsets,
    column_indices,
    values=None,
    *,
    n_vertices: Optional[int] = None,
    directed: bool = True,
) -> Graph:
    """Wrap pre-built CSR arrays directly (zero-copy where dtypes match)."""
    ro = np.asarray(row_offsets)
    if n_vertices is None:
        n_vertices = ro.shape[0] - 1
    ci = np.asarray(column_indices)
    weighted = values is not None
    vals = (
        np.asarray(values)
        if weighted
        else np.ones(ci.shape[0], dtype=WEIGHT_DTYPE)
    )
    csr = CSRMatrix(n_vertices, n_vertices, ro, ci, vals)
    props = GraphProperties(directed=directed, weighted=weighted)
    return Graph({"csr": csr}, props)


def from_scipy_sparse(matrix, *, directed: bool = True) -> Graph:
    """Build from any :mod:`scipy.sparse` matrix (square required)."""
    import scipy.sparse as sp

    if matrix.shape[0] != matrix.shape[1]:
        raise GraphFormatError(
            f"adjacency matrix must be square, got shape {matrix.shape}"
        )
    csr = sp.csr_matrix(matrix)
    csr.sum_duplicates()
    return from_csr_arrays(
        csr.indptr.astype(np.int64),
        csr.indices.astype(VERTEX_DTYPE),
        csr.data.astype(WEIGHT_DTYPE),
        directed=directed,
    )


def from_networkx(nx_graph, *, weight_attr: str = "weight") -> Graph:
    """Build from a :mod:`networkx` graph.

    Nodes are relabeled to ``0..n-1`` in ``nx_graph.nodes`` order;
    undirected inputs are symmetrized.  Used mostly by tests to validate
    against networkx reference algorithms.
    """
    import networkx as nx

    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    srcs, dsts, wts = [], [], []
    weighted = False
    for u, v, data in nx_graph.edges(data=True):
        srcs.append(index[u])
        dsts.append(index[v])
        if weight_attr in data:
            weighted = True
            wts.append(float(data[weight_attr]))
        else:
            wts.append(1.0)
    directed = isinstance(nx_graph, (nx.DiGraph, nx.MultiDiGraph))
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(wts, dtype=WEIGHT_DTYPE) if weighted else None,
        n_vertices=len(nodes),
        directed=directed,
    )
