"""Compressed-sparse-column graph representation.

CSC is the *pull*-traversal layout (§III-C): the in-neighborhood of a
vertex is contiguous, so a pull advance iterates each destination's
incoming edges.  Structurally it is the CSR of the transposed graph; we
keep it a distinct type so operator overloads can dispatch on traversal
direction, exactly as the paper stores "the original representation ...
for push traversals and the transposed representation for pull".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.types import EDGE_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE, as_vertex_array


class CSCMatrix:
    """A graph stored as a compressed-sparse-column matrix.

    ``col_offsets`` has length ``n_cols + 1``; ``row_indices[k]`` is the
    *source* vertex of the k-th stored edge when edges are grouped by
    destination.
    """

    __slots__ = ("n_rows", "n_cols", "col_offsets", "row_indices", "values")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        col_offsets: np.ndarray,
        row_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.col_offsets = np.ascontiguousarray(col_offsets, dtype=EDGE_DTYPE)
        self.row_indices = np.ascontiguousarray(row_indices, dtype=VERTEX_DTYPE)
        self.values = np.ascontiguousarray(values, dtype=WEIGHT_DTYPE)
        if self.col_offsets.shape != (self.n_cols + 1,):
            raise GraphFormatError(
                f"col_offsets must have length n_cols + 1 = {self.n_cols + 1}, "
                f"got {self.col_offsets.shape[0]}"
            )
        n_edges = int(self.col_offsets[-1])
        if self.row_indices.shape[0] != n_edges:
            raise GraphFormatError(
                f"row_indices length {self.row_indices.shape[0]} does not match "
                f"col_offsets[-1] = {n_edges}"
            )
        if self.values.shape[0] != n_edges:
            raise GraphFormatError(
                f"values length {self.values.shape[0]} does not match edge "
                f"count {n_edges}"
            )

    # -- scalar native-graph API (pull orientation) ----------------------------

    def get_num_vertices(self) -> int:
        """Number of vertices (columns)."""
        return self.n_cols

    def get_num_edges(self) -> int:
        """Number of stored edges."""
        return int(self.col_offsets[-1])

    def get_in_edges(self, v: int) -> range:
        """Edge ids *into* vertex ``v`` (positions in CSC order)."""
        return range(int(self.col_offsets[v]), int(self.col_offsets[v + 1]))

    def get_source_vertex(self, e: int) -> int:
        """Source vertex of CSC-ordered edge ``e``."""
        return int(self.row_indices[e])

    def get_edge_weight(self, e: int) -> float:
        """Weight of CSC-ordered edge ``e``."""
        return float(self.values[e])

    def get_num_in_neighbors(self, v: int) -> int:
        """In-degree of vertex ``v``."""
        return int(self.col_offsets[v + 1] - self.col_offsets[v])

    def get_in_neighbors(self, v: int) -> np.ndarray:
        """View of the in-neighbor (source) ids of vertex ``v``."""
        return self.row_indices[self.col_offsets[v] : self.col_offsets[v + 1]]

    def get_in_neighbor_weights(self, v: int) -> np.ndarray:
        """View of the in-edge weights of vertex ``v`` (no copy)."""
        return self.values[self.col_offsets[v] : self.col_offsets[v + 1]]

    # -- bulk queries ------------------------------------------------------------

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.diff(self.col_offsets)

    def gather_in_edges(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bulk pull gather: every in-edge of every vertex in ``vertices``.

        Returns ``(sources, destinations, csc_edge_ids, weights)`` where
        destinations are the input vertices repeated per in-neighbor —
        the mirror image of :meth:`CSRMatrix.expand_vertices`.
        """
        vertices = as_vertex_array(vertices)
        starts = self.col_offsets[vertices]
        counts = self.col_offsets[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=EDGE_DTYPE),
                np.empty(0, dtype=WEIGHT_DTYPE),
            )
        cum = np.cumsum(counts)
        base = np.repeat(starts - (cum - counts), counts)
        edge_ids = (np.arange(total, dtype=EDGE_DTYPE) + base).astype(EDGE_DTYPE)
        destinations = np.repeat(vertices, counts)
        return self.row_indices[edge_ids], destinations, edge_ids, self.values[edge_ids]

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csc_matrix`."""
        import scipy.sparse as sp

        return sp.csc_matrix(
            (self.values, self.row_indices, self.col_offsets),
            shape=(self.n_rows, self.n_cols),
        )

    def copy(self) -> "CSCMatrix":
        """Deep copy (independent arrays)."""
        return CSCMatrix(
            self.n_rows,
            self.n_cols,
            self.col_offsets.copy(),
            self.row_indices.copy(),
            self.values.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"CSCMatrix(n_rows={self.n_rows}, n_cols={self.n_cols}, "
            f"n_edges={self.get_num_edges()})"
        )
