"""DIMACS shortest-path challenge format (``.gr`` files).

``p sp <n> <m>`` problem line, ``a <src> <dst> <weight>`` arc lines,
``c`` comments, 1-based vertex ids.  The format the USA road-network
benchmark graphs ship in — our road-like lattice benchmarks mirror it.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GraphIOError
from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.resilience.chaos import io_fault_point
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

PathLike = Union[str, os.PathLike]


def read_dimacs(path: PathLike, *, directed: bool = True) -> Graph:
    """Parse a DIMACS ``.gr`` file into a :class:`Graph`."""
    io_fault_point(f"read_dimacs:{path}")
    n_vertices = None
    n_arcs = None
    srcs: list = []
    dsts: list = []
    wts: list = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            body = line.strip()
            if not body or body.startswith("c"):
                continue
            if body.startswith("p"):
                parts = body.split()
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphIOError(
                        f"{path}:{lineno}: malformed problem line {body!r}"
                    )
                n_vertices = int(parts[2])
                n_arcs = int(parts[3])
            elif body.startswith("a"):
                if n_vertices is None:
                    raise GraphIOError(
                        f"{path}:{lineno}: arc line before problem line"
                    )
                parts = body.split()
                if len(parts) != 4:
                    raise GraphIOError(
                        f"{path}:{lineno}: malformed arc line {body!r}"
                    )
                try:
                    s = int(parts[1]) - 1
                    d = int(parts[2]) - 1
                    w = float(parts[3])
                except ValueError as exc:
                    raise GraphIOError(
                        f"{path}:{lineno}: malformed arc line {body!r} ({exc})"
                    ) from exc
                if not (0 <= s < n_vertices and 0 <= d < n_vertices):
                    raise GraphIOError(
                        f"{path}:{lineno}: arc ({s + 1}, {d + 1}) out of "
                        f"range for {n_vertices} vertices"
                    )
                srcs.append(s)
                dsts.append(d)
                wts.append(w)
            else:
                raise GraphIOError(
                    f"{path}:{lineno}: unrecognized line {body!r}"
                )
    if n_vertices is None:
        raise GraphIOError(f"{path}: no problem line found")
    if n_arcs is not None and len(srcs) != n_arcs:
        raise GraphIOError(
            f"{path}: problem line declares {n_arcs} arcs but found {len(srcs)}"
        )
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(wts, dtype=WEIGHT_DTYPE),
        n_vertices=n_vertices,
        directed=directed,
    )


def write_dimacs(graph: Graph, path: PathLike) -> None:
    """Write the graph in DIMACS ``.gr`` form (1-based, integer-ish weights
    kept as written floats)."""
    coo = graph.coo()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("c written by repro\n")
        fh.write(f"p sp {graph.n_vertices} {coo.get_num_edges()}\n")
        for s, d, w in zip(coo.rows, coo.cols, coo.vals):
            fh.write(f"a {int(s) + 1} {int(d) + 1} {float(w):g}\n")
