"""Whitespace-separated edge-list files (the SNAP dataset format).

Lines are ``src dst [weight]``; ``#`` and ``%`` start comments.  Vertex
ids must be non-negative integers; the vertex count is ``max(id) + 1``
unless given explicitly.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.errors import GraphIOError
from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.resilience.chaos import io_fault_point
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

PathLike = Union[str, os.PathLike]


def read_edgelist(
    path: PathLike,
    *,
    directed: bool = True,
    n_vertices: Optional[int] = None,
    comments: str = "#%",
    **builder_kwargs,
) -> Graph:
    """Parse an edge-list file into a :class:`Graph`.

    Raises :class:`GraphIOError` with the offending line number on any
    malformed line.
    """
    io_fault_point(f"read_edgelist:{path}")
    srcs, dsts, wts = [], [], []
    weighted = False
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            body = line.strip()
            if not body or body[0] in comments:
                continue
            parts = body.split()
            try:
                if len(parts) == 2:
                    s, d = int(parts[0]), int(parts[1])
                    w = 1.0
                elif len(parts) >= 3:
                    s, d, w = int(parts[0]), int(parts[1]), float(parts[2])
                    weighted = True
                else:
                    raise ValueError("expected 'src dst [weight]'")
            except ValueError as exc:
                raise GraphIOError(
                    f"{path}:{lineno}: malformed edge line {body!r} ({exc})"
                ) from exc
            if s < 0 or d < 0:
                raise GraphIOError(
                    f"{path}:{lineno}: vertex ids must be non-negative, got "
                    f"({s}, {d})"
                )
            srcs.append(s)
            dsts.append(d)
            wts.append(w)
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(wts, dtype=WEIGHT_DTYPE) if weighted else None,
        n_vertices=n_vertices,
        directed=directed,
        **builder_kwargs,
    )


def write_edgelist(graph: Graph, path: PathLike, *, write_weights: bool = None) -> None:
    """Write the graph's edges as ``src dst [weight]`` lines.

    ``write_weights`` defaults to the graph's ``weighted`` property.
    Undirected graphs are written with both stored arc directions (a
    round-trip through ``read_edgelist(directed=True)`` reproduces the
    stored structure exactly).
    """
    if write_weights is None:
        write_weights = graph.properties.weighted
    coo = graph.coo()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# repro edge list: {graph.n_vertices} vertices, "
                 f"{coo.get_num_edges()} edges\n")
        if write_weights:
            for s, d, w in zip(coo.rows, coo.cols, coo.vals):
                fh.write(f"{int(s)} {int(d)} {float(w):g}\n")
        else:
            for s, d in zip(coo.rows, coo.cols):
                fh.write(f"{int(s)} {int(d)}\n")
