"""METIS graph file format (``.graph``) — the partitioner-world format.

Header ``<n> <m> [fmt]`` (``m`` = undirected edge count), then line i+1
lists vertex i's neighbors, 1-based; with ``fmt`` containing the edge-
weight flag (001) each neighbor is followed by its weight.  Comments
start with ``%``.  This is the input format of METIS itself — natural to
support given the partitioning pillar — and doubles as a second
adjacency-oriented text format in the I/O suite.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GraphIOError
from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

PathLike = Union[str, os.PathLike]


def read_metis_graph(path: PathLike) -> Graph:
    """Parse a METIS ``.graph`` file into an undirected :class:`Graph`.

    Supports unweighted (``fmt`` absent or ``0``/``000``) and
    edge-weighted (``fmt`` ending in ``1``) files; vertex weights
    (``fmt`` = ``01x``/``1xx``) are rejected explicitly rather than
    misparsed.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = None
        lines = []
        for raw in fh:
            body = raw.strip()
            if not body or body.startswith("%"):
                # Blank adjacency lines matter (isolated vertices), but
                # only after the header.
                if header is not None and not body.startswith("%"):
                    lines.append("")
                continue
            if header is None:
                header = body
            else:
                lines.append(body)
    if header is None:
        raise GraphIOError(f"{path}: empty file")
    parts = header.split()
    if len(parts) < 2:
        raise GraphIOError(f"{path}: malformed header {header!r}")
    n = int(parts[0])
    m = int(parts[1])
    fmt = parts[2] if len(parts) > 2 else "0"
    fmt = fmt.zfill(3)
    if fmt[1] == "1" or fmt[0] == "1":
        raise GraphIOError(
            f"{path}: vertex weights/sizes (fmt={fmt}) are not supported"
        )
    has_edge_weights = fmt[2] == "1"
    if len(lines) < n:
        # Trailing isolated vertices may simply be missing lines.
        lines += [""] * (n - len(lines))

    srcs: list = []
    dsts: list = []
    wts: list = []
    for v in range(n):
        tokens = lines[v].split()
        if has_edge_weights:
            if len(tokens) % 2 != 0:
                raise GraphIOError(
                    f"{path}: vertex {v + 1} has an odd token count with "
                    f"edge weights enabled"
                )
            pairs = zip(tokens[0::2], tokens[1::2])
            for nbr, w in pairs:
                u = int(nbr) - 1
                if not (0 <= u < n):
                    raise GraphIOError(
                        f"{path}: neighbor {nbr} of vertex {v + 1} out of range"
                    )
                srcs.append(v)
                dsts.append(u)
                wts.append(float(w))
        else:
            for nbr in tokens:
                u = int(nbr) - 1
                if not (0 <= u < n):
                    raise GraphIOError(
                        f"{path}: neighbor {nbr} of vertex {v + 1} out of range"
                    )
                srcs.append(v)
                dsts.append(u)
                wts.append(1.0)
    if len(srcs) != 2 * m:
        raise GraphIOError(
            f"{path}: header declares {m} undirected edges "
            f"({2 * m} arcs) but adjacency lists contain {len(srcs)}"
        )
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(wts, dtype=WEIGHT_DTYPE) if has_edge_weights else None,
        n_vertices=n,
        directed=False,
    )


def write_metis_graph(graph: Graph, path: PathLike) -> None:
    """Write an undirected graph in METIS ``.graph`` form.

    Directed inputs are rejected (METIS graphs are undirected by
    definition); weights are written when the graph is weighted.
    """
    if graph.properties.directed:
        raise GraphIOError("METIS .graph files are undirected")
    csr = graph.csr()
    n = graph.n_vertices
    m = graph.n_edges // 2
    weighted = graph.properties.weighted
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("% written by repro\n")
        fh.write(f"{n} {m} {'001' if weighted else '0'}\n")
        for v in range(n):
            nbrs = csr.get_neighbors(v)
            if weighted:
                wts = csr.get_neighbor_weights(v)
                fh.write(
                    " ".join(
                        f"{int(u) + 1} {float(w):g}"
                        for u, w in zip(nbrs, wts)
                    )
                    + "\n"
                )
            else:
                fh.write(" ".join(str(int(u) + 1) for u in nbrs) + "\n")
