"""Graph file I/O: edge lists, Matrix Market, DIMACS, and a binary snapshot.

These cover the interchange formats real graph datasets ship in (SNAP
edge lists, SuiteSparse ``.mtx``, DIMACS shortest-path challenge ``.gr``)
plus a fast ``.npz`` snapshot for benchmark reuse.
"""

from repro.graph.io.edgelist import read_edgelist, write_edgelist
from repro.graph.io.matrix_market import read_matrix_market, write_matrix_market
from repro.graph.io.dimacs import read_dimacs, write_dimacs
from repro.graph.io.binary import load_graph_npz, save_graph_npz
from repro.graph.io.metis_format import read_metis_graph, write_metis_graph

__all__ = [
    "read_metis_graph",
    "write_metis_graph",
    "read_edgelist",
    "write_edgelist",
    "read_matrix_market",
    "write_matrix_market",
    "read_dimacs",
    "write_dimacs",
    "load_graph_npz",
    "save_graph_npz",
]
