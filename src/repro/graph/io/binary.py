"""Fast binary graph snapshots (``.npz``) for benchmark reuse.

Saves the CSR arrays plus properties; loading is a zero-parse
``numpy.load``, so repeated benchmark runs skip generator/parser cost.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GraphIOError
from repro.graph.csr import CSRMatrix
from repro.graph.graph import Graph
from repro.graph.properties import GraphProperties
from repro.resilience.chaos import io_fault_point

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 1


def save_graph_npz(graph: Graph, path: PathLike) -> None:
    """Serialize ``graph``'s CSR view (and properties) to a ``.npz`` file."""
    csr = graph.csr()
    props = graph.properties
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        n_vertices=np.int64(csr.n_rows),
        row_offsets=csr.row_offsets,
        column_indices=csr.column_indices,
        values=csr.values,
        directed=np.bool_(props.directed),
        weighted=np.bool_(props.weighted),
        has_self_loops=np.bool_(props.has_self_loops),
        sorted_neighbors=np.bool_(props.sorted_neighbors),
    )


def load_graph_npz(path: PathLike) -> Graph:
    """Load a graph saved by :func:`save_graph_npz`."""
    io_fault_point(f"load_graph_npz:{path}")
    with np.load(path) as data:
        try:
            version = int(data["format_version"])
            if version != _FORMAT_VERSION:
                raise GraphIOError(
                    f"{path}: unsupported snapshot version {version}"
                )
            n = int(data["n_vertices"])
            csr = CSRMatrix(
                n,
                n,
                data["row_offsets"],
                data["column_indices"],
                data["values"],
            )
            props = GraphProperties(
                directed=bool(data["directed"]),
                weighted=bool(data["weighted"]),
                has_self_loops=bool(data["has_self_loops"]),
                sorted_neighbors=bool(data["sorted_neighbors"]),
            )
        except KeyError as exc:
            raise GraphIOError(f"{path}: missing snapshot field {exc}") from exc
    return Graph({"csr": csr}, props)
