"""Matrix Market (``.mtx``) coordinate files — the SuiteSparse format.

Supports ``matrix coordinate {real,integer,pattern} {general,symmetric}``
headers, 1-based indices, and ``%`` comments.  Symmetric matrices are
expanded to both arc directions (off-diagonal entries), matching how
graph frameworks ingest SuiteSparse graphs.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GraphIOError
from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.resilience.chaos import io_fault_point
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

PathLike = Union[str, os.PathLike]


def read_matrix_market(path: PathLike, *, directed: bool = None) -> Graph:
    """Parse a Matrix Market coordinate file into a :class:`Graph`.

    ``directed`` defaults to ``False`` for ``symmetric`` files and
    ``True`` for ``general`` ones.
    """
    io_fault_point(f"read_matrix_market:{path}")
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphIOError(f"{path}: missing %%MatrixMarket header")
        tokens = header.strip().split()
        if len(tokens) < 5:
            raise GraphIOError(f"{path}: malformed header {header!r}")
        _, obj, fmt, field, symmetry = tokens[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise GraphIOError(
                f"{path}: only 'matrix coordinate' files are supported, got "
                f"'{obj} {fmt}'"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("real", "integer", "pattern"):
            raise GraphIOError(f"{path}: unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphIOError(f"{path}: unsupported symmetry {symmetry!r}")

        # Skip comments, read the size line.
        line = fh.readline()
        while line and line.lstrip().startswith("%"):
            line = fh.readline()
        try:
            n_rows, n_cols, n_entries = (int(x) for x in line.split())
        except ValueError as exc:
            raise GraphIOError(f"{path}: malformed size line {line!r}") from exc
        if n_rows != n_cols:
            raise GraphIOError(
                f"{path}: adjacency matrix must be square, got "
                f"{n_rows}x{n_cols}"
            )

        srcs = np.empty(n_entries, dtype=VERTEX_DTYPE)
        dsts = np.empty(n_entries, dtype=VERTEX_DTYPE)
        vals = np.ones(n_entries, dtype=WEIGHT_DTYPE)
        filled = 0
        for lineno, line in enumerate(fh, start=1):
            body = line.strip()
            if not body or body.startswith("%"):
                continue
            if filled >= n_entries:
                raise GraphIOError(
                    f"{path}: more entries than the declared {n_entries}"
                )
            parts = body.split()
            try:
                r = int(parts[0]) - 1
                c = int(parts[1]) - 1
                v = float(parts[2]) if (field != "pattern" and len(parts) > 2) else 1.0
            except (ValueError, IndexError) as exc:
                raise GraphIOError(
                    f"{path}: malformed entry {body!r} ({exc})"
                ) from exc
            srcs[filled] = r
            dsts[filled] = c
            vals[filled] = v
            filled += 1
        if filled != n_entries:
            raise GraphIOError(
                f"{path}: declared {n_entries} entries but found {filled}"
            )

    if directed is None:
        directed = symmetry == "general"
    if symmetry == "symmetric":
        # File stores the lower triangle only; the undirected builder path
        # mirrors every edge, so pass it straight through.
        directed = False
    return from_edge_array(
        srcs,
        dsts,
        vals if field != "pattern" else None,
        n_vertices=n_rows,
        directed=directed,
        deduplicate=True,
    )


def write_matrix_market(graph: Graph, path: PathLike) -> None:
    """Write the graph as ``matrix coordinate real general`` (1-based)."""
    coo = graph.coo()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write("% written by repro\n")
        fh.write(f"{graph.n_vertices} {graph.n_vertices} {coo.get_num_edges()}\n")
        for s, d, w in zip(coo.rows, coo.cols, coo.vals):
            fh.write(f"{int(s) + 1} {int(d) + 1} {float(w):g}\n")
