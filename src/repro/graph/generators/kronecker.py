"""Stochastic Kronecker graphs (Leskovec et al.).

R-MAT is the special case of a 2x2 initiator; this generator accepts an
arbitrary square initiator matrix of probabilities, which lets benchmarks
dial community structure and degree skew independently.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int


def kronecker(
    initiator,
    power: int,
    n_edges: int,
    *,
    directed: bool = True,
    weighted: bool = False,
    weight_range: tuple = (1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """Sample ``n_edges`` edges from the Kronecker power of ``initiator``.

    Parameters
    ----------
    initiator:
        k×k array of non-negative cell probabilities (normalized
        internally, so relative magnitudes are what matter).
    power:
        Number of Kronecker multiplications; the graph has ``k**power``
        vertices.
    n_edges:
        Edges to sample (before dedup/self-loop removal).

    Each edge descends ``power`` levels; at every level a cell of the
    initiator is drawn for all edges at once (vectorized categorical
    draw), contributing one digit in base ``k`` to the row and column ids.
    """
    init = np.asarray(initiator, dtype=np.float64)
    if init.ndim != 2 or init.shape[0] != init.shape[1]:
        raise ValueError(f"initiator must be square, got shape {init.shape}")
    if np.any(init < 0) or init.sum() <= 0:
        raise ValueError("initiator cells must be non-negative with positive sum")
    power = check_nonnegative_int(power, "power")
    n_edges = check_nonnegative_int(n_edges, "n_edges")
    k = init.shape[0]
    probs = (init / init.sum()).ravel()
    cum = np.cumsum(probs)
    rng = resolve_rng(seed)

    n = k**power
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    for _level in range(power):
        u = rng.random(n_edges)
        cell = np.searchsorted(cum, u, side="right")
        cell = np.minimum(cell, k * k - 1)
        rows = rows * k + cell // k
        cols = cols * k + cell % k
    src = rows.astype(VERTEX_DTYPE)
    dst = cols.astype(VERTEX_DTYPE)
    weights = None
    if weighted:
        weights = rng.uniform(*weight_range, size=n_edges).astype(WEIGHT_DTYPE)
    return from_edge_array(
        src,
        dst,
        weights,
        n_vertices=n,
        directed=directed,
        remove_self_loops=True,
        deduplicate=True,
        combine="min",
    )
