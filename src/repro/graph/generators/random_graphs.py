"""Erdős–Rényi random graphs: uniform-degree control workloads."""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int, check_probability


def erdos_renyi_gnp(
    n: int,
    p: float,
    *,
    directed: bool = True,
    weighted: bool = False,
    weight_range: tuple = (1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """G(n, p): each ordered pair is an edge independently with probability ``p``.

    Sampling is done by drawing the edge *count* from the binomial and then
    sampling that many distinct pairs — O(E) memory rather than the O(n^2)
    dense Bernoulli matrix, so large sparse instances are cheap.
    Self-loops are never produced.
    """
    n = check_nonnegative_int(n, "n")
    p = check_probability(p, "p")
    rng = resolve_rng(seed)
    n_pairs = n * (n - 1) if directed else n * (n - 1) // 2
    if n_pairs == 0 or p == 0.0:
        src = np.empty(0, dtype=VERTEX_DTYPE)
        dst = np.empty(0, dtype=VERTEX_DTYPE)
    else:
        m = int(rng.binomial(n_pairs, p))
        # Sample m distinct pair codes without replacement.  For the sparse
        # regime we rejection-sample codes (expected < 2 rounds); for dense
        # p a full permutation is affordable.
        if m > n_pairs // 2:
            codes = rng.permutation(n_pairs)[:m]
        else:
            codes = np.empty(0, dtype=np.int64)
            need = m
            seen: set = set()
            while need > 0:
                draw = rng.integers(0, n_pairs, size=int(need * 1.2) + 8)
                for c in draw:
                    ci = int(c)
                    if ci not in seen:
                        seen.add(ci)
                        if len(seen) == m:
                            break
                need = m - len(seen)
            codes = np.fromiter(seen, dtype=np.int64, count=m)
        if directed:
            # Code -> ordered pair (i, j), j != i: i = code // (n-1),
            # j skips the diagonal.
            i = codes // (n - 1)
            j = codes % (n - 1)
            j = j + (j >= i)
        else:
            # Code -> unordered pair via triangular-number inversion.
            i = (np.floor((np.sqrt(8.0 * codes + 1) + 1) / 2)).astype(np.int64)
            j = codes - i * (i - 1) // 2
            # Numerical-edge correction for the float sqrt.
            over = j >= i
            while np.any(over):
                i[over] += 1
                j = codes - i * (i - 1) // 2
                under = j < 0
                i[under] -= 1
                j = codes - i * (i - 1) // 2
                over = j >= i
        src = i.astype(VERTEX_DTYPE)
        dst = j.astype(VERTEX_DTYPE)
    weights = None
    if weighted:
        weights = rng.uniform(*weight_range, size=src.shape[0]).astype(WEIGHT_DTYPE)
    return from_edge_array(
        src, dst, weights, n_vertices=n, directed=directed, deduplicate=True
    )


def erdos_renyi_gnm(
    n: int,
    m: int,
    *,
    directed: bool = True,
    weighted: bool = False,
    weight_range: tuple = (1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """G(n, m): exactly ``m`` distinct edges drawn uniformly at random.

    The fixed edge count makes throughput benchmarks comparable across
    seeds.  Self-loops are excluded; ``m`` may not exceed the number of
    available pairs.
    """
    n = check_nonnegative_int(n, "n")
    m = check_nonnegative_int(m, "m")
    n_pairs = n * (n - 1) if directed else n * (n - 1) // 2
    if m > n_pairs:
        raise ValueError(f"m={m} exceeds available pairs {n_pairs}")
    rng = resolve_rng(seed)
    if m == 0:
        src = np.empty(0, dtype=VERTEX_DTYPE)
        dst = np.empty(0, dtype=VERTEX_DTYPE)
    else:
        codes = rng.choice(n_pairs, size=m, replace=False)
        if directed:
            i = codes // (n - 1)
            j = codes % (n - 1)
            j = j + (j >= i)
        else:
            i = (np.floor((np.sqrt(8.0 * codes + 1) + 1) / 2)).astype(np.int64)
            j = codes - i * (i - 1) // 2
            over = j >= i
            while np.any(over):
                i[over] += 1
                j = codes - i * (i - 1) // 2
                under = j < 0
                i[under] -= 1
                j = codes - i * (i - 1) // 2
                over = j >= i
        src = i.astype(VERTEX_DTYPE)
        dst = j.astype(VERTEX_DTYPE)
    weights = None
    if weighted:
        weights = rng.uniform(*weight_range, size=src.shape[0]).astype(WEIGHT_DTYPE)
    return from_edge_array(src, dst, weights, n_vertices=n, directed=directed)
