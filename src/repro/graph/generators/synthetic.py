"""Deterministic pathological shapes for tests and corner-case benches.

Stars (maximal degree skew in one vertex), chains (maximal diameter),
cliques (maximal density), balanced binary trees (textbook traversal
shapes), and random bipartite graphs (two-phase frontiers).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int, check_probability


def star(n_leaves: int, *, directed: bool = False) -> Graph:
    """A star: hub vertex 0 connected to ``n_leaves`` leaves.

    The single-vertex-owns-all-edges shape; the worst case for
    vertex-balanced load balancing (bench F2).
    """
    n_leaves = check_nonnegative_int(n_leaves, "n_leaves")
    leaves = np.arange(1, n_leaves + 1, dtype=VERTEX_DTYPE)
    hubs = np.zeros(n_leaves, dtype=VERTEX_DTYPE)
    return from_edge_array(
        hubs, leaves, None, n_vertices=n_leaves + 1, directed=directed
    )


def chain(n: int, *, directed: bool = False, weighted: bool = False) -> Graph:
    """A path 0 – 1 – ... – (n-1): maximal diameter, one-vertex frontiers.

    With ``weighted`` each edge ``i -> i+1`` carries weight ``i + 1``,
    giving distances that are easy to assert in closed form.
    """
    n = check_nonnegative_int(n, "n")
    if n < 2:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return from_edge_array(empty, empty, None, n_vertices=n, directed=directed)
    src = np.arange(n - 1, dtype=VERTEX_DTYPE)
    dst = src + 1
    weights = (
        np.arange(1, n, dtype=WEIGHT_DTYPE) if weighted else None
    )
    return from_edge_array(src, dst, weights, n_vertices=n, directed=directed)


def complete(n: int, *, directed: bool = False) -> Graph:
    """The complete graph K_n (no self-loops): single-superstep traversals."""
    n = check_nonnegative_int(n, "n")
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = i != j
    return from_edge_array(
        i[mask].astype(VERTEX_DTYPE),
        j[mask].astype(VERTEX_DTYPE),
        None,
        n_vertices=n,
        directed=True if directed else False,
        deduplicate=not directed,
    )


def binary_tree(depth: int, *, directed: bool = False) -> Graph:
    """A complete binary tree of the given depth (root = vertex 0).

    ``depth=0`` is a single vertex; depth ``d`` has ``2**(d+1) - 1``
    vertices.  BFS from the root visits exactly one level per superstep,
    which tests assert.
    """
    depth = check_nonnegative_int(depth, "depth")
    n = (1 << (depth + 1)) - 1
    if n == 1:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return from_edge_array(empty, empty, None, n_vertices=1, directed=directed)
    children = np.arange(1, n, dtype=VERTEX_DTYPE)
    parents = ((children - 1) // 2).astype(VERTEX_DTYPE)
    return from_edge_array(parents, children, None, n_vertices=n, directed=directed)


def bipartite_random(
    n_left: int,
    n_right: int,
    p: float,
    *,
    directed: bool = False,
    seed: SeedLike = None,
) -> Graph:
    """Random bipartite graph: left ids ``0..n_left-1``, right ids
    ``n_left..n_left+n_right-1``, each cross pair an edge w.p. ``p``."""
    n_left = check_nonnegative_int(n_left, "n_left")
    n_right = check_nonnegative_int(n_right, "n_right")
    p = check_probability(p, "p")
    rng = resolve_rng(seed)
    mask = rng.random((n_left, n_right)) < p
    li, ri = np.nonzero(mask)
    return from_edge_array(
        li.astype(VERTEX_DTYPE),
        (ri + n_left).astype(VERTEX_DTYPE),
        None,
        n_vertices=n_left + n_right,
        directed=directed,
    )
