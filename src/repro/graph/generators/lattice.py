"""2-D lattice graphs: the road-network-like, high-diameter workload.

Grids have uniform degree and diameter Θ(rows + cols), which maximizes
superstep count — the regime where the paper's asynchronous timing model
pays for itself (pillar benchmark P1 contrasts grids against RMAT).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int


def _grid_edges(rows: int, cols: int, wrap: bool):
    """Horizontal and vertical neighbor pairs of a rows×cols grid.

    Vertex ``(r, c)`` has id ``r * cols + c``.  With ``wrap`` the lattice
    closes into a torus.
    """
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    srcs = []
    dsts = []
    # horizontal edges
    if cols > 1:
        srcs.append(ids[:, :-1].ravel())
        dsts.append(ids[:, 1:].ravel())
    # vertical edges
    if rows > 1:
        srcs.append(ids[:-1, :].ravel())
        dsts.append(ids[1:, :].ravel())
    if wrap:
        if cols > 2:
            srcs.append(ids[:, -1].ravel())
            dsts.append(ids[:, 0].ravel())
        if rows > 2:
            srcs.append(ids[-1, :].ravel())
            dsts.append(ids[0, :].ravel())
    if not srcs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(srcs), np.concatenate(dsts)


def grid_2d(
    rows: int,
    cols: int,
    *,
    weighted: bool = False,
    weight_range: tuple = (1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """Undirected rows×cols grid (4-neighborhood, open boundary)."""
    rows = check_nonnegative_int(rows, "rows")
    cols = check_nonnegative_int(cols, "cols")
    src, dst = _grid_edges(rows, cols, wrap=False)
    weights = None
    if weighted:
        rng = resolve_rng(seed)
        weights = rng.uniform(*weight_range, size=src.shape[0]).astype(WEIGHT_DTYPE)
    return from_edge_array(
        src.astype(VERTEX_DTYPE),
        dst.astype(VERTEX_DTYPE),
        weights,
        n_vertices=rows * cols,
        directed=False,
    )


def torus_2d(
    rows: int,
    cols: int,
    *,
    weighted: bool = False,
    weight_range: tuple = (1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """Undirected rows×cols torus (grid with wraparound edges)."""
    rows = check_nonnegative_int(rows, "rows")
    cols = check_nonnegative_int(cols, "cols")
    src, dst = _grid_edges(rows, cols, wrap=True)
    weights = None
    if weighted:
        rng = resolve_rng(seed)
        weights = rng.uniform(*weight_range, size=src.shape[0]).astype(WEIGHT_DTYPE)
    return from_edge_array(
        src.astype(VERTEX_DTYPE),
        dst.astype(VERTEX_DTYPE),
        weights,
        n_vertices=rows * cols,
        directed=False,
    )
