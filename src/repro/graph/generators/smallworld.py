"""Watts–Strogatz small-world graphs: ring lattices with rewired shortcuts.

Small-world instances have near-uniform degree but small diameter — the
regime where BSP supersteps are few and wide, a useful contrast to the
deep-and-narrow lattice workloads in the timing-pillar benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int, check_probability


def watts_strogatz(
    n: int,
    k: int,
    p: float,
    *,
    weighted: bool = False,
    weight_range: tuple = (1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """Watts–Strogatz graph: ring of ``n`` vertices, each joined to its
    ``k`` nearest neighbors, with each edge rewired to a random endpoint
    with probability ``p``.  Always undirected.

    ``k`` must be even and less than ``n``.  The construction is
    vectorized: all ring edges are laid out at once, a Bernoulli mask
    selects rewires, and collisions (duplicate or self edges created by
    rewiring) are cleaned by the builder's dedup pass — matching the
    standard algorithm's semantics of "skip rewires that would duplicate".
    """
    n = check_nonnegative_int(n, "n")
    k = check_nonnegative_int(k, "k")
    p = check_probability(p, "p")
    if k % 2 != 0:
        raise ValueError(f"k must be even, got {k}")
    if n > 0 and k >= n:
        raise ValueError(f"k must be < n, got k={k}, n={n}")
    rng = resolve_rng(seed)
    if n == 0 or k == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return from_edge_array(empty, empty, None, n_vertices=n, directed=False)
    # Ring edges: vertex v connects to v+1 .. v+k/2 (mod n).
    v = np.arange(n, dtype=np.int64)
    srcs = np.repeat(v, k // 2)
    offsets = np.tile(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    dsts = (srcs + offsets) % n
    # Rewire: with probability p replace the destination with a uniform
    # random vertex that is not the source.
    rewire = rng.random(srcs.shape[0]) < p
    n_rewire = int(rewire.sum())
    if n_rewire:
        new_dst = rng.integers(0, n - 1, size=n_rewire)
        new_dst = new_dst + (new_dst >= srcs[rewire])  # skip self-loop
        dsts = dsts.copy()
        dsts[rewire] = new_dst
    weights = None
    if weighted:
        weights = rng.uniform(*weight_range, size=srcs.shape[0]).astype(WEIGHT_DTYPE)
    return from_edge_array(
        srcs.astype(VERTEX_DTYPE),
        dsts.astype(VERTEX_DTYPE),
        weights,
        n_vertices=n,
        directed=False,
        remove_self_loops=True,
        deduplicate=True,
    )
