"""Stochastic block model (planted-partition) graphs.

Vertices are grouped into blocks; an edge appears with probability
``p_in`` inside a block and ``p_out`` across blocks.  The canonical
ground-truth workload for community detection (LPA tests recover the
planted blocks) and a tunable-modularity workload for the partitioning
benches — at ``p_in >> p_out`` the planted blocks are near-optimal
partitions, so partitioner quality can be scored against a known
answer.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_probability


def stochastic_block_model(
    block_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    *,
    weighted: bool = False,
    weight_range: Tuple[float, float] = (1.0, 10.0),
    seed: SeedLike = None,
) -> Tuple[Graph, np.ndarray]:
    """Sample an undirected SBM graph.

    Returns ``(graph, block_of)`` where ``block_of[v]`` is the planted
    block id — the ground truth community tests score against.

    Sampling is per block pair: the edge count is binomial over the pair
    count, then that many distinct pairs are drawn — O(E) like the G(n,p)
    sampler, not O(n²).
    """
    block_sizes = [int(s) for s in block_sizes]
    if any(s < 0 for s in block_sizes):
        raise ValueError("block sizes must be non-negative")
    p_in = check_probability(p_in, "p_in")
    p_out = check_probability(p_out, "p_out")
    rng = resolve_rng(seed)
    n = sum(block_sizes)
    block_of = np.repeat(
        np.arange(len(block_sizes), dtype=np.int64), block_sizes
    )
    offsets = np.concatenate(([0], np.cumsum(block_sizes))).astype(np.int64)

    srcs: list = []
    dsts: list = []

    def sample_pairs(n_pairs: int, p: float, decode) -> None:
        if n_pairs <= 0 or p <= 0:
            return
        m = int(rng.binomial(n_pairs, p))
        if m == 0:
            return
        if m > n_pairs // 2:
            codes = rng.permutation(n_pairs)[:m]
        else:
            codes = np.unique(rng.integers(0, n_pairs, size=2 * m + 8))[:m]
            while codes.shape[0] < m:
                extra = rng.integers(0, n_pairs, size=m)
                codes = np.unique(np.concatenate([codes, extra]))[:m]
        u, v = decode(codes)
        srcs.append(u)
        dsts.append(v)

    n_blocks = len(block_sizes)
    for b in range(n_blocks):
        size = block_sizes[b]
        base = int(offsets[b])
        # Intra-block pairs: triangular code -> (i, j), i > j.
        sample_pairs(
            size * (size - 1) // 2,
            p_in,
            lambda codes, base=base: _decode_triangular(codes, base),
        )
        for c in range(b + 1, n_blocks):
            size_c = block_sizes[c]
            base_c = int(offsets[c])
            # Cross pairs: rectangular code -> (i in b, j in c).
            sample_pairs(
                size * size_c,
                p_out,
                lambda codes, base=base, base_c=base_c, size_c=size_c: (
                    base + codes // size_c,
                    base_c + codes % size_c,
                ),
            )

    if srcs:
        u = np.concatenate(srcs).astype(VERTEX_DTYPE)
        v = np.concatenate(dsts).astype(VERTEX_DTYPE)
    else:
        u = np.empty(0, dtype=VERTEX_DTYPE)
        v = np.empty(0, dtype=VERTEX_DTYPE)
    weights = None
    if weighted:
        weights = rng.uniform(*weight_range, size=u.shape[0]).astype(
            WEIGHT_DTYPE
        )
    graph = from_edge_array(u, v, weights, n_vertices=n, directed=False)
    return graph, block_of


def _decode_triangular(codes: np.ndarray, base: int):
    """Triangular code -> (i, j) with i > j, offset by ``base``."""
    i = (np.floor((np.sqrt(8.0 * codes + 1) + 1) / 2)).astype(np.int64)
    j = codes - i * (i - 1) // 2
    over = j >= i
    while np.any(over):
        i[over] += 1
        j = codes - i * (i - 1) // 2
        under = j < 0
        i[under] -= 1
        j = codes - i * (i - 1) // 2
        over = j >= i
    return base + i, base + j
