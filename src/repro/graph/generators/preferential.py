"""Barabási–Albert preferential-attachment graphs.

A second scale-free family (alongside R-MAT) whose hub structure is
grown rather than recursive — used to check that load-balancing results
generalize beyond the R-MAT generator.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int


def barabasi_albert(
    n: int,
    m: int,
    *,
    weighted: bool = False,
    weight_range: tuple = (1.0, 10.0),
    seed: SeedLike = None,
) -> Graph:
    """Grow an undirected BA graph: each new vertex attaches ``m`` edges
    to existing vertices with probability proportional to their degree.

    Uses the standard repeated-endpoints trick: a flat array of all edge
    endpoints so far *is* the degree distribution, so preferential
    attachment is uniform sampling from it.  O(n·m) total.
    """
    n = check_nonnegative_int(n, "n")
    m = check_nonnegative_int(m, "m")
    if n > 0 and (m < 1 or m >= n):
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = resolve_rng(seed)
    if n == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return from_edge_array(empty, empty, None, n_vertices=0, directed=False)

    srcs: list = []
    dsts: list = []
    # `endpoints` holds every endpoint of every edge added so far; sampling
    # uniformly from it implements degree-proportional choice.
    endpoints: list = list(range(m))  # seed: first m vertices, degree-1 each
    for new in range(m, n):
        targets: set = set()
        while len(targets) < m:
            # Mix uniform choice over existing vertices (for the first
            # rounds when `endpoints` is tiny) with preferential choice.
            if endpoints:
                t = endpoints[int(rng.integers(0, len(endpoints)))]
            else:
                t = int(rng.integers(0, new))
            if t != new:
                targets.add(int(t))
        for t in targets:
            srcs.append(new)
            dsts.append(t)
            endpoints.append(new)
            endpoints.append(t)
    src = np.asarray(srcs, dtype=VERTEX_DTYPE)
    dst = np.asarray(dsts, dtype=VERTEX_DTYPE)
    weights = None
    if weighted:
        weights = rng.uniform(*weight_range, size=src.shape[0]).astype(WEIGHT_DTYPE)
    return from_edge_array(
        src, dst, weights, n_vertices=n, directed=False, deduplicate=True
    )
