"""Seeded synthetic graph generators.

These stand in for the hardware-testbed datasets a GPU evaluation would
load (DESIGN.md substitution table): scale-free R-MAT/Kronecker graphs
stress load balancing and push/pull direction choice, high-diameter
lattices stress iteration counts (road networks), Erdős–Rényi gives
uniform-degree controls, and the pathological shapes (star, chain,
complete) pin down corner cases in tests.

Every generator takes a ``seed`` and is deterministic given one.
"""

from repro.graph.generators.random_graphs import erdos_renyi_gnp, erdos_renyi_gnm
from repro.graph.generators.rmat import rmat
from repro.graph.generators.kronecker import kronecker
from repro.graph.generators.smallworld import watts_strogatz
from repro.graph.generators.preferential import barabasi_albert
from repro.graph.generators.lattice import grid_2d, torus_2d
from repro.graph.generators.synthetic import (
    star,
    chain,
    complete,
    binary_tree,
    bipartite_random,
)
from repro.graph.generators.sbm import stochastic_block_model
from repro.graph.generators.weights import with_random_weights

__all__ = [
    "erdos_renyi_gnp",
    "erdos_renyi_gnm",
    "rmat",
    "kronecker",
    "watts_strogatz",
    "barabasi_albert",
    "grid_2d",
    "torus_2d",
    "star",
    "chain",
    "complete",
    "binary_tree",
    "bipartite_random",
    "stochastic_block_model",
    "with_random_weights",
]
