"""Attach random edge weights to an existing graph."""

from __future__ import annotations

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, resolve_rng
from repro.types import WEIGHT_DTYPE


def with_random_weights(
    graph: Graph,
    *,
    low: float = 1.0,
    high: float = 10.0,
    seed: SeedLike = None,
    symmetric: bool = None,
) -> Graph:
    """Return a copy of ``graph`` with uniform random weights in ``[low, high)``.

    ``symmetric`` (default: ``not graph.properties.directed``) forces
    ``w(u, v) == w(v, u)``, which undirected shortest-path semantics need.
    Symmetry is imposed by drawing a weight per unordered pair
    ``(min(u,v), max(u,v))`` with a pair-keyed hash of one shared random
    table, so both arcs look up the same value.
    """
    import numpy as np

    if high < low:
        raise ValueError(f"need low <= high, got low={low}, high={high}")
    rng = resolve_rng(seed)
    coo = graph.coo()
    if symmetric is None:
        symmetric = not graph.properties.directed
    if symmetric:
        lo = np.minimum(coo.rows, coo.cols).astype(np.int64)
        hi = np.maximum(coo.rows, coo.cols).astype(np.int64)
        keys = lo * graph.n_vertices + hi
        uniq, inverse = np.unique(keys, return_inverse=True)
        pair_weights = rng.uniform(low, high, size=uniq.shape[0]).astype(WEIGHT_DTYPE)
        weights = pair_weights[inverse]
    else:
        weights = rng.uniform(low, high, size=coo.rows.shape[0]).astype(WEIGHT_DTYPE)
    built = from_edge_array(
        coo.rows,
        coo.cols,
        weights,
        n_vertices=graph.n_vertices,
        directed=True,  # both directions already materialized in the COO
    )
    built.properties = graph.properties.with_(weighted=True)
    return built
