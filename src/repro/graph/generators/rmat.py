"""R-MAT recursive-matrix graphs (Chakrabarti et al.): the scale-free,
power-law-degree workload class GPU graph frameworks are benchmarked on.

Skewed degree distributions are exactly what stresses the load-balancing
and push-vs-pull axes of the abstraction, so R-MAT instances drive the
pillar benchmarks P1/P3/F2.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    directed: bool = True,
    weighted: bool = False,
    weight_range: tuple = (1.0, 10.0),
    deduplicate: bool = True,
    seed: SeedLike = None,
) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters follow the Graph500 convention: ``(a, b, c, d)`` quadrant
    probabilities with ``d = 1 - a - b - c`` (defaults are the Graph500
    values), ``edge_factor`` edges per vertex before deduplication.

    The sampler is fully vectorized: for each of the ``scale`` bit levels
    it draws the quadrant for *all* edges at once and shifts the bit into
    the (row, col) accumulators — O(scale · E) work with no Python-level
    per-edge loop.
    """
    scale = check_nonnegative_int(scale, "scale")
    edge_factor = check_nonnegative_int(edge_factor, "edge_factor")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ValueError(
            f"quadrant probabilities must be in [0,1] and sum to 1; got "
            f"a={a}, b={b}, c={c}, d={d:.4f}"
        )
    rng = resolve_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    # Quadrant thresholds for a single uniform draw per (edge, level):
    #   [0, a)        -> (0, 0)
    #   [a, a+b)      -> (0, 1)
    #   [a+b, a+b+c)  -> (1, 0)
    #   [a+b+c, 1)    -> (1, 1)
    t1, t2, t3 = a, a + b, a + b + c
    for _level in range(scale):
        u = rng.random(m)
        row_bit = (u >= t2).astype(np.int64)
        col_bit = ((u >= t1) & (u < t2) | (u >= t3)).astype(np.int64)
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    src = rows.astype(VERTEX_DTYPE)
    dst = cols.astype(VERTEX_DTYPE)
    weights = None
    if weighted:
        weights = rng.uniform(*weight_range, size=m).astype(WEIGHT_DTYPE)
    return from_edge_array(
        src,
        dst,
        weights,
        n_vertices=n,
        directed=directed,
        remove_self_loops=True,
        deduplicate=deduplicate,
        combine="min",
    )
