"""Coordinate-list (edge list) graph representation.

COO is the ingestion and edge-centric format: three parallel arrays
``(rows, cols, vals)``.  Builders normalize input through COO, and the
edge-frontier path uses it for edge-centric programs (§III-C component 2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.types import EDGE_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE


class COOMatrix:
    """A graph stored as coordinate (edge-list) triples."""

    __slots__ = ("n_rows", "n_cols", "rows", "cols", "vals")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = np.ascontiguousarray(rows, dtype=VERTEX_DTYPE)
        self.cols = np.ascontiguousarray(cols, dtype=VERTEX_DTYPE)
        self.vals = np.ascontiguousarray(vals, dtype=WEIGHT_DTYPE)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise GraphFormatError(
                f"COO arrays must have equal lengths, got rows={self.rows.shape}, "
                f"cols={self.cols.shape}, vals={self.vals.shape}"
            )
        if self.rows.size:
            if int(self.rows.min()) < 0 or int(self.cols.min()) < 0:
                raise GraphFormatError("COO indices must be non-negative")
            if int(self.rows.max()) >= self.n_rows:
                raise GraphFormatError(
                    f"row index {int(self.rows.max())} out of range for "
                    f"n_rows={self.n_rows}"
                )
            if int(self.cols.max()) >= self.n_cols:
                raise GraphFormatError(
                    f"col index {int(self.cols.max())} out of range for "
                    f"n_cols={self.n_cols}"
                )

    def get_num_vertices(self) -> int:
        """Number of vertices (rows)."""
        return self.n_rows

    def get_num_edges(self) -> int:
        """Number of stored edge triples."""
        return int(self.rows.shape[0])

    def get_edge(self, e: int) -> Tuple[int, int, float]:
        """The ``(src, dst, weight)`` triple of edge ``e``."""
        return int(self.rows[e]), int(self.cols[e]), float(self.vals[e])

    def sorted_by_row(self) -> "COOMatrix":
        """Return a copy sorted by (row, col) — CSR construction order."""
        order = np.lexsort((self.cols, self.rows))
        return COOMatrix(
            self.n_rows,
            self.n_cols,
            self.rows[order],
            self.cols[order],
            self.vals[order],
        )

    def deduplicated(self, *, combine: str = "first") -> "COOMatrix":
        """Return a copy with duplicate ``(row, col)`` pairs merged.

        ``combine`` selects how duplicate weights merge: ``"first"`` keeps
        the first occurrence, ``"sum"`` adds them, ``"min"``/``"max"`` take
        the extreme (the right choice for multi-edges feeding SSSP).
        """
        if self.rows.size == 0:
            return self.copy()
        order = np.lexsort((self.cols, self.rows))
        r, c, v = self.rows[order], self.cols[order], self.vals[order]
        new_group = np.empty(r.shape[0], dtype=bool)
        new_group[0] = True
        new_group[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        group_ids = np.cumsum(new_group) - 1
        n_groups = int(group_ids[-1]) + 1
        out_r = r[new_group]
        out_c = c[new_group]
        if combine == "first":
            out_v = v[new_group]
        elif combine == "sum":
            out_v = np.zeros(n_groups, dtype=WEIGHT_DTYPE)
            np.add.at(out_v, group_ids, v)
        elif combine == "min":
            out_v = np.full(n_groups, np.inf, dtype=WEIGHT_DTYPE)
            np.minimum.at(out_v, group_ids, v)
        elif combine == "max":
            out_v = np.full(n_groups, -np.inf, dtype=WEIGHT_DTYPE)
            np.maximum.at(out_v, group_ids, v)
        else:
            raise ValueError(
                f"combine must be one of 'first', 'sum', 'min', 'max'; got {combine!r}"
            )
        return COOMatrix(self.n_rows, self.n_cols, out_r, out_c, out_v)

    def without_self_loops(self) -> "COOMatrix":
        """Return a copy with ``(v, v)`` edges removed."""
        keep = self.rows != self.cols
        return COOMatrix(
            self.n_rows, self.n_cols, self.rows[keep], self.cols[keep], self.vals[keep]
        )

    def symmetrized(self) -> "COOMatrix":
        """Return a copy with the reverse of every edge added.

        Used to materialize undirected graphs; duplicates are *not* merged
        here (call :meth:`deduplicated` after if the input may already
        contain both directions).
        """
        return COOMatrix(
            self.n_rows,
            self.n_cols,
            np.concatenate([self.rows, self.cols]),
            np.concatenate([self.cols, self.rows]),
            np.concatenate([self.vals, self.vals]),
        )

    def to_csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build CSR ``(row_offsets, column_indices, values)`` arrays.

        Counting sort over rows: O(V + E), no comparison sort needed, and
        within each row the original edge order is preserved (stable).
        """
        counts = np.bincount(self.rows, minlength=self.n_rows).astype(EDGE_DTYPE)
        row_offsets = np.zeros(self.n_rows + 1, dtype=EDGE_DTYPE)
        np.cumsum(counts, out=row_offsets[1:])
        order = np.argsort(self.rows, kind="stable")
        return row_offsets, self.cols[order], self.vals[order]

    def transposed(self) -> "COOMatrix":
        """Return the transpose (rows and cols swapped)."""
        return COOMatrix(self.n_cols, self.n_rows, self.cols, self.rows, self.vals)

    def copy(self) -> "COOMatrix":
        """Deep copy (independent arrays)."""
        return COOMatrix(
            self.n_rows, self.n_cols, self.rows.copy(), self.cols.copy(), self.vals.copy()
        )

    def __repr__(self) -> str:
        return (
            f"COOMatrix(n_rows={self.n_rows}, n_cols={self.n_cols}, "
            f"n_edges={self.get_num_edges()})"
        )
