"""Graph data structures: the first essential component.

The paper (§IV-A, Listing 1) represents a graph internally with sparse
matrix formats — CSR for push traversal, CSC for pull — but exposes a
*graph-focused* API (``get_edges``, ``get_dest_vertex``,
``get_edge_weight``).  :class:`~repro.graph.graph.Graph` is the facade
holding one or more format views behind that API; the format classes
(:class:`~repro.graph.csr.CSRMatrix`, :class:`~repro.graph.csc.CSCMatrix`,
:class:`~repro.graph.coo.COOMatrix`,
:class:`~repro.graph.adjacency.AdjacencyList`) are the interchangeable
underlying representations ("variadic inheritance" in the C++ original,
composition-of-views here).
"""

from repro.graph.properties import GraphProperties
from repro.graph.csr import CSRMatrix
from repro.graph.csc import CSCMatrix
from repro.graph.coo import COOMatrix
from repro.graph.adjacency import AdjacencyList
from repro.graph.graph import Graph
from repro.graph.builder import (
    as_undirected_simple,
    from_edge_array,
    from_edge_list,
    from_csr_arrays,
    from_scipy_sparse,
    from_networkx,
    without_edges,
)
from repro.graph.transpose import transpose_csr
from repro.graph.validate import validate_csr, validate_graph, validate_overlay

__all__ = [
    "GraphProperties",
    "CSRMatrix",
    "CSCMatrix",
    "COOMatrix",
    "AdjacencyList",
    "Graph",
    "as_undirected_simple",
    "from_edge_array",
    "from_edge_list",
    "from_csr_arrays",
    "from_scipy_sparse",
    "from_networkx",
    "transpose_csr",
    "validate_csr",
    "validate_graph",
    "validate_overlay",
    "without_edges",
]
