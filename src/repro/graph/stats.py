"""Structural graph statistics: the workload-characterization toolkit.

The design-space choices the paper catalogs (push vs pull, load-balance
schedule, frontier representation, partitioning difficulty) are all
driven by measurable graph structure — degree skew, diameter, clustering.
This module computes those drivers so examples and benchmarks can
*explain* their results, and so users can predict which configuration
suits their graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, resolve_rng


@dataclass
class DegreeStats:
    """Summary of the out-degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    std: float
    #: max/mean — >~10 signals hub-dominated (edge-balanced chunking,
    #: pull traversal, and vertex-cut partitioning territory).
    skew: float
    #: Gini coefficient of the degree distribution (0 = uniform).
    gini: float


def degree_statistics(graph: Graph) -> DegreeStats:
    """Compute the out-degree summary."""
    degrees = graph.out_degrees().astype(np.float64)
    if degrees.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    mean = float(degrees.mean())
    sorted_deg = np.sort(degrees)
    n = degrees.shape[0]
    # Gini via the sorted-rank identity.
    if sorted_deg.sum() > 0:
        ranks = np.arange(1, n + 1)
        gini = float(
            (2 * (ranks * sorted_deg).sum() / (n * sorted_deg.sum()))
            - (n + 1) / n
        )
    else:
        gini = 0.0
    return DegreeStats(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=mean,
        median=float(np.median(degrees)),
        std=float(degrees.std()),
        skew=float(degrees.max() / mean) if mean > 0 else 0.0,
        gini=gini,
    )


def degree_histogram(graph: Graph, *, log_bins: bool = False) -> Dict[int, int]:
    """Degree -> vertex count map (log2-binned when ``log_bins``)."""
    degrees = graph.out_degrees()
    if log_bins:
        safe = np.maximum(degrees, 1)  # avoid log2(0); zeros masked below
        binned = np.where(
            degrees > 0, np.floor(np.log2(safe)) + 1, 0
        ).astype(int)
        uniq, counts = np.unique(binned, return_counts=True)
        return {int(1 << max(b - 1, 0)) if b else 0: int(c) for b, c in zip(uniq, counts)}
    uniq, counts = np.unique(degrees, return_counts=True)
    return {int(d): int(c) for d, c in zip(uniq, counts)}


def estimate_diameter(
    graph: Graph,
    *,
    n_probes: int = 8,
    seed: SeedLike = 0,
) -> int:
    """Lower-bound the diameter by double-sweep BFS from random probes.

    The classic heuristic: BFS from a random vertex, then BFS again from
    the farthest vertex found; the largest eccentricity seen across
    probes lower-bounds (and usually equals) the true diameter on
    real-world graphs.  Works per connected component reached.
    """
    from repro.baselines import sequential_bfs

    n = graph.n_vertices
    if n == 0:
        return 0
    rng = resolve_rng(seed)
    best = 0
    for _ in range(n_probes):
        start = int(rng.integers(0, n))
        levels = sequential_bfs(graph, start)
        reached = levels >= 0
        if not np.any(reached):
            continue
        far = int(np.argmax(np.where(reached, levels, -1)))
        levels2 = sequential_bfs(graph, far)
        ecc = int(levels2.max(initial=0))
        best = max(best, ecc)
    return best


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: 3·triangles / open-and-closed wedges.

    Undirected semantics; 0.0 for graphs with no wedge.
    """
    from repro.algorithms.tc import triangle_count

    degrees = graph.out_degrees().astype(np.float64)
    wedges = float((degrees * (degrees - 1) / 2).sum())
    if wedges == 0:
        return 0.0
    triangles = triangle_count(graph).total
    return 3.0 * triangles / wedges


def summarize(graph: Graph, *, diameter_probes: int = 4, seed: SeedLike = 0) -> Dict:
    """One-call workload characterization (what `repro info` could grow
    into): degree stats, diameter estimate, clustering, and the
    configuration hints they imply."""
    deg = degree_statistics(graph)
    diameter = estimate_diameter(graph, n_probes=diameter_probes, seed=seed)
    hints = []
    if deg.skew > 10:
        hints.append("hub-skewed: prefer edge-balanced chunking / pull on wide frontiers")
    if diameter > 50:
        hints.append("high diameter: many supersteps; consider async or priority frontiers")
    if deg.skew <= 10 and diameter <= 50:
        hints.append("well-conditioned: defaults (push, vertex chunks, sparse frontier) suffice")
    return {
        "n_vertices": graph.n_vertices,
        "n_edges": graph.n_edges,
        "degree": deg,
        "diameter_lower_bound": diameter,
        "hints": hints,
    }
