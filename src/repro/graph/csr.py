"""Compressed-sparse-row graph representation (Listing 1).

CSR is the canonical *push*-traversal layout: the out-neighborhood of a
vertex is the contiguous slice
``column_indices[row_offsets[v] : row_offsets[v + 1]]``.  Every scalar
query from the paper's native-graph API is provided, plus the vectorized
bulk queries the data-parallel operators are built on
(:meth:`CSRMatrix.expand_vertices` is the heart of neighbor-expand).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.types import (
    EDGE_DTYPE,
    VERTEX_DTYPE,
    WEIGHT_DTYPE,
    as_vertex_array,
)


class CSRMatrix:
    """A graph stored as a compressed-sparse-row matrix.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix shape; for a graph both equal the vertex count.
    row_offsets:
        ``int64`` array of length ``n_rows + 1``; monotonically
        non-decreasing, ``row_offsets[0] == 0`` and
        ``row_offsets[-1] == n_edges``.
    column_indices:
        ``int32`` array of destination vertices, length ``n_edges``.
    values:
        ``float32`` edge weights, length ``n_edges``.
    """

    __slots__ = ("n_rows", "n_cols", "row_offsets", "column_indices", "values")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        row_offsets: np.ndarray,
        column_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.row_offsets = np.ascontiguousarray(row_offsets, dtype=EDGE_DTYPE)
        self.column_indices = np.ascontiguousarray(column_indices, dtype=VERTEX_DTYPE)
        self.values = np.ascontiguousarray(values, dtype=WEIGHT_DTYPE)
        if self.row_offsets.shape != (self.n_rows + 1,):
            raise GraphFormatError(
                f"row_offsets must have length n_rows + 1 = {self.n_rows + 1}, "
                f"got {self.row_offsets.shape[0]}"
            )
        n_edges = int(self.row_offsets[-1]) if self.n_rows >= 0 else 0
        if self.column_indices.shape[0] != n_edges:
            raise GraphFormatError(
                f"column_indices length {self.column_indices.shape[0]} does not "
                f"match row_offsets[-1] = {n_edges}"
            )
        if self.values.shape[0] != n_edges:
            raise GraphFormatError(
                f"values length {self.values.shape[0]} does not match edge "
                f"count {n_edges}"
            )

    # -- scalar native-graph API (Listing 1) ---------------------------------

    def get_num_vertices(self) -> int:
        """Number of vertices (rows)."""
        return self.n_rows

    def get_num_edges(self) -> int:
        """Number of directed edges (stored nonzeros)."""
        return int(self.row_offsets[-1])

    def get_edges(self, v: int) -> range:
        """Edge ids incident to (out of) vertex ``v`` as a ``range``."""
        return range(int(self.row_offsets[v]), int(self.row_offsets[v + 1]))

    def get_dest_vertex(self, e: int) -> int:
        """Destination vertex of edge ``e``."""
        return int(self.column_indices[e])

    def get_edge_weight(self, e: int) -> float:
        """Weight of edge ``e``."""
        return float(self.values[e])

    def get_num_neighbors(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return int(self.row_offsets[v + 1] - self.row_offsets[v])

    def get_neighbors(self, v: int) -> np.ndarray:
        """View of the out-neighbor ids of vertex ``v`` (no copy)."""
        return self.column_indices[self.row_offsets[v] : self.row_offsets[v + 1]]

    def get_neighbor_weights(self, v: int) -> np.ndarray:
        """View of the out-edge weights of vertex ``v`` (no copy)."""
        return self.values[self.row_offsets[v] : self.row_offsets[v + 1]]

    def iter_edges(self) -> Iterator[Tuple[int, int, int, float]]:
        """Yield ``(src, dst, edge_id, weight)`` for every stored edge."""
        for v in range(self.n_rows):
            for e in self.get_edges(v):
                yield v, int(self.column_indices[e]), e, float(self.values[e])

    # -- bulk (vectorized) queries ---------------------------------------------

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an ``int64`` array."""
        return np.diff(self.row_offsets)

    def degrees_of(self, vertices: np.ndarray) -> np.ndarray:
        """Out-degrees of the given vertices."""
        vertices = as_vertex_array(vertices)
        return self.row_offsets[vertices + 1] - self.row_offsets[vertices]

    def source_of_edges(self, edge_ids: np.ndarray) -> np.ndarray:
        """Source vertex of each edge id (inverse of the offsets array).

        Computed with a binary search over ``row_offsets``; used to recover
        ``src`` for edge-centric frontiers.
        """
        edge_ids = np.asarray(edge_ids, dtype=EDGE_DTYPE)
        return (
            np.searchsorted(self.row_offsets, edge_ids, side="right") - 1
        ).astype(VERTEX_DTYPE)

    def expand_vertices(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Gather every out-edge of every vertex in ``vertices``.

        This is the bulk form of the neighbor-expand loop body in
        Listing 3: for the concatenated neighborhoods it returns the tuple
        of arrays ``(sources, destinations, edge_ids, weights)``, with
        sources repeated per neighbor.  All four arrays have length equal
        to the total degree of ``vertices``.
        """
        vertices = as_vertex_array(vertices)
        starts = self.row_offsets[vertices]
        counts = self.row_offsets[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=EDGE_DTYPE),
                np.empty(0, dtype=WEIGHT_DTYPE),
            )
        # Vectorized multi-range gather: for each vertex i the positions
        # starts[i] .. starts[i]+counts[i)-1.  `base` realigns a global
        # arange to restart at each segment boundary.
        cum = np.cumsum(counts)
        base = np.repeat(starts - (cum - counts), counts)
        edge_ids = (np.arange(total, dtype=EDGE_DTYPE) + base).astype(EDGE_DTYPE)
        sources = np.repeat(vertices, counts)
        return sources, self.column_indices[edge_ids], edge_ids, self.values[edge_ids]

    def neighbor_segments(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(starts, counts)`` of the CSR slices for ``vertices``."""
        vertices = as_vertex_array(vertices)
        starts = self.row_offsets[vertices]
        counts = self.row_offsets[vertices + 1] - starts
        return starts, counts

    def has_edge(self, u: int, v: int, *, assume_sorted: bool = False) -> bool:
        """Whether the directed edge ``(u, v)`` is stored.

        With ``assume_sorted`` the neighbor slice is binary-searched
        (O(log d)); otherwise scanned linearly.
        """
        nbrs = self.get_neighbors(u)
        if assume_sorted:
            i = int(np.searchsorted(nbrs, v))
            return i < nbrs.shape[0] and int(nbrs[i]) == v
        return bool(np.any(nbrs == v))

    def sort_neighbors(self) -> "CSRMatrix":
        """Return a copy whose per-vertex neighbor lists are sorted by id.

        Weights are permuted consistently.  Required before segmented
        intersection (triangle counting) and binary-searched queries.
        """
        cols = self.column_indices.copy()
        vals = self.values.copy()
        for v in range(self.n_rows):
            s, e = int(self.row_offsets[v]), int(self.row_offsets[v + 1])
            if e - s > 1:
                order = np.argsort(cols[s:e], kind="stable")
                cols[s:e] = cols[s:e][order]
                vals[s:e] = vals[s:e][order]
        return CSRMatrix(self.n_rows, self.n_cols, self.row_offsets.copy(), cols, vals)

    # -- conversions ------------------------------------------------------------

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_matrix` (weights as data)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.values, self.column_indices, self.row_offsets),
            shape=(self.n_rows, self.n_cols),
        )

    def copy(self) -> "CSRMatrix":
        """Deep copy (independent arrays)."""
        return CSRMatrix(
            self.n_rows,
            self.n_cols,
            self.row_offsets.copy(),
            self.column_indices.copy(),
            self.values.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(n_rows={self.n_rows}, n_cols={self.n_cols}, "
            f"n_edges={self.get_num_edges()})"
        )
