"""Adjacency-list graph representation.

The third underlying format the paper names (§IV-A).  Each vertex owns a
pair of growable arrays (neighbors, weights), which makes this the only
*mutable* representation — incremental edge insertion lands here, and the
builder converts to CSR/CSC once the graph is frozen.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE


class AdjacencyList:
    """A mutable adjacency-list graph.

    Neighbors are kept as Python lists while building (amortized O(1)
    append) and converted to NumPy arrays on :meth:`freeze` / CSR export.
    """

    __slots__ = ("n_vertices", "_neighbors", "_weights")

    def __init__(self, n_vertices: int) -> None:
        if n_vertices < 0:
            raise GraphFormatError(f"n_vertices must be >= 0, got {n_vertices}")
        self.n_vertices = int(n_vertices)
        self._neighbors: List[List[int]] = [[] for _ in range(self.n_vertices)]
        self._weights: List[List[float]] = [[] for _ in range(self.n_vertices)]

    # -- construction -----------------------------------------------------------

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Append the directed edge ``(src, dst)``."""
        if not (0 <= src < self.n_vertices and 0 <= dst < self.n_vertices):
            raise GraphFormatError(
                f"edge ({src}, {dst}) out of range for n_vertices={self.n_vertices}"
            )
        self._neighbors[src].append(int(dst))
        self._weights[src].append(float(weight))

    def add_edges(self, edges: Iterable[Tuple[int, int, float]]) -> None:
        """Append many ``(src, dst, weight)`` triples."""
        for src, dst, weight in edges:
            self.add_edge(src, dst, weight)

    def add_undirected_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Append both arc directions of an undirected edge."""
        self.add_edge(u, v, weight)
        if u != v:
            self.add_edge(v, u, weight)

    def remove_edge(self, src: int, dst: int) -> float:
        """Remove one directed edge ``(src, dst)``; returns its weight.

        With parallel edges the first (earliest-inserted) one goes.
        Removing an edge that does not exist raises
        :class:`GraphFormatError` — silently ignoring it would let
        builder bugs pass as empty mutations.
        """
        if not (0 <= src < self.n_vertices and 0 <= dst < self.n_vertices):
            raise GraphFormatError(
                f"edge ({src}, {dst}) out of range for n_vertices={self.n_vertices}"
            )
        try:
            pos = self._neighbors[src].index(int(dst))
        except ValueError:
            raise GraphFormatError(
                f"cannot remove edge ({src}, {dst}): no such edge"
            ) from None
        del self._neighbors[src][pos]
        return float(self._weights[src].pop(pos))

    def remove_edges(self, edges: Iterable[Tuple[int, int]]) -> List[float]:
        """Remove many ``(src, dst)`` pairs, in order; returns weights.

        Validates the whole batch up front (against the pre-removal
        state plus multiplicity within the batch) so a missing edge
        fails the call before anything is mutated.
        """
        pairs = [(int(s), int(d)) for s, d in edges]
        need: dict = {}
        for s, d in pairs:
            need[(s, d)] = need.get((s, d), 0) + 1
        for (s, d), count in need.items():
            if not (0 <= s < self.n_vertices and 0 <= d < self.n_vertices):
                raise GraphFormatError(
                    f"edge ({s}, {d}) out of range for "
                    f"n_vertices={self.n_vertices}"
                )
            present = self._neighbors[s].count(d)
            if present < count:
                raise GraphFormatError(
                    f"cannot remove edge ({s}, {d}) x{count}: "
                    f"only {present} present"
                )
        return [self.remove_edge(s, d) for s, d in pairs]

    def remove_undirected_edge(self, u: int, v: int) -> float:
        """Remove both arc directions of an undirected edge."""
        weight = self.remove_edge(u, v)
        if u != v:
            self.remove_edge(v, u)
        return weight

    # -- native-graph API ---------------------------------------------------------

    def get_num_vertices(self) -> int:
        """Number of vertices."""
        return self.n_vertices

    def get_num_edges(self) -> int:
        """Number of stored directed edges."""
        return sum(len(nbrs) for nbrs in self._neighbors)

    def get_num_neighbors(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return len(self._neighbors[v])

    def get_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbor ids of vertex ``v`` (copied into an array)."""
        return np.asarray(self._neighbors[v], dtype=VERTEX_DTYPE)

    def get_neighbor_weights(self, v: int) -> np.ndarray:
        """Out-edge weights of vertex ``v`` (copied into an array)."""
        return np.asarray(self._weights[v], dtype=WEIGHT_DTYPE)

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` triples in insertion order per vertex."""
        for v, (nbrs, wts) in enumerate(zip(self._neighbors, self._weights)):
            for dst, w in zip(nbrs, wts):
                yield v, dst, w

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` was inserted."""
        return v in self._neighbors[u]

    # -- conversion --------------------------------------------------------------

    def to_csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Export ``(row_offsets, column_indices, values)`` CSR arrays."""
        degrees = np.fromiter(
            (len(nbrs) for nbrs in self._neighbors),
            dtype=np.int64,
            count=self.n_vertices,
        )
        row_offsets = np.zeros(self.n_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=row_offsets[1:])
        n_edges = int(row_offsets[-1])
        column_indices = np.empty(n_edges, dtype=VERTEX_DTYPE)
        values = np.empty(n_edges, dtype=WEIGHT_DTYPE)
        for v in range(self.n_vertices):
            s, e = int(row_offsets[v]), int(row_offsets[v + 1])
            column_indices[s:e] = self._neighbors[v]
            values[s:e] = self._weights[v]
        return row_offsets, column_indices, values

    def __repr__(self) -> str:
        return (
            f"AdjacencyList(n_vertices={self.n_vertices}, "
            f"n_edges={self.get_num_edges()})"
        )
