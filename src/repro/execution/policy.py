"""Execution policies as unique types (the C++ ``std::execution`` analog).

Each policy is its own class so operator implementations can be selected
by ``type(policy)`` — the Python equivalent of the paper's
``enable_if``-disambiguated overloads in Listing 3.  Policy *instances*
carry tuning knobs (worker count, chunk size, load-balance mode) while
the *type* fixes the synchronization contract, so
``neighbors_expand(par, ...)`` and
``neighbors_expand(par.with_workers(8), ...)`` run the same overload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.errors import ExecutionPolicyError


@dataclass(frozen=True)
class ExecutionPolicy:
    """Base class for all execution policies.

    Attributes
    ----------
    num_workers:
        Worker threads (or processes, for ``par_proc``); ``None`` = use
        the pool default (``REPRO_NUM_WORKERS`` when set, else
        ``os.cpu_count()``).
    chunk_size:
        Work items per task for the threaded policies; ``None`` = divide
        evenly among workers.
    load_balance:
        ``"vertex"`` (equal vertex counts per chunk) or ``"edge"``
        (equal edge work per chunk, the merge-path-style schedule).
    """

    num_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    load_balance: str = "vertex"

    def __post_init__(self):
        if self.num_workers is not None and self.num_workers < 1:
            raise ExecutionPolicyError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ExecutionPolicyError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.load_balance not in ("vertex", "edge"):
            raise ExecutionPolicyError(
                f"load_balance must be 'vertex' or 'edge', got "
                f"{self.load_balance!r}"
            )

    # Frozen dataclass "builders": policy identity (the type) never changes,
    # only the knobs.
    def with_workers(self, num_workers: int) -> "ExecutionPolicy":
        """Copy of this policy pinned to ``num_workers`` threads."""
        return replace(self, num_workers=num_workers)

    def with_chunk_size(self, chunk_size: int) -> "ExecutionPolicy":
        """Copy of this policy with a fixed task granularity."""
        return replace(self, chunk_size=chunk_size)

    def with_load_balance(self, mode: str) -> "ExecutionPolicy":
        """Copy of this policy using the given chunking mode."""
        return replace(self, load_balance=mode)

    @property
    def synchronous(self) -> bool:
        """Whether the operator barriers before returning (BSP contract)."""
        return True

    @property
    def parallel(self) -> bool:
        """Whether work may run outside the invoking thread."""
        return True

    def __repr__(self) -> str:
        knobs = []
        if self.num_workers is not None:
            knobs.append(f"num_workers={self.num_workers}")
        if self.chunk_size is not None:
            knobs.append(f"chunk_size={self.chunk_size}")
        if self.load_balance != "vertex":
            knobs.append(f"load_balance={self.load_balance!r}")
        return f"execution.{self.name}({', '.join(knobs)})"

    name = "policy"


class SequencedPolicy(ExecutionPolicy):
    """Run in the invoking thread, element at a time (``std::execution::seq``)."""

    name = "seq"

    @property
    def parallel(self) -> bool:
        return False


class ParallelPolicy(ExecutionPolicy):
    """Parallel synchronous: thread-pool chunks + barrier (``par``)."""

    name = "par"


class ParallelNoSyncPolicy(ExecutionPolicy):
    """Parallel asynchronous: queue-fed tasks, no inter-item barrier
    (the paper's ``par_nosync``).  Completion is detected by quiescence.
    """

    name = "par_nosync"

    @property
    def synchronous(self) -> bool:
        return False


class VectorPolicy(ExecutionPolicy):
    """Data-parallel bulk execution via NumPy kernels (device-wide analog)."""

    name = "par_vector"


class ProcPolicy(VectorPolicy):
    """Multiprocess sharded execution over shared memory (``par_proc``).

    Supersteps run as bulk-synchronous rounds across a persistent pool
    of worker *processes* (no shared GIL): the graph and per-round state
    live in ``multiprocessing.shared_memory``, each worker expands a
    chunk of the frontier, and boundary updates merge back through the
    comm mailbox + combiner machinery.  Subclassing the vectorized
    policy is deliberate — wherever a round cannot be sharded (no fused
    kernel for the condition, fusion disabled, or already inside a
    worker process) the policy degrades to the in-process vectorized
    overload, so every algorithm that accepts ``par_vector`` accepts
    ``par_proc`` unmodified.

    ``num_workers`` here means worker *processes*; ``None`` uses
    ``REPRO_NUM_WORKERS`` or every CPU (see
    :func:`~repro.execution.proc_pool.default_proc_workers`).
    """

    name = "par_proc"


#: Canonical policy instances, mirroring ``std::execution::seq`` etc.
seq = SequencedPolicy()
par = ParallelPolicy()
par_nosync = ParallelNoSyncPolicy()
par_vector = VectorPolicy()
par_proc = ProcPolicy()

_BY_NAME = {
    "seq": seq,
    "par": par,
    "par_nosync": par_nosync,
    "par_vector": par_vector,
    "par_proc": par_proc,
}


def resolve_policy(policy: Union[str, ExecutionPolicy]) -> ExecutionPolicy:
    """Accept a policy object or its name; return the policy object."""
    if isinstance(policy, ExecutionPolicy):
        return policy
    if isinstance(policy, str):
        got = _BY_NAME.get(policy)
        if got is None:
            raise ExecutionPolicyError(
                f"unknown execution policy {policy!r}; expected one of "
                f"{sorted(_BY_NAME)}"
            )
        return got
    raise ExecutionPolicyError(
        f"policy must be an ExecutionPolicy or name, got {type(policy).__name__}"
    )
