"""Execution policies and engines — the timing-pillar mechanism (§III-A).

"Our abstraction additionally allows [operators] to be expressed with
different execution policies as a parameter to control synchronization
behavior and parallelism.  Much like the C++ standard library's
execution policies, these policies are unique types to allow for
overloading of traversal and transformation operators."

Four policies are provided:

* :data:`seq` — sequential, in the invoking thread.
* :data:`par` — parallel synchronous: work is chunked across a thread
  pool and a barrier joins all chunks before the operator returns (the
  BSP superstep contract).
* :data:`par_nosync` — parallel asynchronous: work items are tasks on a
  shared queue with **no barrier between work items**; completion is
  detected by quiescence (outstanding-work counting), the Atos model.
* :data:`par_vector` — data-parallel bulk execution via NumPy array
  kernels: every frontier element is processed "simultaneously" by
  vectorized operations with a single implicit barrier at the end.  This
  is the honest Python analog of the paper's device-wide GPU kernels and
  the performance path (DESIGN.md substitution table).
"""

from repro.execution.policy import (
    ExecutionPolicy,
    SequencedPolicy,
    ParallelPolicy,
    ParallelNoSyncPolicy,
    VectorPolicy,
    seq,
    par,
    par_nosync,
    par_vector,
    resolve_policy,
)
from repro.execution.atomics import AtomicArray, bulk_min_relax, bulk_max_relax
from repro.execution.thread_pool import ThreadPool, get_pool
from repro.execution.scheduler import AsyncScheduler
from repro.execution.stealing import WorkStealingScheduler

__all__ = [
    "ExecutionPolicy",
    "SequencedPolicy",
    "ParallelPolicy",
    "ParallelNoSyncPolicy",
    "VectorPolicy",
    "seq",
    "par",
    "par_nosync",
    "par_vector",
    "resolve_policy",
    "AtomicArray",
    "bulk_min_relax",
    "bulk_max_relax",
    "ThreadPool",
    "get_pool",
    "AsyncScheduler",
    "WorkStealingScheduler",
]
