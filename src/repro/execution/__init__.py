"""Execution policies and engines — the timing-pillar mechanism (§III-A).

"Our abstraction additionally allows [operators] to be expressed with
different execution policies as a parameter to control synchronization
behavior and parallelism.  Much like the C++ standard library's
execution policies, these policies are unique types to allow for
overloading of traversal and transformation operators."

Five synchronous-pillar policies are provided (a sixth mode, ``async``,
lives in the loop layer):

* :data:`seq` — sequential, in the invoking thread.
* :data:`par` — parallel synchronous: work is chunked across a thread
  pool and a barrier joins all chunks before the operator returns (the
  BSP superstep contract).
* :data:`par_nosync` — parallel asynchronous: work items are tasks on a
  shared queue with **no barrier between work items**; completion is
  detected by quiescence (outstanding-work counting), the Atos model.
* :data:`par_vector` — data-parallel bulk execution via NumPy array
  kernels: every frontier element is processed "simultaneously" by
  vectorized operations with a single implicit barrier at the end.  This
  is the honest Python analog of the paper's device-wide GPU kernels and
  the performance path (DESIGN.md substitution table).
* :data:`par_proc` — multiprocess sharded execution over shared memory:
  supersteps run as BSP rounds across persistent worker *processes*
  (escaping the GIL entirely), with the graph and per-round state in
  ``multiprocessing.shared_memory`` and boundary updates merged through
  the comm mailbox machinery.  Degrades to :data:`par_vector` wherever a
  round cannot be sharded.
"""

from repro.execution.policy import (
    ExecutionPolicy,
    SequencedPolicy,
    ParallelPolicy,
    ParallelNoSyncPolicy,
    VectorPolicy,
    ProcPolicy,
    seq,
    par,
    par_nosync,
    par_vector,
    par_proc,
    resolve_policy,
)
from repro.execution.atomics import AtomicArray, bulk_min_relax, bulk_max_relax
from repro.execution.thread_pool import ThreadPool, get_pool
from repro.execution.scheduler import AsyncScheduler
from repro.execution.stealing import WorkStealingScheduler

__all__ = [
    "ExecutionPolicy",
    "SequencedPolicy",
    "ParallelPolicy",
    "ParallelNoSyncPolicy",
    "VectorPolicy",
    "ProcPolicy",
    "seq",
    "par",
    "par_nosync",
    "par_vector",
    "par_proc",
    "resolve_policy",
    "AtomicArray",
    "bulk_min_relax",
    "bulk_max_relax",
    "ThreadPool",
    "get_pool",
    "AsyncScheduler",
    "WorkStealingScheduler",
]
