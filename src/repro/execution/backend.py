"""Backend dispatch — native-graph vs. linear-algebra execution.

The paper frames graph frameworks as either *native-graph* (frontiers,
advance/filter operators — Gunrock's model, everything this repo built
through PR 9) or *linear-algebra based* (masked matrix products over
semirings — GraphBLAST's model, :mod:`repro.linalg`).  This module is
the seam that lets one algorithm entry point serve both: callers pass
``backend="native" | "linalg" | "auto"`` and the entry point routes to
the frontier enactor or the semiring drivers.

Capability probing mirrors the policy layer's graceful degradation:
asking for ``linalg`` on an algorithm without a matrix formulation
falls back to native (with a ``backend:fallback`` probe event, so
traces show the substitution) rather than erroring — same contract as
``par_proc`` degrading to ``par_vector``.
"""

from __future__ import annotations

from typing import Optional

#: Backend names accepted by algorithm entry points and the CLI.
BACKENDS = ("native", "linalg", "auto")

#: Algorithms with a linear-algebra formulation (a driver in
#: :mod:`repro.linalg.algorithms`).  Everything else is native-only.
LINALG_ALGORITHMS = frozenset(
    {"bfs", "sssp", "cc", "pagerank", "ppr", "hits", "spmv", "spgemm"}
)


def supports(backend: str, algorithm: str) -> bool:
    """Whether ``algorithm`` can execute on ``backend`` directly."""
    if backend in ("native", "auto"):
        return True
    return algorithm in LINALG_ALGORITHMS


def resolve_backend(backend: Optional[str], algorithm: str) -> str:
    """Pick the concrete backend for one algorithm invocation.

    ``None``/``"native"`` → native.  ``"linalg"`` → linalg when the
    algorithm has a matrix formulation, else native with a
    ``backend:fallback`` probe event.  ``"auto"`` → linalg when
    available, silently native otherwise (auto *is* the probe).
    """
    if backend is None or backend == "native":
        return "native"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if algorithm in LINALG_ALGORITHMS:
        return "linalg"
    if backend == "linalg":
        from repro.observability.probe import active_probe

        probe = active_probe()
        if probe.enabled:
            probe.event(
                "backend:fallback",
                algorithm=algorithm,
                requested="linalg",
                used="native",
            )
            probe.counter("backend.fallbacks")
    return "native"
