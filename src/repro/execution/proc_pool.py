"""Persistent worker-process pool backing the ``par_proc`` policy.

The pool is the process analog of :mod:`repro.execution.thread_pool`:
spawned once per worker count, cached process-wide, reused across
supersteps and algorithms (spawn start-up costs ~1s; a superstep costs
milliseconds).  Each worker runs :func:`_worker_main` — a small command
loop over a duplex pipe that attaches shared-memory views
(:mod:`repro.execution.shm`) and executes the round kernels in
:mod:`repro.execution.proc_kernels` on its partition.

Protocol (control messages are tiny dicts on the pipe; bulk data always
travels through shared memory or as the compact update buffers the
round returns):

* ``{"cmd": "round", "id", "fn", "args", "retire"}`` → ``{"id", "ok",
  "dsts", "vals", "busy", "edges"}`` — run one partition round.
  ``retire`` lists shared segments whose cached attachments must drop.
* ``{"cmd": "ping"}`` → liveness probe; ``{"cmd": "exit"}`` → drain and
  leave.

**Start method.**  Workers are started with ``spawn`` (configurable via
``REPRO_PROC_START``): the parent routinely owns live thread pools, and
``fork`` duplicating a locked mutex into the child is a deadlock, not a
performance knob.

**Supervision.**  Rounds are idempotent by design — workers do not
mutate shared algorithm state (PageRank's disjoint row writes are
overwrite-safe), so a worker that dies mid-round (crash, OOM-kill,
SIGKILL) is respawned and its round re-dispatched, bounded by a respawn
budget.  Replies are tagged with round ids so a reply from an abandoned
round (e.g. after cancellation) is discarded instead of being mistaken
for the current one.

**Cancellation.**  While waiting on replies the parent polls the
ambient :class:`~repro.resilience.deadline.CancelToken`; on fire it
abandons the round (workers finish and their stale replies are
drained later) and raises at the cooperative checkpoint — the same
between-superstep discipline the enactors use.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import os
import threading
import time
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional

from repro.execution import proc_kernels, shm
from repro.observability.context import current_trace_id
from repro.observability.probe import active_probe
from repro.resilience.deadline import active_token

#: How often the reply wait polls for cancellation / dead workers.
_POLL_SECONDS = 0.05

#: Respawn budget per dispatch: more dead workers than this in one round
#: means something systemic (not one lost process), so fail loudly.
_MAX_RESPAWNS_PER_ROUND = 8

#: Worker-side kernel registry (names cross the pipe, functions do not).
_KERNELS = {
    "min_relax_push": proc_kernels.min_relax_push,
    "min_relax_pull": proc_kernels.min_relax_pull,
    "claim_push": proc_kernels.claim_push,
    "claim_pull": proc_kernels.claim_pull,
    "pagerank_range": proc_kernels.pagerank_range,
}

_in_worker = False


def in_worker_process() -> bool:
    """Whether this process is a ``par_proc`` worker (nested pools are
    refused — a worker resolving ``par_proc`` falls back to the
    vectorized in-process path)."""
    return _in_worker


def default_proc_workers() -> int:
    """Worker-process default: ``REPRO_NUM_WORKERS`` when set, else every
    CPU — processes do not share a GIL, so there is no cap."""
    env = os.environ.get("REPRO_NUM_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _start_method() -> str:
    method = os.environ.get("REPRO_PROC_START", "spawn")
    return method if method in mp.get_all_start_methods() else "spawn"


# -- worker side ----------------------------------------------------------------------


def _resolve_args(args: Dict) -> Dict:
    """Replace shared-memory markers with attached views:
    ``("shm", descriptor)`` is a whole array, ``("shm_slice",
    descriptor, lo, hi)`` a zero-copy slice of one (a worker's chunk of
    the round's work list — the full list ships once, each worker maps
    its own window)."""
    out = {}
    for key, value in args.items():
        if isinstance(value, tuple) and value:
            if value[0] == "shm" and len(value) == 2:
                out[key] = shm.attach(value[1])
                continue
            if value[0] == "shm_slice" and len(value) == 4:
                out[key] = shm.attach(value[1])[value[2] : value[3]]
                continue
        out[key] = value
    return out


def _worker_main(rank: int, conn) -> None:  # pragma: no cover - child process
    """Command loop of one worker (covered by the e2e par_proc tests;
    coverage instrumentation does not follow spawned children)."""
    global _in_worker
    _in_worker = True
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg.get("cmd")
        if cmd == "exit":
            break
        if cmd == "ping":
            conn.send({"cmd": "pong", "rank": rank, "pid": os.getpid()})
            continue
        if cmd == "retire":  # cache invalidation only, no reply
            shm.detach(msg.get("names", ()))
            continue
        if cmd != "round":
            conn.send({"id": msg.get("id"), "ok": False,
                       "error": f"unknown command {cmd!r}"})
            continue
        shm.detach(msg.get("retire", ()))
        t0 = time.perf_counter()
        try:
            fn = _KERNELS[msg["fn"]]
            result = fn(**_resolve_args(msg["args"]))
            busy = time.perf_counter() - t0
            if msg["fn"] == "pagerank_range":
                reply = {"id": msg["id"], "ok": True, "dsts": None,
                         "vals": None, "edges": int(result), "busy": busy}
            else:
                dsts, vals = result
                reply = {"id": msg["id"], "ok": True, "dsts": dsts,
                         "vals": vals, "edges": 0, "busy": busy}
        except Exception as exc:  # surface, don't die: the round failed
            reply = {"id": msg["id"], "ok": False,
                     "error": f"{type(exc).__name__}: {exc}",
                     "busy": time.perf_counter() - t0}
        if "trace" in msg:
            # Echo the distributed-tracing id so the parent's stitched
            # proc:task span is attributable to the originating query.
            reply["trace"] = msg["trace"]
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    shm.detach_all()


# -- parent side ----------------------------------------------------------------------


class WorkerDied(RuntimeError):
    """A worker exceeded the respawn budget or died unrecoverably."""


class _Worker:
    __slots__ = ("rank", "process", "conn")

    def __init__(self, rank, process, conn):
        self.rank = rank
        self.process = process
        self.conn = conn


class ProcPool:
    """A fixed-size pool of persistent spawned workers."""

    def __init__(self, num_workers: int) -> None:
        self.num_workers = max(1, int(num_workers))
        self._ctx = mp.get_context(_start_method())
        self._workers: List[Optional[_Worker]] = [None] * self.num_workers
        self._round_ids = itertools.count(1)
        self._lock = threading.RLock()
        self._closed = False
        #: Worker restarts over the pool's lifetime (supervision metric).
        self.restarts = 0
        for rank in range(self.num_workers):
            self._spawn(rank)

    def _spawn(self, rank: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(rank, child_conn),
            name=f"repro-proc-{rank}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(rank, process, parent_conn)
        self._workers[rank] = worker
        return worker

    def _respawn(self, rank: int, budget: List[int]) -> _Worker:
        budget[0] += 1
        if budget[0] > _MAX_RESPAWNS_PER_ROUND:
            raise WorkerDied(
                f"worker rank {rank} keeps dying "
                f"({budget[0]} respawns this round)"
            )
        old = self._workers[rank]
        if old is not None:
            try:
                old.conn.close()
            except OSError:  # pragma: no cover
                pass
            if old.process.is_alive():  # pragma: no cover - hung worker
                old.process.terminate()
            old.process.join(timeout=5)
        self.restarts += 1
        probe = active_probe()
        probe.counter("proc.worker_restarts")
        # Also mark the respawn on the enclosing span (the proc:round in
        # flight), so a trace of the affected query shows *when* in the
        # round a worker died — not just that a counter moved.
        probe.event(
            "proc:worker_respawn", worker=rank, restarts=self.restarts
        )
        return self._spawn(rank)

    # -- round dispatch ----------------------------------------------------------------

    def run_round(self, fn: str, per_rank_args: List[Optional[Dict]],
                  retire: List[str]) -> List[Optional[Dict]]:
        """Dispatch one bulk-synchronous round; barrier on all replies.

        ``per_rank_args[rank] is None`` skips that worker this round
        (it still receives the retire list with the next real round).
        Returns per-rank reply dicts (None for skipped ranks).  Dead
        workers are respawned and their partition re-dispatched; a
        fired ambient cancel token abandons the round and raises.
        """
        with self._lock:
            if self._closed:
                raise WorkerDied("pool is closed")
            round_id = next(self._round_ids)
            budget = [0]
            trace_id = current_trace_id()
            messages: Dict[int, Dict] = {}
            for rank, args in enumerate(per_rank_args):
                if args is None:
                    continue
                messages[rank] = {
                    "cmd": "round", "id": round_id, "fn": fn,
                    "args": args, "retire": retire,
                }
                if trace_id is not None:
                    # Round frames carry the originating query's trace
                    # id across the process boundary; workers echo it.
                    messages[rank]["trace"] = trace_id
            for rank, msg in messages.items():
                self._send(rank, msg, budget)
            if retire:
                # Idle workers still learn about retired segments, so a
                # stale cached attachment cannot pin unlinked pages
                # until that rank happens to participate again.
                for rank in range(len(per_rank_args)):
                    if rank in messages:
                        continue
                    worker = self._workers[rank]
                    if worker is None or not worker.process.is_alive():
                        continue  # a respawn starts with an empty cache
                    try:
                        worker.conn.send({"cmd": "retire", "names": retire})
                    except (BrokenPipeError, OSError):
                        pass
            replies: List[Optional[Dict]] = [None] * len(per_rank_args)
            pending = set(messages)
            while pending:
                token = active_token()
                if token is not None and token.should_stop():
                    # Abandon: stale replies carry an old round id and
                    # are discarded by the next round's drain.
                    token.check(f"proc_pool:round:{round_id}")
                progressed = False
                for rank in sorted(pending):
                    worker = self._workers[rank]
                    try:
                        ready = worker.conn.poll(0)
                    except (OSError, EOFError):
                        ready = False
                    if ready:
                        try:
                            reply = worker.conn.recv()
                        except (EOFError, OSError):
                            self._resend(rank, messages[rank], budget)
                            continue
                        if reply.get("cmd") == "pong" or reply.get("id") != round_id:
                            continue  # stale: an abandoned round's reply
                        if not reply.get("ok"):
                            raise WorkerDied(
                                f"worker rank {rank} failed: "
                                f"{reply.get('error', 'unknown error')}"
                            )
                        replies[rank] = reply
                        pending.discard(rank)
                        progressed = True
                    elif not worker.process.is_alive():
                        # Crash/SIGKILL mid-round: rounds are idempotent,
                        # so respawn and re-dispatch the same partition.
                        self._resend(rank, messages[rank], budget)
                if not progressed and pending:
                    self._wait_any(pending, _POLL_SECONDS)
            return replies

    def _wait_any(self, pending, timeout: float) -> None:
        conns = []
        for rank in pending:
            worker = self._workers[rank]
            if worker is not None:
                conns.append(worker.conn)
        if conns:
            try:
                mp_connection.wait(conns, timeout)
            except OSError:  # pragma: no cover - racing a dying worker
                time.sleep(timeout)

    def _send(self, rank: int, msg: Dict, budget: List[int]) -> None:
        worker = self._workers[rank]
        if worker is None or not worker.process.is_alive():
            worker = self._respawn(rank, budget)
        try:
            worker.conn.send(msg)
        except (BrokenPipeError, OSError):
            worker = self._respawn(rank, budget)
            worker.conn.send(msg)

    def _resend(self, rank: int, msg: Dict, budget: List[int]) -> None:
        self._respawn(rank, budget)
        self._send(rank, msg, budget)

    # -- lifecycle ---------------------------------------------------------------------

    def ping(self) -> List[int]:
        """Round-trip every worker; returns their pids (tests/debug)."""
        with self._lock:
            pids = []
            for worker in self._workers:
                worker.conn.send({"cmd": "ping"})
            for worker in self._workers:
                while True:
                    reply = worker.conn.recv()
                    if reply.get("cmd") == "pong":
                        pids.append(reply["pid"])
                        break
            return pids

    def worker_pids(self) -> List[int]:
        """Current worker pids without a round-trip."""
        return [w.process.pid for w in self._workers if w is not None]

    def close(self) -> None:
        """Ask workers to exit, then join (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                if worker is None:
                    continue
                try:
                    worker.conn.send({"cmd": "exit"})
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                if worker is None:
                    continue
                worker.process.join(timeout=5)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.terminate()
                    worker.process.join(timeout=5)
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass


_pools: Dict[int, ProcPool] = {}
_pools_lock = threading.Lock()


def get_proc_pool(num_workers: Optional[int] = None) -> ProcPool:
    """Fetch (or lazily spawn) the process-wide pool for a worker count."""
    key = num_workers or default_proc_workers()
    with _pools_lock:
        pool = _pools.get(key)
        if pool is None or pool._closed:
            pool = ProcPool(key)
            _pools[key] = pool
        return pool


def shutdown_pools() -> None:
    """Close every cached pool (tests and interpreter exit)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.close()


atexit.register(shutdown_pools)
