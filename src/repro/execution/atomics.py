"""Atomic per-element array updates — Listing 4's ``atomic::min``.

Two faithful realizations of the same linearizable contract:

* :class:`AtomicArray` for the *threaded* policies: striped locks guard
  read-modify-write on individual elements ("eq: mutex updates", as the
  paper's comment puts it).  Stripes bound lock memory while keeping
  contention low — two vertices collide only when their ids hash to the
  same stripe.
* :func:`bulk_min_relax` for the *vectorized* policy: a whole batch of
  updates applied with ``np.minimum.at`` (unbuffered, so duplicate
  indices within the batch are each applied).  The returned "old" values
  are the pre-batch ones, which mirrors GPU atomic semantics where every
  thread's ``atomic::min`` returns some value the slot held before its
  own update; a duplicate destination may therefore report improvement
  twice, producing a redundant—but never incorrect—frontier entry.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

#: Ambient atomics instrument (the race checker's shim).  Installed the
#: same way FaultInjector is: module-global, consulted at AtomicArray
#: construction so the common path costs one ``is None`` check per op.
_ACTIVE_INSTRUMENT = None


def active_instrument():
    """The installed atomics instrument, or ``None``."""
    return _ACTIVE_INSTRUMENT


def install_instrument(instrument) -> Optional[object]:
    """Install (or with ``None`` remove) the ambient atomics instrument.

    Returns the previously installed instrument so callers can restore
    it; :class:`repro.verify.races.RaceInstrument` wraps this in a
    context manager.  An instrument sees every read-modify-write on
    every :class:`AtomicArray` created while it is installed, via
    ``before_op(array, kind, index)`` (outside the stripe lock — the
    hook where scheduling perturbation happens) and ``record(array,
    kind, index, old, new)`` (inside the lock, after the update).
    """
    global _ACTIVE_INSTRUMENT
    prev = _ACTIVE_INSTRUMENT
    _ACTIVE_INSTRUMENT = instrument
    return prev


class AtomicArray:
    """A NumPy array with linearizable per-element read-modify-write ops."""

    def __init__(self, array: np.ndarray, *, n_stripes: int = 64) -> None:
        if array.ndim != 1:
            raise ValueError(f"AtomicArray requires a 1-D array, got {array.ndim}-D")
        if n_stripes < 1:
            raise ValueError(f"n_stripes must be >= 1, got {n_stripes}")
        self.array = array
        self._locks = [threading.Lock() for _ in range(n_stripes)]
        self._n_stripes = n_stripes
        self._instrument = _ACTIVE_INSTRUMENT

    def _lock_for(self, index: int) -> threading.Lock:
        return self._locks[index % self._n_stripes]

    def load(self, index: int):
        """Atomic read of one element."""
        inst = self._instrument
        if inst is not None:
            inst.before_op(self, "load", index)
        with self._lock_for(index):
            return self.array[index].item()

    def store(self, index: int, value) -> None:
        """Atomic write of one element."""
        inst = self._instrument
        if inst is not None:
            inst.before_op(self, "store", index)
        with self._lock_for(index):
            old = self.array[index].item()
            self.array[index] = value
            if inst is not None:
                inst.record(self, "store", index, old, value)

    def min_at(self, index: int, value) -> float:
        """``atomic::min``: lower ``array[index]`` to ``value`` if smaller;
        return the **old** value (Listing 4's contract)."""
        inst = self._instrument
        if inst is not None:
            inst.before_op(self, "min", index)
        with self._lock_for(index):
            old = self.array[index].item()
            if value < old:
                self.array[index] = value
            if inst is not None:
                inst.record(self, "min", index, old, min(old, value))
            return old

    def max_at(self, index: int, value) -> float:
        """``atomic::max`` twin of :meth:`min_at`."""
        inst = self._instrument
        if inst is not None:
            inst.before_op(self, "max", index)
        with self._lock_for(index):
            old = self.array[index].item()
            if value > old:
                self.array[index] = value
            if inst is not None:
                inst.record(self, "max", index, old, max(old, value))
            return old

    def add_at(self, index: int, value) -> float:
        """``atomic::add``: fetch-and-add returning the old value."""
        inst = self._instrument
        if inst is not None:
            inst.before_op(self, "add", index)
        with self._lock_for(index):
            old = self.array[index].item()
            self.array[index] = old + value
            if inst is not None:
                inst.record(self, "add", index, old, old + value)
            return old

    def compare_exchange(self, index: int, expected, desired) -> Tuple[bool, float]:
        """CAS: if ``array[index] == expected`` set it to ``desired``.

        Returns ``(succeeded, observed_value)``.
        """
        inst = self._instrument
        if inst is not None:
            inst.before_op(self, "cas", index)
        with self._lock_for(index):
            observed = self.array[index].item()
            if observed == expected:
                self.array[index] = desired
                if inst is not None:
                    inst.record(self, "cas", index, observed, desired)
                return True, observed
            if inst is not None:
                inst.record(self, "cas", index, observed, observed)
            return False, observed


def bulk_min_relax(
    values: np.ndarray, indices: np.ndarray, candidates: np.ndarray
) -> np.ndarray:
    """Batched ``atomic::min``: lower ``values[indices]`` toward
    ``candidates``; return a boolean mask of entries that improved on the
    pre-batch state.

    ``improved[k] = candidates[k] < values_before[indices[k]]`` — the
    vectorized reading of Listing 4's ``return new_d < curr_d``.
    """
    old = values[indices].copy()
    np.minimum.at(values, indices, candidates)
    return candidates < old


def bulk_max_relax(
    values: np.ndarray, indices: np.ndarray, candidates: np.ndarray
) -> np.ndarray:
    """Batched ``atomic::max``; mask of entries that raised the value."""
    old = values[indices].copy()
    np.maximum.at(values, indices, candidates)
    return candidates > old
