"""Worker-side superstep kernels for the ``par_proc`` policy.

Each function here is one partition's share of one bulk-synchronous
round, written against **raw arrays** (shared-memory views of the graph
plus a pre-round mirror of the algorithm state).  Two rules make the
multiprocess rounds exactly reproduce the in-process fused kernels
(:mod:`repro.operators.fused`) without cross-process races:

1. **Workers never mutate shared state.**  A concurrent
   ``np.minimum.at`` from several processes can permanently lose the
   smaller of two racing candidates (unlike the in-thread kernels,
   whose races are serialized by the GIL at ufunc granularity).  So a
   worker only *proposes*: it returns compact ``(destination,
   candidate)`` update buffers, pre-filtered against the pre-round
   mirror.
2. **The parent merges deterministically.**  Proposals route through
   the mailbox with a min-combiner; folding the per-destination minimum
   and comparing it against the pre-round value yields exactly the
   ``improved = cand < old`` set the single-pass kernel computes, in
   one place, with no ordering sensitivity.

Dropping a proposal whose candidate is not below the pre-round value
never changes the fold (the filter is monotone), which is what makes
the per-worker pre-filter safe bandwidth reduction rather than a
semantic choice.

These functions are deliberately importable with nothing but NumPy so
the spawn-started workers load fast, and they are unit-tested in
process against the fused kernels (``tests/test_par_proc.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

_EMPTY_PAIR = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))


def _expand(offsets: np.ndarray, vertices: np.ndarray):
    """CSR/CSC segment gather: flat edge ids + per-vertex counts."""
    starts = offsets.take(vertices)
    ends = offsets.take(vertices + 1)
    counts = ends - starts
    cum = counts.cumsum()
    total = int(cum[-1]) if counts.size else 0
    if total == 0:
        return None, counts
    # Segment base of each edge slot: ends - cum == starts - prefix(counts).
    edge_ids = (ends - cum).repeat(counts)
    edge_ids += np.arange(total, dtype=edge_ids.dtype)
    return edge_ids, counts


def min_relax_push(
    row_offsets: np.ndarray,
    column_indices: np.ndarray,
    edge_weights: np.ndarray,
    values: np.ndarray,
    vertices: np.ndarray,
    *,
    weighted: bool = True,
    edge_mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One partition of a push min-relax round (SSSP / CC shape).

    Returns ``(dsts, cand)`` — every expanded edge whose candidate beats
    the destination's pre-round value.  ``values`` is a read-only
    mirror; candidates are computed in its dtype (float32 for
    distances, int64 for CC labels) and returned as float64, the
    mailbox value dtype — lossless both ways for the dtypes in use.
    """
    edge_ids, counts = _expand(row_offsets, vertices)
    if edge_ids is None:
        return _EMPTY_PAIR
    dsts = column_indices.take(edge_ids)
    cand = values.take(vertices).repeat(counts)
    if weighted:
        cand = cand + edge_weights.take(edge_ids)
    if edge_mask is not None:
        live = edge_mask.take(edge_ids)
        dsts = dsts.compress(live)
        cand = cand.compress(live)
    keep = cand < values.take(dsts)
    return dsts.compress(keep), cand.compress(keep).astype(np.float64)


def min_relax_pull(
    col_offsets: np.ndarray,
    row_indices: np.ndarray,
    edge_weights: np.ndarray,
    values: np.ndarray,
    active: np.ndarray,
    candidates: np.ndarray,
    *,
    weighted: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """One partition of a pull min-relax round: the candidate slice's
    in-edges from the active set, filtered like the push side."""
    edge_ids, counts = _expand(col_offsets, candidates)
    if edge_ids is None:
        return _EMPTY_PAIR
    srcs = row_indices.take(edge_ids)
    live = active.take(srcs)
    if not np.any(live):
        return _EMPTY_PAIR
    srcs = srcs.compress(live)
    dsts = np.repeat(candidates, counts).compress(live)
    cand = values.take(srcs)
    if weighted:
        cand = cand + edge_weights.take(edge_ids.compress(live))
    keep = cand < values.take(dsts)
    return dsts.compress(keep), cand.compress(keep).astype(np.float64)


def claim_push(
    row_offsets: np.ndarray,
    column_indices: np.ndarray,
    levels: np.ndarray,
    vertices: np.ndarray,
    *,
    unreached: int = -1,
) -> Tuple[np.ndarray, np.ndarray]:
    """One partition of a push BFS-discovery round.

    Returns ``(claimed_dsts, src_ids)`` for destinations unreached in
    the pre-round mirror.  The parent folds the minimum source per
    destination — a deterministic choice among equally valid BFS
    parents (the in-process kernel's last-write-wins pick is another).
    """
    edge_ids, counts = _expand(row_offsets, vertices)
    if edge_ids is None:
        return _EMPTY_PAIR
    dsts = column_indices.take(edge_ids)
    fresh = levels.take(dsts) == unreached
    if not np.any(fresh):
        return _EMPTY_PAIR
    srcs = vertices.repeat(counts).compress(fresh)
    return dsts.compress(fresh), srcs.astype(np.float64)


def claim_pull(
    col_offsets: np.ndarray,
    row_indices: np.ndarray,
    levels: np.ndarray,
    active: np.ndarray,
    candidates: np.ndarray,
    *,
    unreached: int = -1,
) -> Tuple[np.ndarray, np.ndarray]:
    """One partition of a pull BFS-discovery round: unreached candidates
    scan their in-edges for an active parent."""
    edge_ids, counts = _expand(col_offsets, candidates)
    if edge_ids is None:
        return _EMPTY_PAIR
    srcs = row_indices.take(edge_ids)
    live = active.take(srcs)
    if not np.any(live):
        return _EMPTY_PAIR
    srcs = srcs.compress(live)
    dsts = np.repeat(candidates, counts).compress(live)
    fresh = levels.take(dsts) == unreached
    if not np.any(fresh):
        return _EMPTY_PAIR
    return dsts.compress(fresh), srcs.compress(fresh).astype(np.float64)


def pagerank_range(
    col_offsets: np.ndarray,
    row_indices: np.ndarray,
    edge_weights: np.ndarray,
    ranks: np.ndarray,
    out_weight: np.ndarray,
    incoming: np.ndarray,
    lo: int,
    hi: int,
) -> int:
    """Incoming rank mass for the vertex range ``[lo, hi)`` (CSC slice).

    The one kernel that *writes* shared memory: ``incoming`` rows are
    partitioned contiguously across workers, so writes are disjoint and
    re-running the range after a worker crash is idempotent.  Returns
    the edge count processed (the round's work accounting).
    """
    e0 = int(col_offsets[lo])
    e1 = int(col_offsets[hi])
    if e1 == e0:
        incoming[lo:hi] = 0.0
        return 0
    srcs = row_indices[e0:e1]
    ow = out_weight.take(srcs)
    share = ranks.take(srcs) / np.maximum(ow, 1e-300)
    np.copyto(share, 0.0, where=ow == 0)
    contrib = edge_weights[e0:e1].astype(np.float64) * share
    cols = np.repeat(
        np.arange(lo, hi, dtype=np.int64) - lo,
        np.diff(col_offsets[lo : hi + 1]),
    )
    incoming[lo:hi] = np.bincount(cols, weights=contrib, minlength=hi - lo)
    return e1 - e0
