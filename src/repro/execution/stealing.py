"""Work-stealing asynchronous scheduler — the locality-aware ``par_nosync``
engine.

The shared-queue :class:`~repro.execution.scheduler.AsyncScheduler` is
simple but every push/pop crosses one lock.  The work-stealing variant
gives each worker a private deque: a task's children are pushed to the
*owner's* deque (LIFO — depth-first, cache-warm), and an idle worker
steals from a random victim's opposite end (FIFO — the oldest, largest
subproblems), Blumofe–Leiserson style.  Same quiescence-based
termination, same monotone-task contract; the scheduler tests assert
both engines process identical task multisets.
"""

from __future__ import annotations

import collections
import threading
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.errors import ExecutionPolicyError
from repro.execution.scheduler import ProcessFn
from repro.observability.probe import active_probe
from repro.resilience.deadline import active_token
from repro.utils.counters import WorkCounter
from repro.utils.rng import resolve_rng


class _Deque:
    """A locked deque; owner pushes/pops the front, thieves take the back.

    A mutex per deque (rather than a lock-free structure) is the honest
    Python rendition: contention is already rare because thieves only
    arrive when idle.
    """

    __slots__ = ("items", "lock")

    def __init__(self) -> None:
        self.items: collections.deque = collections.deque()
        self.lock = threading.Lock()

    def push(self, item: int) -> None:
        with self.lock:
            self.items.appendleft(item)

    def pop(self) -> Optional[int]:
        with self.lock:
            if self.items:
                return self.items.popleft()
        return None

    def steal(self) -> Optional[int]:
        with self.lock:
            if self.items:
                return self.items.pop()
        return None

    def __len__(self) -> int:
        with self.lock:
            return len(self.items)


class WorkStealingScheduler:
    """Per-worker deques with random stealing and quiescence detection."""

    def __init__(
        self,
        num_workers: int = 4,
        *,
        seed: int = 0,
        poll_timeout: float = 0.001,
    ) -> None:
        if num_workers < 1:
            raise ExecutionPolicyError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self.num_workers = num_workers
        self.seed = seed
        self.poll_timeout = poll_timeout
        #: Steals performed in the last run (the imbalance telemetry).
        self.steals = 0

    def run(
        self,
        process: ProcessFn,
        initial_items: Iterable[int],
        capacity: int,
        *,
        timeout: Optional[float] = None,
    ) -> int:
        """Drive ``process`` to quiescence; returns tasks processed.

        The calling thread's ambient
        :class:`~repro.resilience.deadline.CancelToken` (if any) clamps
        ``timeout`` and aborts the quiescence wait when it fires; the
        deques are drained and workers joined before the
        :class:`~repro.errors.CancellationError` propagates.
        """
        token = active_token()
        if token is not None and token.deadline is not None:
            remaining = max(0.0, token.deadline.remaining())
            timeout = remaining if timeout is None else min(timeout, remaining)
        deques = [_Deque() for _ in range(self.num_workers)]
        counter = WorkCounter()
        stop = threading.Event()
        errors: List[BaseException] = []
        errors_lock = threading.Lock()
        processed = [0] * self.num_workers
        steal_counts = [0] * self.num_workers

        items = list(initial_items)
        counter.add(len(items))
        # Seed round-robin so work starts spread out.
        for i, item in enumerate(items):
            deques[i % self.num_workers].push(item)

        probe = active_probe()
        traced = probe.enabled and probe.trace

        def worker(wid: int) -> None:
            rng = resolve_rng(self.seed + wid)
            my = deques[wid]

            def push(item: int) -> None:
                counter.add(1)
                my.push(item)

            idle_event = threading.Event()
            while not stop.is_set():
                stolen = False
                item = my.pop()
                if item is None and self.num_workers > 1:
                    # Scan every victim once, in random order, before
                    # backing off — the standard steal loop.
                    for victim in rng.permutation(self.num_workers):
                        victim = int(victim)
                        if victim == wid:
                            continue
                        item = deques[victim].steal()
                        if item is not None:
                            steal_counts[wid] += 1
                            stolen = True
                            break
                if item is None:
                    # Nothing local, nothing stolen anywhere: brief backoff.
                    idle_event.wait(self.poll_timeout)
                    continue
                try:
                    if traced:
                        with probe.span(
                            "scheduler:task",
                            item=item,
                            worker=wid,
                            stolen=stolen,
                        ):
                            process(item, push)
                    else:
                        process(item, push)
                    processed[wid] += 1
                except BaseException as exc:
                    with errors_lock:
                        errors.append(exc)
                    stop.set()
                finally:
                    counter.done()

        threads = [
            threading.Thread(
                target=worker, args=(w,), name=f"repro-steal-{w}", daemon=True
            )
            for w in range(self.num_workers)
        ]
        for t in threads:
            t.start()
        import time as _time

        timed_out = False
        cancel_fired = False
        try:
            if items:
                # Sliced wait (like AsyncScheduler): a fired token or an
                # expired budget aborts instead of blocking forever.
                deadline = (
                    None if timeout is None else _time.monotonic() + timeout
                )
                while True:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - _time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        if token is not None and token.should_stop():
                            cancel_fired = True
                        elif not errors:
                            timed_out = True
                        break
                    step_wait = (
                        0.05 if remaining is None else min(0.05, remaining)
                    )
                    if counter.wait_for_quiescence(timeout=step_wait):
                        break
                    if token is not None and token.should_stop():
                        cancel_fired = True
                        break
                    if stop.is_set():
                        break
        finally:
            stop.set()
            if timed_out or cancel_fired:
                # Drain every deque so no worker claims further work
                # during shutdown, then join with a grace period.
                for dq in deques:
                    with dq.lock:
                        dq.items.clear()
                grace = max(1.0, 20 * self.poll_timeout)
                for t in threads:
                    t.join(timeout=grace)
            else:
                for t in threads:
                    t.join()
        self.steals = sum(steal_counts)
        if cancel_fired:
            token.check(f"steal:run ({sum(processed)} processed)")
        if timed_out:
            raise TimeoutError(
                f"work-stealing run did not quiesce within {timeout}s "
                f"({counter.outstanding} outstanding)"
            )
        if errors:
            raise errors[0]
        if probe.enabled:
            probe.counter("scheduler.tasks_processed", sum(processed))
            probe.counter("scheduler.steals", self.steals)
        return sum(processed)
