"""Persistent thread pool backing the parallel-synchronous (``par``) policy.

Spawning threads per operator call would dominate runtime, so one pool
per worker count is cached process-wide and reused across operators and
iterations — the analog of a framework's persistent device context.

:meth:`ThreadPool.parallel_for` is the BSP primitive: it splits an index
space into chunks, runs them on the workers, and **joins all chunks
before returning** (the barrier that makes ``par`` synchronous).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.observability.probe import active_probe

def default_worker_count() -> int:
    """Pool default: ``REPRO_NUM_WORKERS`` when set, else every available
    CPU.  (An earlier hardcoded cap of 8 is gone: on thread pools the GIL
    makes extra workers cheap no-ops rather than harmful, and the env
    knob now pins small pools explicitly — CI runs with
    ``REPRO_NUM_WORKERS=2`` — while big machines get their cores.)"""
    env = os.environ.get("REPRO_NUM_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class ThreadPool:
    """A thin barrier-providing wrapper over ``ThreadPoolExecutor``."""

    def __init__(self, num_workers: Optional[int] = None) -> None:
        self.num_workers = num_workers or default_worker_count()
        self._executor = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="repro-worker"
        )

    def parallel_for(
        self,
        n_items: int,
        body: Callable[[int, int], object],
        *,
        n_chunks: Optional[int] = None,
    ) -> List[object]:
        """Run ``body(start, stop)`` over a partition of ``range(n_items)``.

        Blocks until every chunk finishes (the superstep barrier) and
        returns the chunk results in index order.  Exceptions raised in
        any chunk propagate to the caller after all chunks settle.
        """
        if n_items <= 0:
            return []
        n_chunks = n_chunks or self.num_workers
        bounds = even_chunks(n_items, n_chunks)
        probe = active_probe()
        if probe.enabled and probe.trace:
            inner = body

            def body(s, e):  # noqa: F811 - traced overload of the chunk body
                with probe.span("pool:task", start=s, stop=e):
                    return inner(s, e)

        if len(bounds) == 1:
            # Single chunk: run inline, skip executor overhead.
            return [body(0, n_items)]
        futures = [self._executor.submit(body, s, e) for s, e in bounds]
        wait(futures)
        return [f.result() for f in futures]

    def run_tasks(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Run arbitrary thunks to completion; barrier before returning."""
        if not tasks:
            return []
        probe = active_probe()
        if probe.enabled and probe.trace:
            def traced(thunk, index):
                with probe.span("pool:task", index=index):
                    return thunk()

            futures = [
                self._executor.submit(traced, t, i)
                for i, t in enumerate(tasks)
            ]
        else:
            futures = [self._executor.submit(t) for t in tasks]
        wait(futures)
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        """Join all workers and release the executor."""
        self._executor.shutdown(wait=True)


def even_chunks(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous
    near-equal ``(start, stop)`` spans (the vertex-balanced schedule).
    Empty input yields no chunks."""
    if n_items <= 0:
        return []
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    bounds = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


_pools: Dict[int, ThreadPool] = {}
_pools_lock = threading.Lock()


def get_pool(num_workers: Optional[int] = None) -> ThreadPool:
    """Fetch (or lazily create) the process-wide pool for a worker count."""
    key = num_workers or default_worker_count()
    with _pools_lock:
        pool = _pools.get(key)
        if pool is None:
            pool = ThreadPool(key)
            _pools[key] = pool
        return pool
