"""Workspace: pooled scratch buffers reused across supersteps.

Every superstep of a BSP run needs the same short-lived arrays — the
gathered edge tuples, candidate values, improvement masks, the dense
active bitmap of a pull advance — and allocating them fresh each
iteration dominates the fixed cost of small-frontier supersteps.  A
:class:`Workspace` keeps one named, geometrically-grown buffer per use
site and hands out length-``size`` views, so steady-state supersteps
allocate nothing.

An :class:`~repro.loop.enactor.Enactor` owns one workspace for its
run (``enactor.workspace``); algorithms thread it into
:func:`~repro.operators.advance.neighbors_expand` and the fused kernels
via the ``workspace=`` keyword.  Call sites that receive ``None`` fall
back to plain allocation, so the workspace is an optimization, never a
requirement.

Not thread-safe by design: one workspace serves one superstep-driving
thread (the vectorized policy's whole point is that the superstep body
is a single thread issuing bulk kernels).  Threaded-policy chunk bodies
must not share it; ``neighbors_expand`` only uses it on the vectorized
and pull paths.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.types import EDGE_DTYPE

_MIN_ROOM = 16


class Workspace:
    """Named pool of reusable scratch arrays.

    Buffers are keyed by call-site name; a request larger than the
    pooled buffer (or with a different dtype) reallocates geometrically,
    anything else is a zero-allocation slice.  ``hits``/``misses`` count
    reuse vs (re)allocation — the workspace-efficiency numbers the
    fused-kernel bench reports.
    """

    __slots__ = ("_buffers", "_arange", "hits", "misses")

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self._arange = np.empty(0, dtype=EDGE_DTYPE)
        self.hits = 0
        self.misses = 0

    def array(
        self, name: str, size: int, dtype: Union[np.dtype, type]
    ) -> np.ndarray:
        """A length-``size`` scratch view named ``name`` (contents
        undefined — callers must overwrite before reading)."""
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dtype or buf.shape[0] < size:
            room = max(size, _MIN_ROOM)
            if buf is not None and buf.dtype == dtype:
                room = max(room, buf.shape[0] * 2)
            buf = np.empty(room, dtype=dtype)
            self._buffers[name] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf[:size]

    def cleared(
        self, name: str, size: int, dtype: Union[np.dtype, type]
    ) -> np.ndarray:
        """Like :meth:`array` but zero-filled (False for bool buffers)."""
        out = self.array(name, size, dtype)
        out.fill(0)
        return out

    def take(self, name: str, source: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """``source[indices]`` gathered into the named pooled buffer."""
        out = self.array(name, indices.shape[0], source.dtype)
        source.take(indices, out=out)
        return out

    def arange(self, size: int) -> np.ndarray:
        """View of a cached ``0..size-1`` ramp (edge-id dtype).

        The ramp is the backbone of the multi-range gather in the fused
        kernels — caching it replaces a per-superstep ``np.arange``.
        """
        if self._arange.shape[0] < size:
            self._arange = np.arange(
                max(size, _MIN_ROOM, self._arange.shape[0] * 2), dtype=EDGE_DTYPE
            )
            self.misses += 1
        else:
            self.hits += 1
        return self._arange[:size]

    @property
    def nbytes(self) -> int:
        """Bytes currently pooled across all buffers."""
        total = sum(b.nbytes for b in self._buffers.values())
        return total + self._arange.nbytes

    def clear(self) -> None:
        """Drop every pooled buffer (frees memory; counters keep)."""
        self._buffers.clear()
        self._arange = np.empty(0, dtype=EDGE_DTYPE)

    def __repr__(self) -> str:
        return (
            f"Workspace(buffers={len(self._buffers)}, nbytes={self.nbytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )
