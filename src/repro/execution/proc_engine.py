"""Driver-side orchestration of ``par_proc`` supersteps.

The engine is the parent half of the multiprocess policy: it places
graph views and per-superstep state in shared memory
(:class:`~repro.execution.shm.ShmArena`), cuts each round across the
worker pool along the frontier's degree curve, and merges the workers'
proposal buffers back into the real algorithm state through the
**existing** comm substrate — :class:`~repro.comm.mailbox.MailboxRouter`
over a :func:`~repro.partition.chunking.contiguous_partition` owner map,
folding with a :class:`~repro.comm.messages.MinCombiner` — so boundary
updates flow through the same machinery (and the same chaos seams,
retry-backed for at-least-once delivery) as the simulated-distributed
engines.

Why the merge is exact (see :mod:`repro.execution.proc_kernels` for the
worker half): vertex ownership is *contiguous*, so the per-rank combined
inboxes are disjoint, internally sorted, and concatenate in rank order
into a globally sorted unique update set — precisely the deduplicated
emission contract of the in-process fused kernels, with the
``improved = folded < pre_round`` comparison done once, in the parent,
deterministically.

One engine per process (:func:`get_engine`); rounds are serialized by a
lock so concurrent service-layer queries interleave at superstep
granularity rather than corrupting each other's mirror slots.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.mailbox import MailboxRouter
from repro.comm.messages import MinCombiner
from repro.execution import shm
from repro.execution.proc_pool import (
    default_proc_workers,
    get_proc_pool,
    in_worker_process,
    shutdown_pools,
)
from repro.frontier.dense import DenseFrontier
from repro.frontier.sparse import SparseFrontier
from repro.observability.probe import active_probe
from repro.operators.load_balance import make_chunks
from repro.partition.chunking import contiguous_partition
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import RetryPolicy
from repro.types import VERTEX_DTYPE

#: Bounded cache of static-array placements (edge masks, out-weight
#: vectors): big enough for every live algorithm run in a realistic
#: process, small enough that abandoned arrays get their segments back.
_STATIC_CACHE_LIMIT = 16

_EMPTY_MERGE = (
    np.empty(0, dtype=VERTEX_DTYPE),
    np.empty(0, dtype=np.float64),
)


def _shm_ref(descriptor: shm.Descriptor) -> Tuple[str, shm.Descriptor]:
    """Tag a whole-array descriptor for the worker-side resolver."""
    return ("shm", descriptor)


def _shm_slice(descriptor: shm.Descriptor, lo: int, hi: int):
    """Tag a ``[lo, hi)`` slice of a shared array (a worker's chunk of
    the round's work list — sliced worker-side, shipped once)."""
    return ("shm_slice", descriptor, int(lo), int(hi))


def _is_sorted(arr: np.ndarray) -> bool:
    return arr.size < 2 or bool(np.all(arr[1:] >= arr[:-1]))


class ProcEngine:
    """Shared-memory placement + round orchestration for ``par_proc``."""

    def __init__(self) -> None:
        self.arena = shm.ShmArena()
        self._lock = threading.RLock()
        # Graph placements keyed by id(graph); a weakref.finalize on the
        # facade releases the segments once the graph is collected (the
        # CSR/CSC views carry __slots__ without __weakref__; the facade
        # is a plain class, so it is the referent).
        self._graphs: Dict[int, Dict[str, Dict[str, shm.Descriptor]]] = {}
        self._static: Dict[int, Tuple[np.ndarray, shm.Descriptor]] = {}
        # Owner maps are contiguous partitions — a function of shape
        # only — so routers key by (n_vertices, n_workers).
        self._routers: Dict[Tuple[int, int], MailboxRouter] = {}

    # -- placement ---------------------------------------------------------------------

    def _graph_share(self, graph, view: str) -> Dict[str, shm.Descriptor]:
        """Descriptors of a graph view's arrays, placing them on first use."""
        key = id(graph)
        with self._lock:
            views = self._graphs.get(key)
            if views is None:
                views = {}
                self._graphs[key] = views
                weakref.finalize(graph, self._release_graph, key)
            placed = views.get(view)
            if placed is not None:
                return placed
            mat = graph.csr() if view == "csr" else graph.csc()
            offsets = mat.row_offsets if view == "csr" else mat.col_offsets
            indices = mat.column_indices if view == "csr" else mat.row_indices
            placed = {
                "offsets": self.arena.place(offsets),
                "indices": self.arena.place(indices),
                "weights": self.arena.place(mat.values),
            }
            views[view] = placed
            return placed

    def _release_graph(self, key: int) -> None:
        with self._lock:
            views = self._graphs.pop(key, None)
            if views is None:
                return
            for placed in views.values():
                for descriptor in placed.values():
                    self.arena.release(descriptor)

    def _static_share(self, arr: np.ndarray) -> shm.Descriptor:
        """Immutable placement cached by array identity (edge masks,
        out-weight vectors — constant across one algorithm's supersteps)."""
        key = id(arr)
        with self._lock:
            hit = self._static.get(key)
            if hit is not None and hit[0] is arr:
                return hit[1]
            if len(self._static) >= _STATIC_CACHE_LIMIT:
                _, descriptor = self._static.pop(next(iter(self._static)))
                self.arena.release(descriptor)
            descriptor = self.arena.place(arr)
            self._static[key] = (arr, descriptor)
            return descriptor

    def _mirror(self, slot: str, arr: np.ndarray) -> shm.Descriptor:
        before = self.arena.bytes_copied
        descriptor = self.arena.mirror(slot, arr)
        probe = active_probe()
        if probe.enabled:
            probe.counter("comm.bytes", self.arena.bytes_copied - before)
        return descriptor

    # -- merge substrate ---------------------------------------------------------------

    def _router(self, graph, n_workers: int) -> MailboxRouter:
        key = (graph.n_vertices, n_workers)
        router = self._routers.get(key)
        if router is None:
            owner_of = contiguous_partition(graph, n_workers).assignment
            # Retry-backed: under chaos injection the mailbox may drop
            # boundary updates; at-least-once redelivery keeps par_proc
            # equivalent (duplicates are free under a min fold).
            router = MailboxRouter(
                owner_of,
                n_workers,
                delivery="superstep",
                resilience=ResiliencePolicy(retry=RetryPolicy(max_attempts=8)),
            )
            self._routers[key] = router
        return router

    def _merge(
        self, graph, replies: List[Optional[dict]], n_workers: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold per-worker proposal buffers into one sorted unique
        ``(destinations, folded_values)`` batch via the mailbox."""
        router = self._router(graph, n_workers)
        probe = active_probe()
        combiner = MinCombiner()
        sent = 0
        for rank, reply in enumerate(replies):
            if reply is None or reply["dsts"] is None:
                continue
            dsts = np.asarray(reply["dsts"])
            if not dsts.size:
                continue
            vals = np.asarray(reply["vals"])
            sent += dsts.nbytes + vals.nbytes
            router.send(dsts, vals, from_rank=rank)
        if sent and probe.enabled:
            probe.counter("comm.bytes", sent)
        parts_d: List[np.ndarray] = []
        parts_v: List[np.ndarray] = []
        # Chaos may delay a batch across a barrier; keep flushing until
        # the router drains so a delayed boundary update lands in this
        # superstep's fold rather than leaking into the next.
        rounds = 0
        while True:
            router.flush_barrier()
            for rank in range(n_workers):
                dsts, vals = router.receive(rank, combiner)
                if dsts.size:
                    parts_d.append(dsts)
                    parts_v.append(vals)
            rounds += 1
            if not router.has_messages():
                break
        if not parts_d:
            return _EMPTY_MERGE
        dsts = parts_d[0] if len(parts_d) == 1 else np.concatenate(parts_d)
        vals = parts_v[0] if len(parts_v) == 1 else np.concatenate(parts_v)
        if rounds > 1 or not _is_sorted(dsts):
            # Delayed redelivery appended late batches out of rank
            # order; one more fold restores sorted-unique.
            dsts, vals = combiner.combine_bulk(dsts, vals)
        return dsts, vals

    # -- round plumbing ----------------------------------------------------------------

    def _dispatch(self, pool, fn: str, per_rank_args, phase: str):
        """Run one round, stitching per-worker busy times into the trace
        as ``proc:task`` spans and bumping the round/byte counters."""
        probe = active_probe()
        retire = self.arena.drain_retired()
        if not probe.enabled:
            return pool.run_round(fn, per_rank_args, retire)
        with probe.span(
            "proc:round", fn=fn, phase=phase, workers=pool.num_workers
        ):
            replies = pool.run_round(fn, per_rank_args, retire)
            probe.counter("proc.rounds")
            probe.gauge("proc.workers", pool.num_workers)
            returned = 0
            busy_total = 0.0
            for rank, reply in enumerate(replies):
                if reply is None:
                    continue
                if reply["dsts"] is not None:
                    returned += (
                        np.asarray(reply["dsts"]).nbytes
                        + np.asarray(reply["vals"]).nbytes
                    )
                busy = float(reply["busy"])
                busy_total += busy
                task_attrs = {"worker": rank, "fn": fn}
                if reply.get("trace") is not None:
                    # The echoed round-frame trace id: stitched worker
                    # intervals stay attributable to their query.
                    task_attrs["trace_id"] = reply["trace"]
                probe.record_span("proc:task", duration=busy, **task_attrs)
            if busy_total:
                # Busy seconds accumulate so the service can derive the
                # pool's busy fraction (busy / (uptime * workers)).
                probe.counter("proc.busy_seconds", busy_total)
            if returned:
                probe.counter("comm.bytes", returned)
        return replies

    # -- advance rounds ----------------------------------------------------------------

    def advance(
        self,
        policy,
        graph,
        kernel,
        *,
        direction: str,
        work_ids: np.ndarray,
        active_flags: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One par_proc advance superstep.

        Push: expand ``work_ids``' (the frontier's) out-edges.  Pull:
        scan ``work_ids``' (the candidates') in-edges against
        ``active_flags``.  Returns the merged ``(destinations,
        folded_values)`` proposals — sorted, unique, pre-filtered by the
        workers against the pre-round state mirror; the caller applies
        them and emits the output frontier.
        """
        n_workers = self._worker_count(policy)
        pool = get_proc_pool(n_workers)
        with self._lock:
            is_min_relax = kernel.name == "min_relax"
            fn = ("min_relax_" if is_min_relax else "claim_") + direction
            gdesc = self._graph_share(
                graph, "csr" if direction == "push" else "csc"
            )
            if direction == "push":
                offsets = graph.csr().row_offsets
                args_offsets, args_indices = "row_offsets", "column_indices"
                args_work = "vertices"
            else:
                offsets = graph.csc().col_offsets
                args_offsets, args_indices = "col_offsets", "row_indices"
                args_work = "candidates"
            degrees = offsets[work_ids + 1] - offsets[work_ids]
            chunks = make_chunks(degrees, n_workers, policy.load_balance)
            work_desc = self._mirror("round.work", work_ids)
            base: Dict[str, object] = {
                args_offsets: _shm_ref(gdesc["offsets"]),
                args_indices: _shm_ref(gdesc["indices"]),
            }
            if is_min_relax:
                state = kernel.values
                base["edge_weights"] = _shm_ref(gdesc["weights"])
                base["values"] = _shm_ref(self._mirror("state.values", state))
                base["weighted"] = kernel.weighted
                if direction == "push" and kernel.edge_mask is not None:
                    base["edge_mask"] = _shm_ref(
                        self._static_share(kernel.edge_mask)
                    )
            else:
                state = kernel.levels
                base["levels"] = _shm_ref(self._mirror("state.values", state))
                base["unreached"] = kernel.unreached
            if direction == "pull":
                base["active"] = _shm_ref(
                    self._mirror("round.active", active_flags)
                )
            per_rank: List[Optional[Dict]] = [None] * n_workers
            for rank, (lo, hi) in enumerate(chunks[:n_workers]):
                args = dict(base)
                args[args_work] = _shm_slice(work_desc, lo, hi)
                per_rank[rank] = args
            replies = self._dispatch(pool, fn, per_rank, "advance")
            return self._merge(graph, replies, n_workers)

    # -- pagerank ----------------------------------------------------------------------

    def pagerank_incoming(
        self, policy, graph, ranks: np.ndarray, out_weight: np.ndarray
    ) -> np.ndarray:
        """One PageRank superstep's incoming-mass vector, computed over
        contiguous CSC column ranges in parallel (disjoint shared
        writes; re-running a range after a crash is idempotent)."""
        n = graph.n_vertices
        n_workers = self._worker_count(policy)
        pool = get_proc_pool(n_workers)
        with self._lock:
            gdesc = self._graph_share(graph, "csc")
            ranks_ref = _shm_ref(self._mirror("pr.ranks", ranks))
            ow_ref = _shm_ref(self._static_share(out_weight))
            inc_desc, incoming = self.arena.slot_array(
                "pr.incoming", n, np.float64
            )
            in_degrees = np.diff(graph.csc().col_offsets)
            chunks = make_chunks(in_degrees, n_workers, policy.load_balance)
            per_rank: List[Optional[Dict]] = [None] * n_workers
            for rank, (lo, hi) in enumerate(chunks[:n_workers]):
                per_rank[rank] = {
                    "col_offsets": _shm_ref(gdesc["offsets"]),
                    "row_indices": _shm_ref(gdesc["indices"]),
                    "edge_weights": _shm_ref(gdesc["weights"]),
                    "ranks": ranks_ref,
                    "out_weight": ow_ref,
                    "incoming": _shm_ref(inc_desc),
                    "lo": int(lo),
                    "hi": int(hi),
                }
            self._dispatch(pool, "pagerank_range", per_rank, "pagerank")
            return incoming.copy()

    # -- misc --------------------------------------------------------------------------

    @staticmethod
    def _worker_count(policy) -> int:
        return policy.num_workers or default_proc_workers()

    def shutdown(self) -> None:
        """Release every placement and close the worker pools — the
        explicit cleanup path tests drive; atexit covers normal exit."""
        shutdown_pools()
        with self._lock:
            self._graphs.clear()
            self._static.clear()
            self._routers.clear()
            self.arena.close()


_engine: Optional[ProcEngine] = None
_engine_lock = threading.Lock()


def get_engine() -> ProcEngine:
    """The process-wide engine (created on first par_proc superstep)."""
    global _engine
    with _engine_lock:
        if _engine is None:
            _engine = ProcEngine()
        return _engine


def engine_started() -> bool:
    """Whether a par_proc engine exists in this process."""
    return _engine is not None


def proc_available() -> bool:
    """Whether par_proc may run rounds here (never inside a worker —
    nesting would fork-bomb; the policy falls back to the in-process
    vectorized path)."""
    return not in_worker_process()


def shutdown() -> None:
    """Tear down the engine, its pools, and every shared segment."""
    global _engine
    with _engine_lock:
        engine, _engine = _engine, None
    if engine is not None:
        engine.shutdown()
    else:
        shutdown_pools()
    shm.unlink_all()


# -- operator integration --------------------------------------------------------------


def _active_flags_of(frontier, n: int) -> np.ndarray:
    """Dense bool copy of a frontier's active set (mirrored to workers)."""
    if isinstance(frontier, DenseFrontier):
        return frontier.flags_view()
    flags = np.zeros(n, dtype=bool)
    idx = (
        frontier.indices_view()
        if isinstance(frontier, SparseFrontier)
        else frontier.to_indices()
    )
    if idx.size:
        flags[idx] = True
    return flags


def proc_expand(
    policy, graph, frontier, kernel, output, direction, candidates
):
    """The ``par_proc`` overload of ``neighbors_expand``'s fused route.

    Runs the superstep as a sharded round, applies the merged proposals
    to the kernel's state exactly as the single-pass kernel would, and
    emits the (sorted, deduplicated) output frontier.  Returns ``None``
    when the round cannot run here (inside a worker process), letting
    the dispatch fall back to the in-process vectorized overload.
    """
    if not proc_available():
        return None
    engine = get_engine()
    n = graph.n_vertices
    if direction == "push":
        if isinstance(frontier, SparseFrontier):
            work_ids = frontier.indices_view()
        else:
            work_ids = frontier.to_indices()
        active_flags = None
    else:
        if candidates is None:
            work_ids = np.arange(n, dtype=VERTEX_DTYPE)
        else:
            work_ids = np.asarray(candidates, dtype=VERTEX_DTYPE).ravel()
        active_flags = _active_flags_of(frontier, n)
    if work_ids.size == 0:
        return output
    dsts, folded = engine.advance(
        policy,
        graph,
        kernel,
        direction=direction,
        work_ids=work_ids,
        active_flags=active_flags,
    )
    if dsts.size == 0:
        return output
    if kernel.name == "min_relax":
        values = kernel.values
        cand = folded.astype(values.dtype)
        improved = cand < values[dsts]
        winners = dsts[improved]
        if winners.size == 0:
            return output
        values[winners] = cand[improved]
    else:
        levels = kernel.levels
        fresh = levels[dsts] == kernel.unreached
        winners = dsts[fresh]
        if winners.size == 0:
            return output
        srcs = folded[fresh].astype(kernel.parents.dtype)
        # The fold picked the minimum proposing parent per child — one
        # deterministic choice among the equally valid parents the
        # in-process kernel resolves by last write.  Levels agree
        # exactly: every proposer sits in the current frontier.
        levels[winners] = levels[srcs] + 1
        kernel.parents[winners] = srcs
    if isinstance(output, SparseFrontier):
        output.add_many_trusted(winners)
    else:
        output.add_many(winners)
    return output
