"""Asynchronous task scheduler — the ``par_nosync`` engine.

Implements the Atos-style model the paper adopts for asynchrony
(§III-A, §IV-B "++Asynchrony and Message-Passing"): work items live on a
shared queue; workers pull whenever they are free, process, and push any
newly generated items back — **no superstep barriers anywhere**.
Termination is quiescence: an outstanding-work counter reaches zero with
the queue empty.

Because items are processed the moment a worker is free, a vertex may be
processed several times with progressively better values (e.g. SSSP
relaxations); the contract is that ``process`` must be *monotone* (safe
to re-run with stale inputs), which label-correcting graph algorithms
satisfy by construction.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional

from repro.errors import ExecutionPolicyError
from repro.frontier.queue import AsyncQueueFrontier
from repro.utils.counters import WorkCounter

#: ``process(item, push)`` — handle one work item, calling ``push(new_item)``
#: for each follow-on item it generates.
ProcessFn = Callable[[int, Callable[[int], None]], None]


class AsyncScheduler:
    """Quiescence-detecting asynchronous work-queue executor.

    Parameters
    ----------
    num_workers:
        Worker thread count.
    poll_timeout:
        Seconds a worker blocks on an empty queue before re-checking the
        stop flag (bounds shutdown latency, not correctness).
    """

    def __init__(self, num_workers: int = 4, *, poll_timeout: float = 0.01) -> None:
        if num_workers < 1:
            raise ExecutionPolicyError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self.num_workers = num_workers
        self.poll_timeout = poll_timeout

    def run(
        self,
        process: ProcessFn,
        initial_items: Iterable[int],
        capacity: int,
        *,
        timeout: Optional[float] = None,
    ) -> int:
        """Drive ``process`` over ``initial_items`` and everything they spawn.

        Returns the total number of items processed.  Raises
        :class:`TimeoutError` if quiescence is not reached in ``timeout``
        seconds; re-raises the first worker exception, if any.
        """
        queue = AsyncQueueFrontier(capacity)
        counter = WorkCounter()
        processed = [0] * self.num_workers
        stop = threading.Event()
        errors: List[BaseException] = []
        errors_lock = threading.Lock()

        items = list(initial_items)
        # Count before enqueueing so the counter can never hit zero while
        # seeded items are still in flight.
        counter.add(len(items))
        queue.add_many(items)

        def push(item: int) -> None:
            counter.add(1)
            queue.add(item)

        def worker(worker_id: int) -> None:
            while not stop.is_set():
                item = queue.pop(timeout=self.poll_timeout)
                if item is None:
                    continue
                try:
                    process(item, push)
                    processed[worker_id] += 1
                except BaseException as exc:  # propagate to the caller
                    with errors_lock:
                        errors.append(exc)
                    stop.set()
                finally:
                    counter.done()

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"repro-async-{i}", daemon=True
            )
            for i in range(self.num_workers)
        ]
        for t in threads:
            t.start()
        try:
            if items:
                quiesced = counter.wait_for_quiescence(timeout=timeout)
                if not quiesced and not errors:
                    raise TimeoutError(
                        f"async run did not quiesce within {timeout}s "
                        f"({counter.outstanding} items outstanding)"
                    )
        finally:
            stop.set()
            for t in threads:
                t.join()
        if errors:
            raise errors[0]
        return sum(processed)
