"""Asynchronous task scheduler — the ``par_nosync`` engine.

Implements the Atos-style model the paper adopts for asynchrony
(§III-A, §IV-B "++Asynchrony and Message-Passing"): work items live on a
shared queue; workers pull whenever they are free, process, and push any
newly generated items back — **no superstep barriers anywhere**.
Termination is quiescence: an outstanding-work counter reaches zero with
the queue empty.

Because items are processed the moment a worker is free, a vertex may be
processed several times with progressively better values (e.g. SSSP
relaxations); the contract is that ``process`` must be *monotone* (safe
to re-run with stale inputs), which label-correcting graph algorithms
satisfy by construction.  That same contract is what makes the
resilience layer's per-task retry sound: a task that raised is simply
re-executed in place.

Failure semantics:

* A worker exception stops the run; **all** worker exceptions are
  reported — one failure re-raises it verbatim, several raise an
  :class:`~repro.errors.AggregateWorkerError` with per-worker detail.
* On ``timeout`` the scheduler shuts its workers down (stop flag +
  queue drain + bounded join) before raising :class:`TimeoutError`, so
  no threads are left spinning on the queue after the caller has given
  up.  A worker stuck inside user code cannot be interrupted from
  Python; such threads are daemons and are abandoned after the join
  grace period (the stall watchdog exists to catch them early).
* With a :class:`~repro.resilience.ResiliencePolicy`: tasks run under
  chaos fault points and the retry policy, and supervision restarts
  dead workers and aborts stalled runs with
  :class:`~repro.errors.StallDetected`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import AggregateWorkerError, ExecutionPolicyError
from repro.frontier.queue import AsyncQueueFrontier
from repro.observability.probe import active_probe
from repro.resilience.chaos import active_injector
from repro.resilience.deadline import active_token
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.supervisor import WorkerSupervisor
from repro.utils.counters import WorkCounter

#: ``process(item, push)`` — handle one work item, calling ``push(new_item)``
#: for each follow-on item it generates.
ProcessFn = Callable[[int, Callable[[int], None]], None]


class AsyncScheduler:
    """Quiescence-detecting asynchronous work-queue executor.

    Parameters
    ----------
    num_workers:
        Worker thread count.
    poll_timeout:
        Seconds a worker blocks on an empty queue before re-checking the
        stop flag (bounds shutdown latency, not correctness).
    resilience:
        Optional fault-tolerance policy: per-task retry, chaos fault
        points, worker supervision.  Without one, an ambient chaos
        injector (``with FaultInjector(...):``) still applies — faults
        then abort the run, which is the unprotected baseline behavior.
    """

    def __init__(
        self,
        num_workers: int = 4,
        *,
        poll_timeout: float = 0.01,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        if num_workers < 1:
            raise ExecutionPolicyError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        self.num_workers = num_workers
        self.poll_timeout = poll_timeout
        self.resilience = resilience

    def run(
        self,
        process: ProcessFn,
        initial_items: Iterable[int],
        capacity: int,
        *,
        timeout: Optional[float] = None,
    ) -> int:
        """Drive ``process`` over ``initial_items`` and everything they spawn.

        Returns the total number of items processed.  Raises
        :class:`TimeoutError` if quiescence is not reached in ``timeout``
        seconds; re-raises a single worker exception verbatim and
        aggregates several into :class:`AggregateWorkerError`.

        The calling thread's ambient
        :class:`~repro.resilience.deadline.CancelToken` (if any) bounds
        the run too: its remaining budget clamps ``timeout``, its
        explicit cancel aborts the quiescence wait, and in both cases
        the workers are stopped, the queue drained, and the matching
        :class:`~repro.errors.CancellationError` raised — no threads are
        left spinning after the caller's deadline has passed.
        """
        resilience = self.resilience
        token = active_token()
        if token is not None and token.deadline is not None:
            remaining = max(0.0, token.deadline.remaining())
            timeout = remaining if timeout is None else min(timeout, remaining)
        injector = (
            resilience.active_chaos() if resilience else active_injector()
        )
        retry = resilience.retry if resilience else None
        counters = resilience.counters if resilience else None

        queue = AsyncQueueFrontier(capacity)
        counter = WorkCounter()
        processed_lock = threading.Lock()
        processed = [0]
        stop = threading.Event()
        errors: List[Tuple[int, BaseException]] = []
        errors_lock = threading.Lock()

        items = list(initial_items)
        # Count before enqueueing so the counter can never hit zero while
        # seeded items are still in flight.
        counter.add(len(items))
        queue.add_many(items)

        def push(item: int) -> None:
            counter.add(1)
            queue.add(item)

        def execute(item: int) -> None:
            def attempt() -> None:
                if injector is not None:
                    injector.maybe_fail_task(f"task:{item}")
                process(item, push)

            if retry is not None:
                retry.execute(attempt, site=f"task:{item}", counters=counters)
            else:
                attempt()

        def record_failure(worker_id: int, exc: BaseException) -> None:
            with errors_lock:
                errors.append((worker_id, exc))
            stop.set()

        # Captured once per run: the probe is the run-scoped ambient one,
        # and `traced` hoists the enabled check out of the task loop so
        # the disabled path adds nothing per task.
        probe = active_probe()
        traced = probe.enabled and probe.trace

        def worker(worker_id: int) -> None:
            while not stop.is_set():
                # Death is drawn before claiming work, so a killed worker
                # never strands an in-flight item.
                if injector is not None and injector.should_kill_worker():
                    return
                item = queue.pop(timeout=self.poll_timeout)
                if item is None:
                    continue
                try:
                    if traced:
                        with probe.span(
                            "scheduler:task", item=item, worker=worker_id
                        ):
                            execute(item)
                    else:
                        execute(item)
                    with processed_lock:
                        processed[0] += 1
                except BaseException as exc:  # propagate to the caller
                    record_failure(worker_id, exc)
                finally:
                    counter.done()

        def spawn(worker_id: int) -> threading.Thread:
            t = threading.Thread(
                target=worker,
                args=(worker_id,),
                name=f"repro-async-{worker_id}",
                daemon=True,
            )
            t.start()
            return t

        threads = [spawn(i) for i in range(self.num_workers)]

        supervisor: Optional[WorkerSupervisor] = None
        if resilience is not None and resilience.supervision is not None:

            def on_stall(exc) -> None:
                record_failure(-1, exc)

            supervisor = WorkerSupervisor(
                threads=threads,
                spawn=spawn,
                stop=stop,
                progress=lambda: processed[0],
                outstanding=lambda: counter.outstanding,
                config=resilience.supervision,
                counters=resilience.counters,
                on_stall=on_stall,
            )
            supervisor.start()

        timed_out = False
        cancel_fired = False
        try:
            if items:
                # Wait in slices so a recorded failure (worker exception
                # or stall) aborts the wait immediately instead of
                # blocking until quiescence that dead workers will never
                # produce.
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                wait_slice = max(0.05, self.poll_timeout)
                while True:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        if token is not None and token.should_stop():
                            cancel_fired = True
                        elif not errors:
                            timed_out = True
                        break
                    step_wait = (
                        wait_slice
                        if remaining is None
                        else min(wait_slice, remaining)
                    )
                    if counter.wait_for_quiescence(timeout=step_wait):
                        break
                    if token is not None and token.should_stop():
                        cancel_fired = True
                        break
                    if stop.is_set():
                        break
        finally:
            stop.set()
            if timed_out or cancel_fired:
                # The caller is giving up: drain the queue so no worker
                # picks up further work during shutdown.
                queue.clear()
            if supervisor is not None:
                supervisor.join(timeout=max(1.0, 10 * self.poll_timeout))
            self._join_workers(threads)
        if cancel_fired:
            # Raises QueryCancelled or DeadlineExceeded as appropriate.
            token.check(f"async:run ({processed[0]} processed)")
        if timed_out:
            raise TimeoutError(
                f"async run did not quiesce within {timeout}s "
                f"({counter.outstanding} items outstanding, "
                f"{processed[0]} processed)"
            )
        if errors:
            if len(errors) == 1:
                raise errors[0][1]
            raise AggregateWorkerError(errors) from errors[0][1]
        if probe.enabled:
            probe.counter("scheduler.tasks_processed", processed[0])
        return processed[0]

    def _join_workers(self, threads: List[threading.Thread]) -> None:
        """Join workers with a grace period; a thread wedged in user code
        is abandoned (it is a daemon and holds no library locks)."""
        grace = max(1.0, 20 * self.poll_timeout)
        for t in threads:
            t.join(timeout=grace)
