"""Shared-memory array placement for the multiprocess (``par_proc``) policy.

The GIL makes thread pools a one-core ceiling for Python supersteps, so
``par_proc`` moves work into worker *processes*.  What makes that viable
is zero-copy data placement: the graph's CSR/CSC arrays and each
superstep's vertex-property mirrors live in ``multiprocessing.shared_memory``
segments, and every worker maps the same pages as ordinary NumPy views —
the workers never receive a pickled graph.

Two placement disciplines, matching how the data behaves:

* :meth:`ShmArena.place` — immutable placement for graph topology.  The
  array is copied into a fresh segment once and the descriptor stays
  valid for the arena's lifetime (workers cache their attachment).
* :meth:`ShmArena.mirror` — a named, reusable *slot* for per-superstep
  state (distances, frontier indices, active flags).  The slot's segment
  is reused while the payload fits; growth allocates a **new** segment
  under a new name and retires the old one, so a worker holding a stale
  cached attachment can never read a resized buffer — the name is the
  version.

Cleanup is layered: arenas unlink their segments on :meth:`close`, and a
module-level ``atexit`` hook unlinks anything still live at interpreter
exit.  Resource-tracker bookkeeping stays consistent because spawn
workers share the parent's tracker process: a worker's attach
re-registers a name the parent already registered (the tracker's cache
is a set, so the entry stays single) and the parent's unlink clears it
exactly once — no leak warnings, no double-unregister KeyErrors.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

#: ``(segment_name, dtype_str, length)`` — everything a worker needs to
#: rebuild a 1-D NumPy view of a shared segment.  Deliberately tiny and
#: picklable: descriptors ride the control pipe, arrays never do.
Descriptor = Tuple[str, str, int]

_SEGMENT_PREFIX = "repro_shm"
_counter = itertools.count()

#: Every segment this process created and has not yet unlinked, for the
#: atexit sweep and the leak assertions in tests.
_live_segments: Dict[str, shared_memory.SharedMemory] = {}
_live_lock = threading.Lock()


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a uniquely named segment (pid-scoped names; a stale name
    from a crashed previous process is skipped, not reused)."""
    nbytes = max(1, int(nbytes))
    while True:
        name = f"{_SEGMENT_PREFIX}_{os.getpid()}_{next(_counter)}"
        try:
            seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:  # pragma: no cover - leftover from a dead pid
            continue
        with _live_lock:
            _live_segments[name] = seg
        return seg


def _unlink_segment(seg: shared_memory.SharedMemory) -> None:
    # Unlink before close: closing raises BufferError while NumPy views
    # of the buffer are still alive (the parent may hold a slot view),
    # and the name must disappear from /dev/shm regardless — on POSIX an
    # unlinked mapping stays valid until the last close.
    with _live_lock:
        _live_segments.pop(seg.name, None)
    try:
        seg.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass
    try:
        seg.close()
    except BufferError:  # live views; pages are reclaimed when they die
        pass


def live_segment_names() -> List[str]:
    """Names of segments this process currently owns (tests assert this
    drains to empty after :func:`unlink_all`)."""
    with _live_lock:
        return sorted(_live_segments)


def unlink_all() -> None:
    """Unlink every segment this process still owns (idempotent)."""
    with _live_lock:
        segs = list(_live_segments.values())
        _live_segments.clear()
    for seg in segs:
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
        try:
            seg.close()
        except BufferError:  # pragma: no cover - live views at exit
            pass


atexit.register(unlink_all)


def _as_flat(arr: np.ndarray) -> np.ndarray:
    arr = np.ascontiguousarray(arr)
    return arr.reshape(-1) if arr.ndim != 1 else arr


class _Slot:
    """One reusable mirror slot: a segment plus its current payload size."""

    __slots__ = ("seg", "capacity", "descriptor")

    def __init__(self, seg: shared_memory.SharedMemory, capacity: int) -> None:
        self.seg = seg
        self.capacity = capacity
        self.descriptor: Optional[Descriptor] = None


class ShmArena:
    """Parent-side registry of shared segments: immutable placements,
    reusable mirror slots, and the retire queue workers drain.

    Thread-safe: the serving layer may drive concurrent ``par_proc``
    queries from several threads (the engine serializes rounds, but
    placement can race with cleanup).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._placed: Dict[str, shared_memory.SharedMemory] = {}
        self._slots: Dict[str, _Slot] = {}
        #: Segment names retired since the last :meth:`drain_retired` —
        #: shipped to workers so they drop stale cached attachments.
        self._retired: List[str] = []
        self.bytes_copied = 0

    # -- immutable placement -----------------------------------------------------------

    def place(self, arr: np.ndarray) -> Descriptor:
        """Copy ``arr`` into a fresh segment; the descriptor never moves."""
        flat = _as_flat(arr)
        with self._lock:
            seg = _new_segment(flat.nbytes)
            view = np.ndarray(flat.shape, dtype=flat.dtype, buffer=seg.buf)
            view[:] = flat
            self._placed[seg.name] = seg
            self.bytes_copied += flat.nbytes
            return (seg.name, flat.dtype.str, flat.shape[0])

    def release(self, descriptor: Descriptor) -> None:
        """Unlink an immutable placement and queue its name for workers."""
        with self._lock:
            seg = self._placed.pop(descriptor[0], None)
            if seg is not None:
                self._retired.append(seg.name)
                _unlink_segment(seg)

    # -- reusable mirror slots ---------------------------------------------------------

    def mirror(self, slot: str, arr: np.ndarray) -> Descriptor:
        """Copy ``arr`` into the named slot, growing under a new segment
        name when it no longer fits (see module docstring)."""
        flat = _as_flat(arr)
        with self._lock:
            s = self._slots.get(slot)
            if s is None or s.capacity < flat.nbytes:
                if s is not None:
                    self._retired.append(s.seg.name)
                    _unlink_segment(s.seg)
                # Grow with headroom so a frontier oscillating around one
                # size does not reallocate every superstep.
                seg = _new_segment(max(flat.nbytes, 64) * 2)
                s = _Slot(seg, seg.size)
                self._slots[slot] = s
            view = np.ndarray(flat.shape, dtype=flat.dtype, buffer=s.seg.buf)
            view[:] = flat
            self.bytes_copied += flat.nbytes
            s.descriptor = (s.seg.name, flat.dtype.str, flat.shape[0])
            return s.descriptor

    def slot_array(self, slot: str, length: int, dtype) -> Tuple[Descriptor, np.ndarray]:
        """A parent-visible array backed by the named slot (no copy-in):
        workers write it in place (e.g. PageRank's per-range ``incoming``
        rows), the parent reads the same pages after the round barrier."""
        dtype = np.dtype(dtype)
        nbytes = max(1, length * dtype.itemsize)
        with self._lock:
            s = self._slots.get(slot)
            if s is None or s.capacity < nbytes:
                if s is not None:
                    self._retired.append(s.seg.name)
                    _unlink_segment(s.seg)
                seg = _new_segment(nbytes)
                s = _Slot(seg, seg.size)
                self._slots[slot] = s
            view = np.ndarray((length,), dtype=dtype, buffer=s.seg.buf)
            s.descriptor = (s.seg.name, dtype.str, length)
            return s.descriptor, view

    # -- lifecycle ---------------------------------------------------------------------

    def drain_retired(self) -> List[str]:
        """Names retired since the last drain (attach-cache invalidation
        for workers; each name is reported exactly once)."""
        with self._lock:
            retired, self._retired = self._retired, []
            return retired

    def close(self) -> None:
        """Unlink every segment this arena owns (idempotent)."""
        with self._lock:
            for seg in list(self._placed.values()):
                _unlink_segment(seg)
            self._placed.clear()
            for s in list(self._slots.values()):
                _unlink_segment(s.seg)
            self._slots.clear()
            self._retired = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._placed) + len(self._slots)


# -- worker side ----------------------------------------------------------------------

_attached: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def attach(descriptor: Descriptor) -> np.ndarray:
    """Worker-side zero-copy view of a shared segment, cached by name.

    Attaching re-registers the name with the resource tracker, but spawn
    workers share the *parent's* tracker process and its bookkeeping is
    a set — the duplicate collapses, and the single entry is cleared by
    the parent's eventual ``unlink``.  (Do NOT ``unregister`` here: that
    would remove the shared entry early and make the parent's unlink a
    double-unregister, which the tracker logs as a KeyError.)
    """
    name, dtype_str, length = descriptor
    hit = _attached.get(name)
    if hit is None:
        seg = shared_memory.SharedMemory(name=name)
        hit = (seg, np.ndarray((0,), dtype=np.uint8))
        _attached[name] = hit
    seg = hit[0]
    return np.ndarray((length,), dtype=np.dtype(dtype_str), buffer=seg.buf)


def detach(names) -> None:
    """Drop cached attachments for retired segment names."""
    for name in names:
        hit = _attached.pop(name, None)
        if hit is not None:
            try:
                hit[0].close()
            except (OSError, BufferError):  # pragma: no cover
                pass


def detach_all() -> None:
    """Drop every cached attachment (worker shutdown path)."""
    detach(list(_attached))
