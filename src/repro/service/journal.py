"""Query journal: crash-recoverable record of what was in flight.

An append-only JSONL file under the service's data directory.  Every
query writes a ``begin`` event before executing and an ``end`` event
(with the final status code) after; on startup :meth:`recover` scans
the journal, finds queries that began but never ended — the in-flight
set at the moment of a crash — and appends an ``aborted`` event for
each, so history never shows a query as silently unresolved.

The same corrupt-line discipline as the run ledger: a torn final line
from a crashed writer is skipped and counted, never fatal.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional


class QueryJournal:
    """Append-only begin/end/aborted event log for one service."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        #: Corrupt lines skipped by the most recent read pass.
        self.skipped_lines = 0

    # -- writing -----------------------------------------------------------------------

    def _append(self, event: Dict[str, Any]) -> None:
        event = dict(event)
        event.setdefault("ts", time.time())
        line = json.dumps(event, sort_keys=True) + "\n"
        with self._lock:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())

    def begin(
        self,
        qid: str,
        *,
        graph: str,
        algorithm: str,
        tenant: str = "default",
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record that ``qid`` is about to execute."""
        self._append(
            {
                "event": "begin",
                "qid": qid,
                "graph": graph,
                "algorithm": algorithm,
                "tenant": tenant,
                "params": params or {},
            }
        )

    def end(self, qid: str, *, code: int, seconds: float) -> None:
        """Record that ``qid`` finished with the given status code."""
        self._append(
            {"event": "end", "qid": qid, "code": code, "seconds": seconds}
        )

    # -- reading / recovery ------------------------------------------------------------

    def events(self) -> Iterator[Dict[str, Any]]:
        """All parseable events, oldest first (corrupt lines counted in
        :attr:`skipped_lines`, as in the run ledger)."""
        self.skipped_lines = 0
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped_lines += 1
                    continue
                if isinstance(event, dict) and event.get("event"):
                    yield event
                else:
                    self.skipped_lines += 1

    def in_flight(self) -> List[Dict[str, Any]]:
        """Begin events with no matching end/aborted event."""
        open_by_qid: Dict[str, Dict[str, Any]] = {}
        for event in self.events():
            qid = str(event.get("qid"))
            if event["event"] == "begin":
                open_by_qid[qid] = event
            elif event["event"] in ("end", "aborted"):
                open_by_qid.pop(qid, None)
        return list(open_by_qid.values())

    def recover(self) -> List[Dict[str, Any]]:
        """Mark every in-flight query as aborted; returns those begins.

        Called once at service startup: queries that were executing when
        the previous process died are resolved as ``aborted`` (their
        results were never sent, so nothing is lost but the work), and
        the journal is again an exact account of every query's fate.
        """
        orphans = self.in_flight()
        for begin in orphans:
            self._append(
                {
                    "event": "aborted",
                    "qid": begin.get("qid"),
                    "reason": "server restart with query in flight",
                }
            )
        return orphans
