"""Query execution: algorithm dispatch with wire-sized results.

The service cannot ship whole value arrays over a JSONL socket — a
scale-20 PageRank vector is megabytes of floats nobody asked for.  Each
query therefore returns a bounded summary: counts, convergence state,
iteration count, a checksum over the full vector (so two servers — or a
cached and a fresh answer — can be compared for agreement), and the
first ``head`` values for eyeballing.

Partial results: ``pagerank`` and ``ppr`` are anytime algorithms — when
the ambient :class:`~repro.resilience.deadline.CancelToken` fires they
return their last completed iterate with ``converged: false``, which
:func:`execute_query` marks ``partial: true``.  Traversals (``bfs``,
``sssp``, ``cc``) have no useful prefix answer, so their cancellation
propagates as :class:`~repro.errors.DeadlineExceeded` and the server
answers 504.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.errors import ProtocolError
from repro.graph.graph import Graph
from repro.resilience.deadline import active_token

#: Values included verbatim in a result for eyeballing.
HEAD = 8


def _head(values: np.ndarray) -> list:
    return [round(float(v), 9) for v in np.asarray(values)[:HEAD]]


def _checksum(values: np.ndarray) -> float:
    """Order-independent fingerprint of the full value vector."""
    finite = np.asarray(values, dtype=np.float64)
    finite = finite[np.isfinite(finite)]
    return round(float(finite.sum()), 9)


def execute_query(
    graph: Graph,
    algorithm: str,
    params: Dict[str, Any],
    *,
    resilience=None,
) -> Dict[str, Any]:
    """Run one algorithm; returns a JSON-serializable result dict.

    Runs on the caller's thread under whatever ambient cancel token the
    server installed; raises :class:`~repro.errors.CancellationError`
    out of non-anytime algorithms and :class:`ProtocolError` on bad
    parameters (mapped to 400, never 500 — the client's mistake).
    """
    import repro.algorithms as alg

    if "source" in params:
        try:
            source = int(params["source"])
        except (TypeError, ValueError):
            raise ProtocolError(
                f"'source' must be an integer, got {params['source']!r}"
            ) from None
        if not (0 <= source < graph.n_vertices):
            raise ProtocolError(
                f"'source' {source} out of range [0, {graph.n_vertices})"
            )
    try:
        if algorithm == "pagerank":
            r = alg.pagerank(
                graph,
                damping=float(params.get("damping", 0.85)),
                tolerance=float(params.get("tolerance", 1e-6)),
                max_iterations=int(params.get("max_iterations", 100)),
            )
            values, extra = r.ranks, {"delta": r.delta}
        elif algorithm == "ppr":
            r = alg.personalized_pagerank(
                graph,
                params.get("source", 0),
                damping=float(params.get("damping", 0.85)),
                tolerance=float(params.get("tolerance", 1e-8)),
                max_iterations=int(params.get("max_iterations", 200)),
            )
            values, extra = r.ranks, {"seeds": [int(s) for s in r.seeds]}
        elif algorithm == "bfs":
            r = alg.bfs(
                graph,
                int(params.get("source", 0)),
                direction=str(params.get("direction", "push")),
                resilience=resilience,
            )
            values = r.levels
            extra = {"reached": int(np.count_nonzero(r.levels >= 0))}
        elif algorithm == "sssp":
            r = alg.sssp(
                graph,
                int(params.get("source", 0)),
                policy=str(params.get("policy", "par_vector")),
                resilience=resilience,
            )
            values = r.distances
            extra = {
                "reached": int(np.count_nonzero(np.isfinite(r.distances)))
            }
        elif algorithm == "cc":
            r = alg.connected_components(graph, resilience=resilience)
            values, extra = r.labels, {"n_components": int(r.n_components)}
        else:  # pragma: no cover - protocol validation guards this
            raise ProtocolError(f"unknown algorithm {algorithm!r}")
    except (ValueError, KeyError, TypeError) as exc:
        # Bad parameter values (negative damping, out-of-range source,
        # non-numeric strings) are the client's error, not the server's.
        raise ProtocolError(f"bad {algorithm} parameters: {exc}") from exc

    stats = getattr(r, "stats", None)
    converged = bool(getattr(r, "converged", True))
    token = active_token()
    partial = not converged and token is not None and token.should_stop()
    return {
        "algorithm": algorithm,
        "n": int(np.asarray(values).shape[0]),
        "converged": converged,
        "partial": partial,
        "iterations": int(getattr(r, "iterations", 0))
        or (stats.num_iterations if stats is not None else 0),
        "checksum": _checksum(values),
        "head": _head(values),
        **extra,
    }


def make_resilience(retry_attempts: int = 2):
    """The server-side default :class:`ResiliencePolicy`: a couple of
    fast retries so injected chaos faults do not become client errors.

    ``None`` when retries are disabled (attempts <= 1)."""
    if retry_attempts <= 1:
        return None
    from repro.resilience import ResiliencePolicy, RetryPolicy

    return ResiliencePolicy(
        retry=RetryPolicy(
            max_attempts=retry_attempts, base_delay=0.0, max_delay=0.0
        )
    )
