"""Circuit breaker per (graph, algorithm): stop hammering what's broken.

The standard three-state machine:

* **CLOSED** — normal; failures are counted, ``failure_threshold``
  consecutive ones trip the breaker.
* **OPEN** — executions are rejected outright (the server serves stale
  cache or 503) until ``cooldown_s`` has elapsed.
* **HALF_OPEN** — after the cooldown one *probe* execution is let
  through; success closes the breaker, failure re-opens it (and
  restarts the cooldown).

Timeouts count as failures — a (graph, algorithm) pair that keeps
blowing its deadline is exactly the thing the breaker exists to fence
off.  Partial results count as successes: the pipeline produced a
usable answer within budget.

All transitions happen under one lock inside :meth:`allow` /
:meth:`record`; time is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Tuple

from repro.errors import ServiceError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One breaker; see the module docstring for the state machine."""

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ServiceError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ServiceError(f"cooldown_s must be positive, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        # Lifetime accounting.
        self._times_opened = 0
        self._rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May an execution proceed right now?

        OPEN transitions to HALF_OPEN once the cooldown has elapsed, and
        HALF_OPEN admits exactly one probe at a time — concurrent
        callers during the probe are rejected, so a half-open breaker
        cannot be stampeded.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown_s:
                    self._rejections += 1
                    return False
                self._state = HALF_OPEN
                self._probe_in_flight = False
            # HALF_OPEN: one probe slot.
            if self._probe_in_flight:
                self._rejections += 1
                return False
            self._probe_in_flight = True
            return True

    def record(self, success: bool) -> None:
        """Report the outcome of an execution :meth:`allow` admitted."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_in_flight = False
                if success:
                    self._state = CLOSED
                    self._consecutive_failures = 0
                else:
                    self._state = OPEN
                    self._opened_at = self._clock()
                    self._times_opened += 1
                return
            if success:
                self._consecutive_failures = 0
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._times_opened += 1

    def stats(self) -> Dict[str, object]:
        """State, counters, and trip history (for the stats op)."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self._times_opened,
                "rejections": self._rejections,
            }


class BreakerBoard:
    """Lazy map of (graph, algorithm) -> :class:`CircuitBreaker`.

    Failures in ``pagerank`` on one graph must not fence off ``bfs`` on
    another — the failure domain is the pair, hence one breaker each.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def of(self, graph: str, algorithm: str) -> CircuitBreaker:
        """The breaker for one (graph, algorithm) pair, created lazily."""
        key = (graph, algorithm)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    cooldown_s=self.cooldown_s,
                    clock=self._clock,
                )
                self._breakers[key] = breaker
            return breaker

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-pair breaker stats keyed ``"graph/algorithm"``."""
        with self._lock:
            items = list(self._breakers.items())
        return {f"{g}/{a}": b.stats() for (g, a), b in items}
