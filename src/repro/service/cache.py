"""Result cache with stale-while-error: degraded answers beat no answers.

Keyed by (graph, algorithm, canonical params), LRU-evicted at
``capacity``, entries considered *fresh* for ``ttl_s`` seconds.  Two
read paths:

* :meth:`get_fresh` — the fast path consulted before admission; a hit
  skips the whole execution pipeline.
* :meth:`get_stale` — consulted only when the circuit breaker is open
  or execution failed; any cached entry qualifies regardless of age.
  The response is marked ``stale: true`` with its age, so the client
  knows it is looking at the past.

Only *complete* results are cached — a partial (deadline-clipped)
PageRank must never be served later as if it were the fixed point.

Entries also carry the **graph epoch** they were computed at.  When the
graph has since been mutated (``mutate`` op bumped the catalog epoch),
a fresh-path hit at the old epoch is a *miss* — time-based freshness
cannot vouch for a result computed on a graph that no longer exists.
The degraded path (:meth:`get_stale`) still serves old-epoch entries:
it is only consulted when correctness-of-freshness is already forfeit,
and the response says so.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ServiceError


def cache_key(graph: str, algorithm: str, params: Dict[str, Any]) -> str:
    """Canonical cache key: params JSON-serialized with sorted keys."""
    return f"{graph}\x1f{algorithm}\x1f{json.dumps(params, sort_keys=True)}"


class ResultCache:
    """Thread-safe LRU+TTL cache of response ``result`` dicts."""

    def __init__(
        self,
        *,
        capacity: int = 128,
        ttl_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if ttl_s <= 0:
            raise ServiceError(f"ttl_s must be positive, got {ttl_s}")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[float, int, Dict[str, Any]]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._stale_served = 0
        self._epoch_misses = 0
        self._invalidated = 0

    def put(self, key: str, result: Dict[str, Any], *, epoch: int = 0) -> None:
        """Store a complete result computed at graph ``epoch`` (evicting
        LRU past capacity)."""
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (self._clock(), int(epoch), result)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def get_fresh(
        self, key: str, *, epoch: int = 0
    ) -> Optional[Dict[str, Any]]:
        """The result if present, within TTL, *and* computed at the
        current graph ``epoch``; else None.

        An entry from an older epoch is dropped on sight — it describes
        a graph that no longer exists, so even the degraded path should
        not resurrect it for this key once the mutation is known.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._clock() - entry[0] > self.ttl_s:
                self._misses += 1
                return None
            if entry[1] != int(epoch):
                del self._entries[key]
                self._misses += 1
                self._epoch_misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[2]

    def get_stale(self, key: str) -> Optional[Tuple[Dict[str, Any], float]]:
        """Any cached result regardless of age, with its age in seconds.

        The degraded-mode read: correctness of *freshness* is already
        forfeit (the breaker is open / execution failed), so age just
        becomes metadata for the client.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._stale_served += 1
            return entry[2], self._clock() - entry[0]

    def invalidate_graph(self, graph: str) -> int:
        """Drop every entry for ``graph``; returns how many went.

        The ``mutate`` op calls this so no key ever serves a result
        from before the mutation — epoch tags already make such hits
        misses, but eager eviction keeps the stale-degraded path from
        time-traveling too far and frees capacity.
        """
        prefix = f"{graph}\x1f"
        with self._lock:
            doomed = [k for k in self._entries if k.startswith(prefix)]
            for k in doomed:
                del self._entries[k]
            self._invalidated += len(doomed)
            return len(doomed)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Entry count and hit/miss/stale counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "stale_served": self._stale_served,
                "epoch_misses": self._epoch_misses,
                "invalidated": self._invalidated,
            }
