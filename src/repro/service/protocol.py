"""Wire protocol for the query service: one JSON object per line.

JSONL-over-a-socket is the smallest protocol that still carries
structure: a client writes one request object terminated by ``\\n`` and
reads exactly one response line back, so framing is the newline and the
transport needs no length prefixes or content negotiation.  Everything
here is pure data-shaping — the socket code lives in
:mod:`repro.service.server` / :mod:`repro.service.client`, and the
handler logic is testable on plain dicts.

Status codes follow the HTTP idiom because every operator already knows
it: 200 ok, 206 partial result, 400 bad request, 404 unknown graph,
408 admission wait timed out, 429 shed by admission control, 503
breaker open with no stale fallback, 504 deadline exceeded during
execution, 500 everything else.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import ProtocolError

#: Protocol identifier echoed in every response.
PROTOCOL = "repro-query/v1"

#: Hard cap on one frame; a line longer than this is a protocol error
#: (keeps a misbehaving client from ballooning server memory).
MAX_FRAME_BYTES = 1 << 20

#: Operations a request may carry.
OPS = ("query", "mutate", "ping", "stats", "metrics", "catalog", "shutdown")

#: Algorithms the query op accepts.
ALGORITHMS = ("pagerank", "ppr", "bfs", "sssp", "cc")

# -- status codes ----------------------------------------------------------------------

OK = 200
PARTIAL = 206
BAD_REQUEST = 400
UNKNOWN_GRAPH = 404
ADMISSION_TIMEOUT = 408
SHED = 429
INTERNAL = 500
UNAVAILABLE = 503
DEADLINE = 504


def encode(obj: Dict[str, Any]) -> bytes:
    """One frame: compact JSON + newline."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not a JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def _validate_edges(edges: Any, field: str, *, weighted: bool) -> list:
    """Normalize a mutate edge list: ``[src, dst]`` or ``[src, dst, w]``."""
    if edges is None:
        return []
    if not isinstance(edges, list):
        raise ProtocolError(f"'{field}' must be a list of edges")
    out = []
    max_arity = 3 if weighted else 2
    for i, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or not (
            2 <= len(edge) <= max_arity
        ):
            raise ProtocolError(
                f"'{field}'[{i}] must be [src, dst"
                + (", weight?]" if weighted else "]")
            )
        try:
            src, dst = int(edge[0]), int(edge[1])
            weight = float(edge[2]) if len(edge) == 3 else 1.0
        except (TypeError, ValueError):
            raise ProtocolError(
                f"'{field}'[{i}] has non-numeric entries: {edge!r}"
            ) from None
        out.append((src, dst, weight) if weighted else (src, dst))
    return out


def validate_request(req: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize and validate one request; raises :class:`ProtocolError`.

    Returns the request with defaults filled in (``tenant``,
    ``params``); the caller can rely on every field being present and
    type-correct afterwards.
    """
    op = req.get("op", "query")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    out = dict(req)
    out["op"] = op
    out.setdefault("id", None)
    out["tenant"] = str(req.get("tenant") or "default")
    if op == "mutate":
        graph = req.get("graph")
        if not isinstance(graph, str) or not graph:
            raise ProtocolError("mutate needs a 'graph' name (string)")
        out["insert"] = _validate_edges(req.get("insert"), "insert", weighted=True)
        out["remove"] = _validate_edges(req.get("remove"), "remove", weighted=False)
        if not out["insert"] and not out["remove"]:
            raise ProtocolError(
                "mutate needs a non-empty 'insert' or 'remove' list"
            )
        return out
    if op != "query":
        return out
    graph = req.get("graph")
    if not isinstance(graph, str) or not graph:
        raise ProtocolError("query needs a 'graph' name (string)")
    algorithm = req.get("algorithm")
    if algorithm not in ALGORITHMS:
        raise ProtocolError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    params = req.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    timeout_s = req.get("timeout_s")
    if timeout_s is not None:
        try:
            timeout_s = float(timeout_s)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"'timeout_s' must be a number, got {timeout_s!r}"
            ) from None
        if timeout_s <= 0:
            raise ProtocolError(f"'timeout_s' must be positive, got {timeout_s}")
    out["params"] = params
    out["timeout_s"] = timeout_s
    return out


def response(
    req: Optional[Dict[str, Any]],
    code: int,
    *,
    result: Optional[Dict[str, Any]] = None,
    error: Optional[str] = None,
    **server_fields: Any,
) -> Dict[str, Any]:
    """Assemble one response frame for ``req`` (which may be None when
    the request itself was unparseable)."""
    status = "ok" if code == OK else ("partial" if code == PARTIAL else "error")
    out: Dict[str, Any] = {
        "protocol": PROTOCOL,
        "id": (req or {}).get("id"),
        "status": status,
        "code": code,
    }
    if result is not None:
        out["result"] = result
    if error is not None:
        out["error"] = error
    if server_fields:
        out["server"] = server_fields
    return out
