"""The query service: admission → breaker → execute → degrade, in order.

:class:`QueryService` is the heart — a ``handle(request) -> response``
function over plain dicts, so every policy decision is unit-testable
without a socket.  :class:`GraphQueryServer` wraps it in a thread-per-
connection JSONL TCP server.

The pipeline for one query, in order:

1. **Validate** (:func:`~repro.service.protocol.validate_request`) —
   malformed requests cost nothing downstream (400).
2. **Catalog lookup** — unknown graph is 404, before any slot is held.
3. **Fresh cache** — a hit answers immediately; no admission, no
   journal, no breaker traffic.  Hits are epoch-checked: a ``mutate``
   op bumps the graph's epoch, so pre-mutation entries are misses.
4. **Circuit breaker** — open means the (graph, algorithm) pair has
   been failing; serve the stale cache entry if one exists (200 with
   ``stale: true``), else 503.
5. **Admission** — queue-depth and tenant caps shed with 429, an
   admission wait that outlives the deadline sheds with 408.  The wait
   is bounded by the query's *remaining* budget: time queued is time
   burned.
6. **Execute** under an ambient :class:`CancelToken` — cooperative
   cancellation at superstep boundaries turns budget exhaustion into
   504 (or a 206 partial for anytime algorithms), with pools and
   workspaces left reusable.
7. **Settle** — journal the outcome, feed the breaker (client errors
   don't count), cache complete successes, append a ``kind="query"``
   run-ledger record.

Crash recovery: on construction the service replays the query journal
and marks begun-but-unfinished queries ``aborted``, and the catalog
reloads from its persisted manifest — a restarted server is honest
about the past and immediately serves the same graphs.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import (
    AdmissionRejected,
    CancellationError,
    CatalogError,
    GraphFormatError,
    ProtocolError,
)
from repro.observability.prom import METRICS_SCHEMA, metrics_to_prometheus
from repro.resilience.deadline import CancelToken
from repro.service import protocol
from repro.service.admission import AdmissionController
from repro.service.breaker import OPEN as BREAKER_OPEN
from repro.service.breaker import BreakerBoard
from repro.service.cache import ResultCache, cache_key
from repro.service.catalog import GraphCatalog
from repro.service.journal import QueryJournal
from repro.service.observe import (
    NULL_SERVICE_OBSERVABILITY,
    ServiceObservability,
)
from repro.service.queries import execute_query, make_resilience


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs, all with serve-out-of-the-box defaults."""

    max_concurrent: int = 4
    max_queue_depth: int = 16
    per_tenant_limit: Optional[int] = None
    default_timeout_s: float = 30.0
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 2.0
    cache_capacity: int = 128
    cache_ttl_s: float = 60.0
    retry_attempts: int = 2
    record_ledger: bool = True
    # Observability (off by default — the null-object discipline): when
    # on, every query gets a trace id and a span tree, degraded queries
    # dump flight-recorder incidents, and the metrics op grows latency
    # percentiles, worker busy fraction, and tracer health.
    observe: bool = False
    flight_capacity: int = 256
    incidents_dir: Optional[str] = None


class QueryService:
    """Deadline-driven graph query service over a loaded catalog."""

    def __init__(
        self,
        catalog: GraphCatalog,
        *,
        data_dir: Optional[str] = None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or ServiceConfig()
        self.data_dir = data_dir
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            max_queue_depth=self.config.max_queue_depth,
            per_tenant_limit=self.config.per_tenant_limit,
        )
        self.breakers = BreakerBoard(
            failure_threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.cache = ResultCache(
            capacity=self.config.cache_capacity,
            ttl_s=self.config.cache_ttl_s,
        )
        self.journal: Optional[QueryJournal] = None
        self.recovered: List[Dict[str, Any]] = []
        if data_dir is not None:
            self.journal = QueryJournal(os.path.join(data_dir, "journal.jsonl"))
            self.recovered = self.journal.recover()
        self._resilience = make_resilience(self.config.retry_attempts)
        self._lock = threading.Lock()
        self._qid = 0
        self._codes: Dict[int, int] = {}
        self._inflight: Dict[str, CancelToken] = {}
        self.shutdown_requested = threading.Event()
        self._started_monotonic = time.monotonic()
        #: Graph epoch at each graph's most recent query (for epoch lag).
        self._last_query_epoch: Dict[str, int] = {}
        self.observability = (
            ServiceObservability(
                flight_capacity=self.config.flight_capacity,
                incidents_dir=self.config.incidents_dir,
            )
            if self.config.observe
            else NULL_SERVICE_OBSERVABILITY
        )
        self._closed = False

    def close(self) -> None:
        """Release process-global resources (the installed probe);
        idempotent, and a no-op for an observe-off service."""
        if not self._closed:
            self._closed = True
            self.observability.close()

    # -- bookkeeping -------------------------------------------------------------------

    def _next_qid(self) -> str:
        with self._lock:
            self._qid += 1
            return f"q{os.getpid()}-{self._qid:06d}"

    def _count(self, code: int) -> None:
        with self._lock:
            self._codes[code] = self._codes.get(code, 0) + 1

    def _ledger_record(
        self,
        algorithm: str,
        graph: str,
        tenant: str,
        code: int,
        seconds: float,
        *,
        kind: str = "query",
        qid: Optional[str] = None,
        trace: Optional[List[Dict[str, Any]]] = None,
        incident: Optional[str] = None,
    ) -> None:
        """Best-effort run-ledger record (never fatal).

        With observability on, query records carry the query id, the
        harvested span tree, and the incident file path — what lets
        ``repro explain <query-id>`` reconstruct the query later.
        """
        if not self.config.record_ledger:
            return
        from repro.observability import ledger as ledger_mod

        if not ledger_mod.ledger_enabled():
            return
        root = (
            os.path.join(self.data_dir, "runs")
            if self.data_dir is not None
            else None
        )
        record = ledger_mod.make_record(
            kind=kind,
            algorithm=algorithm,
            config={"graph": graph, "tenant": tenant},
            metrics={"code": code, "seconds": seconds},
        )
        if qid is not None:
            record["qid"] = qid
        if trace:
            record["trace"] = trace
        if incident is not None:
            record["incident"] = incident
        try:
            ledger_mod.RunLedger(root).append(record)
        except (OSError, TypeError, ValueError):
            pass  # telemetry must not break serving

    def cancel_all(self, reason: str) -> int:
        """Fire every in-flight query's token (shutdown path)."""
        with self._lock:
            tokens = list(self._inflight.values())
        for token in tokens:
            token.cancel(reason)
        return len(tokens)

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot: catalog, admission, breakers, cache,
        response-code counts, and journal recovery.  With observability
        on, latency percentiles ride along under ``latency_ms``."""
        with self._lock:
            codes = {str(k): v for k, v in sorted(self._codes.items())}
        out = {
            "catalog": sorted(self.catalog.names()),
            "admission": self.admission.stats(),
            "breakers": self.breakers.stats(),
            "cache": self.cache.stats(),
            "codes": codes,
            "recovered_aborted": len(self.recovered),
        }
        latency = self.observability.latency_summary()
        if latency:
            out["latency_ms"] = latency
        return out

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The live scrape (``metrics`` op): one JSON snapshot in the
        :data:`~repro.observability.prom.METRICS_SCHEMA` shape.

        Service-state sections (responses, admission, cache, breakers,
        epoch lag) are always present; latency percentiles, worker-pool
        busy fraction, tracer health, and incident counts require
        ``observe=True`` (they come from the installed probe).
        """
        uptime_s = time.monotonic() - self._started_monotonic
        with self._lock:
            codes = {str(k): v for k, v in sorted(self._codes.items())}
            last_epochs = dict(self._last_query_epoch)
        cache = dict(self.cache.stats())
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_ratio"] = (
            round(cache.get("hits", 0) / lookups, 4) if lookups else 0.0
        )
        epochs: Dict[str, Dict[str, int]] = {}
        for name in sorted(self.catalog.names()):
            try:
                current = self.catalog.epoch_of(name)
            except CatalogError:  # pragma: no cover - racing an unload
                continue
            last = last_epochs.get(name, current)
            epochs[name] = {
                "current": current,
                "last_query": last,
                "lag": max(0, current - last),
            }
        snapshot: Dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "uptime_s": round(uptime_s, 3),
            "queries": {
                "responses": codes,
                "latency_ms": self.observability.latency_summary(),
            },
            "admission": self.admission.stats(),
            "cache": cache,
            "breakers": self.breakers.stats(),
            "epochs": epochs,
        }
        snapshot.update(self.observability.snapshot_extras(uptime_s))
        return snapshot

    # -- the handler -------------------------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request dict in, one response dict out; never raises."""
        try:
            req = protocol.validate_request(request)
        except ProtocolError as exc:
            self._count(protocol.BAD_REQUEST)
            return protocol.response(
                request, protocol.BAD_REQUEST, error=str(exc)
            )
        op = req["op"]
        if op == "ping":
            return protocol.response(req, protocol.OK, result={"pong": True})
        if op == "stats":
            return protocol.response(req, protocol.OK, result=self.stats())
        if op == "metrics":
            snapshot = self.metrics_snapshot()
            if req.get("format") in ("prom", "prometheus", "text"):
                return protocol.response(
                    req,
                    protocol.OK,
                    result={
                        "format": "prometheus",
                        "text": metrics_to_prometheus(snapshot),
                    },
                )
            return protocol.response(req, protocol.OK, result=snapshot)
        if op == "catalog":
            return protocol.response(
                req, protocol.OK, result=self.catalog.describe()
            )
        if op == "shutdown":
            self.shutdown_requested.set()
            cancelled = self.cancel_all("server shutdown")
            return protocol.response(
                req, protocol.OK, result={"cancelled_in_flight": cancelled}
            )
        if op == "mutate":
            return self._handle_mutate(req)
        return self._handle_query(req)

    def _handle_mutate(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one mutation batch: bump the epoch, evict its cache.

        The order matters — the catalog mutation (and its epoch bump)
        lands before the cache sweep, so a concurrent query either sees
        the old epoch (its cached answer survives until the sweep, then
        epoch-misses forever) or the new one (its key is already gone).
        Either way no response ever pairs the new epoch with an old
        result.
        """
        graph_name = req["graph"]
        try:
            epoch, batch = self.catalog.mutate(
                graph_name, insert=req["insert"], remove=req["remove"]
            )
        except CatalogError as exc:
            self._count(protocol.UNKNOWN_GRAPH)
            return protocol.response(
                req, protocol.UNKNOWN_GRAPH, error=str(exc)
            )
        except GraphFormatError as exc:
            self._count(protocol.BAD_REQUEST)
            return protocol.response(req, protocol.BAD_REQUEST, error=str(exc))
        invalidated = self.cache.invalidate_graph(graph_name)
        self._count(protocol.OK)
        return protocol.response(
            req,
            protocol.OK,
            result={
                "graph": graph_name,
                "epoch": epoch,
                "inserted": batch.n_inserted,
                "removed": batch.n_removed,
                "cache_invalidated": invalidated,
            },
        )

    def _handle_query(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """One query: open its observation (root span + trace id), run
        the pipeline, then settle (latency metrics, span harvest,
        incident dump) and ledger the outcome."""
        t0 = time.monotonic()
        graph_name = req["graph"]
        algorithm = req["algorithm"]
        tenant = req["tenant"]
        qid = self._next_qid()
        obs = self.observability
        handle = obs.begin_query(
            qid, graph=graph_name, algorithm=algorithm, tenant=tenant
        )
        info: Dict[str, Any] = {
            "code": protocol.INTERNAL,
            "error": None,
            "executed": False,
            "breaker_opened": False,
        }
        try:
            response = self._query_pipeline(req, qid, t0, handle, info)
        finally:
            handle.finish(code=info["code"], error=info["error"])
        seconds = time.monotonic() - t0
        settled = obs.settle(
            handle,
            code=info["code"],
            seconds=seconds,
            error=info["error"],
            breaker_opened=info["breaker_opened"],
        )
        if info["executed"]:
            self._ledger_record(
                algorithm,
                graph_name,
                tenant,
                info["code"],
                seconds,
                qid=qid,
                trace=settled.trace,
                incident=settled.incident,
            )
        elif settled.incident is not None:
            # Early rejections (admission timeout) never reached the
            # executed path, but their incidents must still be findable
            # from the ledger by query id.
            self._ledger_record(
                algorithm,
                graph_name,
                tenant,
                info["code"],
                seconds,
                kind="incident",
                qid=qid,
                trace=settled.trace,
                incident=settled.incident,
            )
        return response

    def _query_pipeline(
        self,
        req: Dict[str, Any],
        qid: str,
        t0: float,
        handle,
        info: Dict[str, Any],
    ) -> Dict[str, Any]:
        graph_name = req["graph"]
        algorithm = req["algorithm"]
        params = req["params"]
        tenant = req["tenant"]

        def done(code: int, **kwargs: Any) -> Dict[str, Any]:
            self._count(code)
            info["code"] = code
            if kwargs.get("error") is not None:
                info["error"] = kwargs["error"]
            kwargs.setdefault("qid", qid)
            kwargs.setdefault("elapsed_ms", (time.monotonic() - t0) * 1e3)
            return protocol.response(req, code, **kwargs)

        # Epoch strictly before the snapshot: a mutate landing between
        # the two reads then tags this query's result with the *old*
        # epoch — conservative, it can only cause an epoch-miss later.
        # The opposite order could cache a pre-mutation result under
        # the new epoch after the mutate's sweep, serving it as fresh.
        epoch = self.catalog.epoch_of(graph_name)
        try:
            graph = self.catalog.get(graph_name)
        except CatalogError as exc:
            return done(protocol.UNKNOWN_GRAPH, error=str(exc))
        with self._lock:
            self._last_query_epoch[graph_name] = epoch

        key = cache_key(graph_name, algorithm, params)
        fresh = self.cache.get_fresh(key, epoch=epoch)
        if fresh is not None:
            handle.event("service:cache", outcome="hit", epoch=epoch)
            return done(protocol.OK, result=fresh, cached=True)
        handle.event("service:cache", outcome="miss", epoch=epoch)

        breaker = self.breakers.of(graph_name, algorithm)
        if not breaker.allow():
            stale = self.cache.get_stale(key)
            if stale is not None:
                result, age = stale
                handle.event(
                    "service:breaker", state="open", served="stale"
                )
                return done(
                    protocol.OK,
                    result=result,
                    stale=True,
                    stale_age_s=round(age, 3),
                    breaker="open",
                )
            handle.event(
                "service:breaker", state="open", served="unavailable"
            )
            return done(
                protocol.UNAVAILABLE,
                error=(
                    f"circuit breaker open for {graph_name}/{algorithm} "
                    f"and no cached result to degrade to"
                ),
                breaker="open",
            )

        timeout_s = req["timeout_s"] or self.config.default_timeout_s
        token = CancelToken.after(timeout_s, label=f"{graph_name}/{algorithm}")
        try:
            with handle.span("service:admission", tenant=tenant):
                self.admission.acquire(
                    tenant, timeout=max(0.0, token.remaining())
                )
        except AdmissionRejected as exc:
            code = (
                protocol.ADMISSION_TIMEOUT
                if exc.reason == "timeout"
                else protocol.SHED
            )
            return done(code, error=str(exc), shed=exc.reason)

        info["executed"] = True
        if self.journal is not None:
            self.journal.begin(
                qid,
                graph=graph_name,
                algorithm=algorithm,
                tenant=tenant,
                params=params,
            )
        with self._lock:
            self._inflight[qid] = token
        code = protocol.INTERNAL
        result: Optional[Dict[str, Any]] = None
        error: Optional[str] = None
        try:
            try:
                with handle.span(
                    "service:execute", graph=graph_name, algorithm=algorithm
                ):
                    with token:
                        result = execute_query(
                            graph,
                            algorithm,
                            params,
                            resilience=self._resilience,
                        )
                code = (
                    protocol.PARTIAL
                    if result.get("partial")
                    else protocol.OK
                )
            except CancellationError as exc:
                code = protocol.DEADLINE
                error = str(exc)
            except ProtocolError as exc:
                code = protocol.BAD_REQUEST
                error = str(exc)
            except Exception as exc:  # noqa: BLE001 - the 500 boundary
                code = protocol.INTERNAL
                error = f"{type(exc).__name__}: {exc}"
        finally:
            with self._lock:
                self._inflight.pop(qid, None)
            self.admission.release(tenant)
            seconds = time.monotonic() - t0
            if self.journal is not None:
                self.journal.end(qid, code=code, seconds=seconds)

        # Client errors are not the algorithm's fault; everything else
        # teaches the breaker.
        if code != protocol.BAD_REQUEST:
            success = code in (protocol.OK, protocol.PARTIAL)
            if handle.enabled:
                before = breaker.state
                breaker.record(success)
                if breaker.state == BREAKER_OPEN and before != BREAKER_OPEN:
                    info["breaker_opened"] = True
                    handle.event(
                        "service:breaker",
                        transition="open",
                        graph=graph_name,
                        algorithm=algorithm,
                    )
            else:
                breaker.record(success)
        if code == protocol.OK and result is not None:
            self.cache.put(key, result, epoch=epoch)
        if code == protocol.INTERNAL:
            # Stale-while-error: a failed execution with history still
            # answers, marked as the past.
            stale = self.cache.get_stale(key)
            if stale is not None:
                stale_result, age = stale
                return done(
                    protocol.OK,
                    result=stale_result,
                    stale=True,
                    stale_age_s=round(age, 3),
                    error=error,
                )
        if code in (protocol.OK, protocol.PARTIAL):
            return done(code, result=result)
        return done(code, error=error)


# -- the socket layer ------------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read JSONL requests, write JSONL responses."""

    #: Socket timeout per read; lets the handler notice server shutdown
    #: even while a client holds the connection open idle.
    timeout = 0.5

    def handle(self) -> None:  # noqa: A003 - socketserver API
        # Reads go through the raw socket with a manual line buffer, NOT
        # self.rfile: a BufferedReader that hits a socket timeout is
        # poisoned ("cannot read from timed out object" forever after),
        # so an idle-timeout-then-retry loop over rfile never reads
        # again.  recv has no such state.
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        buffer = bytearray()
        while not server.service.shutdown_requested.is_set():
            newline = buffer.find(b"\n")
            if newline < 0:
                if len(buffer) > protocol.MAX_FRAME_BYTES:
                    # No newline within the frame cap: the stream cannot
                    # be resynchronized, so answer once and hang up.
                    self._reply(
                        protocol.response(
                            None,
                            protocol.BAD_REQUEST,
                            error=(
                                f"frame exceeds the "
                                f"{protocol.MAX_FRAME_BYTES} byte cap"
                            ),
                        )
                    )
                    return
                try:
                    chunk = self.connection.recv(1 << 16)
                except TimeoutError:
                    continue  # idle read window elapsed; re-check shutdown
                except OSError:
                    return  # connection torn down
                if not chunk:
                    return  # client disconnected
                buffer += chunk
                continue
            line = bytes(buffer[: newline + 1])
            del buffer[: newline + 1]
            try:
                request = protocol.decode(line)
            except ProtocolError as exc:
                self._reply(
                    protocol.response(
                        None, protocol.BAD_REQUEST, error=str(exc)
                    )
                )
                continue
            self._reply(server.service.handle(request))

    def _reply(self, response: Dict[str, Any]) -> None:
        try:
            self.wfile.write(protocol.encode(response))
            self.wfile.flush()
        except OSError:
            pass  # client went away mid-reply; nothing to salvage


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    # Non-daemon handler threads + block_on_close: server_close() joins
    # every connection thread, so "stopped" means zero leaked threads.
    daemon_threads = False
    block_on_close = True

    service: QueryService


class GraphQueryServer:
    """TCP front end for a :class:`QueryService` (JSONL protocol).

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  :meth:`start` serves on a background thread (tests,
    soak harness); :meth:`serve_forever` serves on the calling thread
    (the CLI).  :meth:`stop` cancels in-flight queries, closes the
    listener, and joins every connection thread.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.service = service
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple:
        """(host, port) actually bound."""
        return self._tcp.server_address

    def start(self) -> None:
        """Serve on a background thread; returns once listening."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or a signal
        handler calling it) shuts the loop down."""
        self._tcp.serve_forever(poll_interval=0.05)

    def stop(self) -> None:
        """Cancel in-flight queries, close the listener, join every
        connection thread (zero threads left behind)."""
        self.service.shutdown_requested.set()
        self.service.cancel_all("server stopping")
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.close()
