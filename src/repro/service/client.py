"""Blocking JSONL client for the query service.

One socket, one request/response in flight at a time (guarded by a
lock); concurrency comes from using one client per thread, which is how
both the soak harness and ``repro query`` use it.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Optional

from repro.errors import ProtocolError, ServiceError
from repro.service import protocol


class ServiceClient:
    """Talk to a :class:`~repro.service.server.GraphQueryServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7464,
        *,
        timeout: float = 60.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------------------

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; block for its response."""
        with self._lock:
            self._next_id += 1
            obj = {"id": self._next_id, **obj}
            self._sock.sendall(protocol.encode(obj))
            line = self._rfile.readline(protocol.MAX_FRAME_BYTES + 1)
        if not line:
            raise ServiceError("server closed the connection")
        try:
            return protocol.decode(line)
        except ProtocolError as exc:
            raise ServiceError(f"unreadable server response: {exc}") from exc

    def close(self) -> None:
        """Close the socket (the context manager calls this)."""
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the ops -----------------------------------------------------------------------

    def query(
        self,
        graph: str,
        algorithm: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = None,
        tenant: str = "default",
    ) -> Dict[str, Any]:
        """One graph query; returns the full response dict (the caller
        inspects ``code``/``status`` — service-level rejections are data
        here, not exceptions)."""
        req: Dict[str, Any] = {
            "op": "query",
            "graph": graph,
            "algorithm": algorithm,
            "params": params or {},
            "tenant": tenant,
        }
        if timeout_s is not None:
            req["timeout_s"] = timeout_s
        return self.request(req)

    def mutate(
        self,
        graph: str,
        *,
        insert: Optional[list] = None,
        remove: Optional[list] = None,
        tenant: str = "default",
    ) -> Dict[str, Any]:
        """Apply one mutation batch to a served graph.

        ``insert`` takes ``[src, dst]`` or ``[src, dst, weight]``
        triples, ``remove`` takes ``[src, dst]`` pairs.  Returns the
        full response dict; a 200 carries the graph's new epoch and how
        many cache entries were invalidated.
        """
        req: Dict[str, Any] = {"op": "mutate", "graph": graph, "tenant": tenant}
        if insert:
            req["insert"] = [list(edge) for edge in insert]
        if remove:
            req["remove"] = [list(edge) for edge in remove]
        return self.request(req)

    def ping(self) -> bool:
        """Liveness check: true when the server answers 200."""
        return self.request({"op": "ping"}).get("code") == protocol.OK

    def stats(self) -> Dict[str, Any]:
        """The server's operational stats (admission, breakers, codes,
        and — with observability on — latency percentiles)."""
        return self.request({"op": "stats"}).get("result", {})

    def metrics(self, format: str = "json") -> Dict[str, Any]:
        """One live metrics scrape.

        ``format="json"`` returns the snapshot dict; ``format="prom"``
        (or ``"prometheus"``) returns ``{"format": "prometheus",
        "text": ...}`` with the text exposition.
        """
        req: Dict[str, Any] = {"op": "metrics"}
        if format != "json":
            req["format"] = format
        return self.request(req).get("result", {})

    def catalog(self) -> Dict[str, Any]:
        """The served graphs and their sizes."""
        return self.request({"op": "catalog"}).get("result", {})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to shut down (it answers before exiting)."""
        return self.request({"op": "shutdown"})
