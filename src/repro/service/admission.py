"""Admission control: bounded concurrency, bounded queueing, tenant caps.

The service must stay responsive when offered more work than it can do;
the admission controller is the valve.  Three limits, checked in order:

* **Queue depth** — at most ``max_queue_depth`` callers may be waiting
  for an execution slot; past that the query is shed *immediately*
  (fail fast beats queueing into certain deadline death).
* **Tenant cap** — one tenant may hold at most ``per_tenant_limit``
  slots, so a single chatty client cannot starve the rest.  Checked at
  admission time, before any waiting.
* **Concurrency** — at most ``max_concurrent`` queries execute at once;
  a caller with remaining deadline budget waits (bounded by that
  budget) for a slot.

Shedding raises :class:`~repro.errors.AdmissionRejected` with a
``reason`` of ``"queue_full"``, ``"tenant_cap"``, or ``"timeout"`` — the
server maps the first two to 429 and the last to 408.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import AdmissionRejected, ServiceError


class AdmissionController:
    """Counting-semaphore-with-a-ledger; all state under one lock."""

    def __init__(
        self,
        *,
        max_concurrent: int = 4,
        max_queue_depth: int = 16,
        per_tenant_limit: Optional[int] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ServiceError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_queue_depth < 0:
            raise ServiceError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if per_tenant_limit is not None and per_tenant_limit < 1:
            raise ServiceError(
                f"per_tenant_limit must be >= 1, got {per_tenant_limit}"
            )
        self.max_concurrent = max_concurrent
        self.max_queue_depth = max_queue_depth
        self.per_tenant_limit = per_tenant_limit
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._active = 0
        self._waiting = 0
        self._per_tenant: Dict[str, int] = {}
        # Lifetime accounting (monotone counters, read via stats()).
        self._admitted = 0
        self._shed_queue_full = 0
        self._shed_tenant_cap = 0
        self._shed_timeout = 0

    # -- the protocol ------------------------------------------------------------------

    def acquire(self, tenant: str = "default", *, timeout: Optional[float] = None) -> None:
        """Claim an execution slot or raise :class:`AdmissionRejected`.

        ``timeout`` bounds the wait for a slot (pass the query's
        remaining deadline budget); ``None`` waits indefinitely.  Every
        successful acquire must be paired with :meth:`release`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            held = self._per_tenant.get(tenant, 0)
            if (
                self.per_tenant_limit is not None
                and held >= self.per_tenant_limit
            ):
                self._shed_tenant_cap += 1
                raise AdmissionRejected(
                    f"tenant {tenant!r} already holds {held} slots "
                    f"(cap {self.per_tenant_limit})",
                    reason="tenant_cap",
                )
            if self._active >= self.max_concurrent:
                if self._waiting >= self.max_queue_depth:
                    self._shed_queue_full += 1
                    raise AdmissionRejected(
                        f"admission queue full ({self._waiting} waiting, "
                        f"depth cap {self.max_queue_depth})",
                        reason="queue_full",
                    )
                self._waiting += 1
                try:
                    while self._active >= self.max_concurrent:
                        remaining = (
                            None
                            if deadline is None
                            else deadline - time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            self._shed_timeout += 1
                            raise AdmissionRejected(
                                f"no execution slot within {timeout:.3f}s "
                                f"({self._active} active, "
                                f"{self._waiting} waiting)",
                                reason="timeout",
                            )
                        self._slot_free.wait(timeout=remaining)
                finally:
                    self._waiting -= 1
            self._active += 1
            self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
            self._admitted += 1

    def release(self, tenant: str = "default") -> None:
        """Return a slot claimed by :meth:`acquire`."""
        with self._lock:
            if self._active <= 0:
                raise ServiceError("release() without a matching acquire()")
            self._active -= 1
            held = self._per_tenant.get(tenant, 0) - 1
            if held > 0:
                self._per_tenant[tenant] = held
            else:
                self._per_tenant.pop(tenant, None)
            self._slot_free.notify()

    # -- introspection -----------------------------------------------------------------

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    def stats(self) -> Dict[str, int]:
        """Lifetime admission accounting (for ``stats`` responses)."""
        with self._lock:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "admitted": self._admitted,
                "shed_queue_full": self._shed_queue_full,
                "shed_tenant_cap": self._shed_tenant_cap,
                "shed_timeout": self._shed_timeout,
            }
