"""Service observability: per-query tracing, latency metrics, incidents.

:class:`ServiceObservability` is what ``ServiceConfig(observe=True)``
turns on — one process-global :class:`~repro.observability.probe.Probe`
installed for the service's lifetime, plus a
:class:`~repro.observability.flight.FlightRecorder`.  Per query it:

* opens a ``service:query`` root span tagged with the query's trace id
  (the qid) and installs that id as the thread's ambient
  :class:`~repro.observability.context.trace_context`, so everything the
  query touches — admission, execution supersteps, ``par_proc`` round
  frames — hangs off one tree;
* on settle, feeds the latency histograms (global and per
  (graph, algorithm)), harvests the query's spans out of the shared
  tracer buffer, appends a ring event to the flight recorder, and dumps
  an incident file when the query degraded (408/500/504, a breaker
  tripping OPEN, or a worker respawn during the query).

The default is :data:`NULL_SERVICE_OBSERVABILITY` — the PR 2 null-object
discipline: with ``observe=False`` nothing is allocated, every call is a
no-op, and the serving hot path is unchanged.

**Span harvest.**  The tracer buffer is shared by every concurrent
query, so one query's spans are recovered by parent-chain: remember the
buffer position at query start, snapshot the tail at settle, and walk it
*newest-first* — a span belongs to the query if it carries the query's
``trace_id`` attribute (the root, and ``proc:task`` spans stitched from
worker replies) or its parent is already claimed.  Children complete
before parents, so the reversed pass sees each parent before its
children and one pass suffices.  The harvest is best-effort telemetry:
a rotated buffer yields an empty trace, never a wrong one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.observability.context import trace_context
from repro.observability.export import _jsonable
from repro.observability.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.observability.probe import NULL_PROBE, Probe, install_probe, uninstall_probe

#: Span cap on one query's embedded/dumped trace: keeps ledger lines and
#: incident files bounded for pathological queries.  Truncation keeps
#: the earliest spans plus the root.
MAX_TRACE_SPANS = 512

#: Buffer length above which the tracer is cleared between queries
#: (only when nothing is in flight), so a long-running service never
#: grinds against its own span cap.
ROTATE_WATERMARK = 20_000

#: Response codes that are incidents by themselves.
INCIDENT_CODES = (408, 500, 504)


@dataclass
class SettledQuery:
    """What :meth:`ServiceObservability.settle` hands back to the server."""

    trace: List[Dict[str, Any]] = field(default_factory=list)
    incident: Optional[str] = None
    reasons: List[str] = field(default_factory=list)


_SETTLED_NOTHING = SettledQuery()


class QueryObservation:
    """Per-query handle: the root span + ambient trace id, plus the
    bookkeeping settle needs (buffer position, restart baseline)."""

    __slots__ = (
        "obs", "qid", "graph", "algorithm", "tenant",
        "start_index", "restarts_at", "_span_ctx", "_span", "_trace_ctx",
    )

    enabled = True

    def __init__(
        self,
        obs: "ServiceObservability",
        qid: str,
        *,
        graph: str,
        algorithm: str,
        tenant: str,
    ) -> None:
        self.obs = obs
        self.qid = qid
        self.graph = graph
        self.algorithm = algorithm
        self.tenant = tenant
        probe = obs.probe
        self.start_index = len(probe.tracer)
        self.restarts_at = probe.metrics.counter("proc.worker_restarts").value
        self._trace_ctx = trace_context(qid)
        self._trace_ctx.__enter__()
        self._span_ctx = probe.span(
            "service:query",
            trace_id=qid,
            graph=graph,
            algorithm=algorithm,
            tenant=tenant,
        )
        self._span = self._span_ctx.__enter__()

    def event(self, name: str, **attrs: Any) -> None:
        """An instant on the query's innermost open span."""
        self.obs.probe.event(name, **attrs)

    def span(self, name: str, **attrs: Any):
        """A child span under the query root (context manager)."""
        return self.obs.probe.span(name, **attrs)

    def finish(
        self, *, code: Optional[int] = None, error: Optional[str] = None
    ) -> None:
        """Stamp the outcome and close the root span + trace context.

        Must run on the query's thread (it pops the span stack);
        idempotent so a ``finally`` can call it unconditionally.
        """
        if self._span_ctx is None:
            return
        if code is not None:
            self._span.set("code", code)
        if error is not None:
            self._span.set("error", error)
        self._span_ctx.__exit__(None, None, None)
        self._span_ctx = None
        self._trace_ctx.__exit__(None, None, None)


class ServiceObservability:
    """The observe-enabled implementation (see the module docstring)."""

    enabled = True

    def __init__(
        self,
        *,
        flight_capacity: int = DEFAULT_CAPACITY,
        incidents_dir: Optional[str] = None,
        max_trace_spans: int = MAX_TRACE_SPANS,
    ) -> None:
        self.probe = Probe()
        install_probe(self.probe)
        self.flight = FlightRecorder(incidents_dir, capacity=flight_capacity)
        self.max_trace_spans = max_trace_spans
        self._lock = threading.Lock()
        self._inflight = 0
        self._latency_keys: set = set()
        self._closed = False

    def close(self) -> None:
        """Uninstall the probe (idempotent; the server calls this on
        stop so the process can install another probe afterwards)."""
        if not self._closed:
            self._closed = True
            uninstall_probe(self.probe)

    # -- per query ---------------------------------------------------------------------

    def begin_query(
        self, qid: str, *, graph: str, algorithm: str, tenant: str
    ) -> QueryObservation:
        """Open one query's root span; pair with :meth:`settle`."""
        with self._lock:
            self._inflight += 1
        return QueryObservation(
            self, qid, graph=graph, algorithm=algorithm, tenant=tenant
        )

    def settle(
        self,
        handle: QueryObservation,
        *,
        code: int,
        seconds: float,
        error: Optional[str] = None,
        breaker_opened: bool = False,
    ) -> SettledQuery:
        """Account one finished query (after :meth:`QueryObservation.finish`):
        latency histograms, span harvest, flight-recorder ring, and —
        when the query degraded — an incident dump."""
        ms = seconds * 1e3
        metrics = self.probe.metrics
        metrics.histogram("query.latency_ms").observe(ms)
        if code != 404:
            # 404s never get a per-key histogram: the key would come
            # from a client-supplied unknown graph name, so a misbehaving
            # client could grow the registry without bound.
            key = f"{handle.graph}/{handle.algorithm}"
            metrics.histogram(f"query.latency_ms[{key}]").observe(ms)
            with self._lock:
                self._latency_keys.add(key)

        spans = self._harvest(handle)
        trace = [self._span_dict(s) for s in spans]

        respawns = (
            metrics.counter("proc.worker_restarts").value - handle.restarts_at
        )
        reasons: List[str] = []
        if code in INCIDENT_CODES:
            reasons.append(f"code_{code}")
        if breaker_opened:
            reasons.append("breaker_open")
        if respawns:
            reasons.append("worker_respawn")

        self.flight.record(
            "query",
            qid=handle.qid,
            graph=handle.graph,
            algorithm=handle.algorithm,
            tenant=handle.tenant,
            code=code,
            ms=round(ms, 3),
        )
        incident_path: Optional[str] = None
        if reasons:
            try:
                incident_path = self.flight.incident(
                    reasons[0],
                    trace_id=handle.qid,
                    spans=trace,
                    reasons=reasons,
                    code=code,
                    graph=handle.graph,
                    algorithm=handle.algorithm,
                    tenant=handle.tenant,
                    error=error,
                    elapsed_ms=round(ms, 3),
                    worker_respawns=respawns,
                )
            except OSError:
                pass  # evidence collection must never fail the query

        with self._lock:
            self._inflight -= 1
            rotate = (
                self._inflight == 0
                and len(self.probe.tracer) > ROTATE_WATERMARK
            )
        if rotate:
            # Safe only while nothing is in flight: harvest positions
            # are relative to the last clear.  Cumulative drop counts
            # live on in the trace.dropped_spans counter.
            self.probe.tracer.clear()
        return SettledQuery(
            trace=trace, incident=incident_path, reasons=reasons
        )

    # -- harvest -----------------------------------------------------------------------

    def _harvest(self, handle: QueryObservation):
        tail = self.probe.tracer.spans_since(handle.start_index)
        claimed: set = set()
        picked = []
        for span in reversed(tail):
            if (
                span.attrs.get("trace_id") == handle.qid
                or span.parent_id in claimed
            ):
                claimed.add(span.span_id)
                picked.append(span)
        picked.reverse()  # back to completion order (root last)
        if len(picked) > self.max_trace_spans:
            picked = picked[: self.max_trace_spans - 1] + [picked[-1]]
        return picked

    @staticmethod
    def _span_dict(span) -> Dict[str, Any]:
        record = span.to_dict()
        record["attrs"] = {
            k: _jsonable(v) for k, v in record["attrs"].items()
        }
        return record

    # -- scrape ------------------------------------------------------------------------

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-(graph, algorithm) latency summaries with percentiles,
        plus the ``_all`` aggregate (what `stats` and `metrics` show)."""
        metrics = self.probe.metrics
        with self._lock:
            keys = sorted(self._latency_keys)
        out: Dict[str, Dict[str, float]] = {}
        for key, hist in [
            (key, metrics.histogram(f"query.latency_ms[{key}]"))
            for key in keys
        ] + [("_all", metrics.histogram("query.latency_ms"))]:
            if hist.count == 0:
                continue
            summary = hist.summary()
            summary["p50"] = hist.percentile(50)
            summary["p95"] = hist.percentile(95)
            summary["p99"] = hist.percentile(99)
            out[key] = {k: round(float(v), 4) for k, v in summary.items()}
        return out

    def snapshot_extras(self, uptime_s: float) -> Dict[str, Any]:
        """The snapshot sections only the probe can supply: worker-pool
        restarts/busy fraction, tracer health, incident counts."""
        metrics = self.probe.metrics
        restarts = metrics.counter("proc.worker_restarts").value
        busy = float(metrics.counter("proc.busy_seconds").value)
        workers = int(metrics.gauge("proc.workers").value)
        if workers > 0 and uptime_s > 0:
            busy_fraction = min(1.0, busy / (uptime_s * workers))
        else:
            busy_fraction = 0.0
        return {
            "workers": {
                "restarts": restarts,
                "num_workers": workers,
                "busy_seconds": round(busy, 3),
                "busy_fraction": round(busy_fraction, 4),
            },
            "trace": {
                "buffered_spans": len(self.probe.tracer),
                "dropped_spans": metrics.counter(
                    "trace.dropped_spans"
                ).value,
            },
            "incidents": self.flight.stats(),
        }


# -- the null objects ------------------------------------------------------------------


class _NullQueryObservation:
    """Shared inert handle: the observe-off per-query surface."""

    __slots__ = ()

    enabled = False
    qid = None

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def span(self, name: str, **attrs: Any):
        return NULL_PROBE.span(name)

    def finish(self, **kwargs: Any) -> None:
        pass


NULL_QUERY_OBSERVATION = _NullQueryObservation()


class NullServiceObservability:
    """The observe-off service surface: allocates nothing, does nothing."""

    enabled = False

    def begin_query(self, qid: str, **kwargs: Any) -> _NullQueryObservation:
        """The shared inert per-query handle."""
        return NULL_QUERY_OBSERVATION

    def settle(self, handle, **kwargs: Any) -> SettledQuery:
        """No harvest, no histograms, no incident."""
        return _SETTLED_NOTHING

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """No percentiles without a probe."""
        return {}

    def snapshot_extras(self, uptime_s: float) -> Dict[str, Any]:
        """No probe-backed snapshot sections."""
        return {}

    def close(self) -> None:
        """Nothing to release."""


NULL_SERVICE_OBSERVABILITY = NullServiceObservability()
