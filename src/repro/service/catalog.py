"""The graph catalog: load once at startup, serve many queries.

The service's whole reason to exist is amortization — parsing and
indexing a graph dominates most single queries, so the daemon pays it
once per graph and keeps CSR/CSC views warm in memory.  The catalog
maps names to loaded :class:`~repro.graph.graph.Graph` objects and
remembers each entry's *spec* (file path or generator recipe), which it
persists to ``catalog.json`` under the data directory; after a crash
the next process rebuilds the identical catalog from the manifest
without being re-told the specs.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

from repro.errors import CatalogError
from repro.graph.graph import Graph

#: Generator kinds the catalog can synthesize (mirrors ``repro generate``).
GENERATORS = ("grid", "rmat", "er", "ws", "ba")


def _build_from_spec(spec: Dict[str, Any]) -> Graph:
    """Materialize one catalog entry (file load or seeded generation)."""
    if "path" in spec:
        from repro.cli import _load_graph

        path = spec["path"]
        if not os.path.exists(path):
            raise CatalogError(f"graph file not found: {path}")
        return _load_graph(path, directed=spec.get("directed", True))
    kind = spec.get("generator")
    if kind not in GENERATORS:
        raise CatalogError(
            f"catalog spec needs 'path' or 'generator' in {GENERATORS}, "
            f"got {spec!r}"
        )
    import numpy as np

    from repro.graph import generators as gen

    scale = int(spec.get("scale", 10))
    edge_factor = int(spec.get("edge_factor", 8))
    seed = int(spec.get("seed", 0))
    weighted = bool(spec.get("weighted", True))
    if kind == "grid":
        side = int(np.sqrt(1 << scale))
        return gen.grid_2d(side, side, weighted=weighted, seed=seed)
    if kind == "rmat":
        return gen.rmat(scale, edge_factor, weighted=weighted, seed=seed)
    if kind == "er":
        n = 1 << scale
        return gen.erdos_renyi_gnm(
            n, n * edge_factor, weighted=weighted, seed=seed
        )
    if kind == "ws":
        g = gen.watts_strogatz(1 << scale, edge_factor, 0.05, seed=seed)
        return gen.with_random_weights(g, seed=seed) if weighted else g
    # "ba"
    return gen.barabasi_albert(
        1 << scale, max(1, edge_factor // 2), seed=seed
    )


def parse_graph_spec(text: str) -> Dict[str, Any]:
    """Parse one ``--graph``/``--generate`` CLI spec into a spec dict.

    ``name=path/to/file.npz`` loads a file;
    ``name=grid:12`` / ``name=rmat:10:seed=3`` generate (kind, scale,
    then optional ``key=value`` extras).
    """
    if "=" not in text:
        raise CatalogError(
            f"graph spec must look like name=path or name=kind:scale, "
            f"got {text!r}"
        )
    name, _, rest = text.partition("=")
    name = name.strip()
    if not name:
        raise CatalogError(f"graph spec has an empty name: {text!r}")
    head = rest.split(":", 1)[0]
    if head not in GENERATORS:
        return {"name": name, "path": rest}
    spec: Dict[str, Any] = {"name": name, "generator": head}
    parts = rest.split(":")[1:]
    if parts and parts[0] and "=" not in parts[0]:
        spec["scale"] = int(parts[0])
        parts = parts[1:]
    for part in parts:
        if not part:
            continue
        if "=" not in part:
            raise CatalogError(f"bad generator option {part!r} in {text!r}")
        key, _, value = part.partition("=")
        if key not in ("scale", "edge_factor", "seed", "weighted"):
            raise CatalogError(f"unknown generator option {key!r} in {text!r}")
        spec[key] = (
            value.lower() in ("1", "true", "yes")
            if key == "weighted"
            else int(value)
        )
    return spec


class GraphCatalog:
    """Named, loaded graphs plus the persisted manifest of their specs."""

    MANIFEST = "catalog.json"

    def __init__(self, data_dir: Optional[str] = None) -> None:
        self.data_dir = data_dir
        self._lock = threading.Lock()
        self._graphs: Dict[str, Graph] = {}
        self._specs: Dict[str, Dict[str, Any]] = {}
        #: Lazily-created DynamicGraph wrappers for entries that have
        #: been mutated; absent = still the pristine loaded snapshot.
        self._dynamic: Dict[str, "DynamicGraph"] = {}
        #: Per-entry locks serializing every overlay touch — mutation
        #: staging and snapshot merges alike.  DynamicGraph has no
        #: internal synchronization (plain lists, a dict index, the
        #: snapshot cache), so two concurrent mutates, or a mutate
        #: racing a query's merge, would otherwise corrupt the overlay.
        #: The coarse catalog lock is *not* used for this: a snapshot
        #: merge is O(V + E) and must not block unrelated entries.
        self._entry_locks: Dict[str, threading.Lock] = {}

    # -- building ----------------------------------------------------------------------

    def add(self, spec: Dict[str, Any]) -> Graph:
        """Load/generate one entry, register it, persist the manifest."""
        name = spec.get("name")
        if not name:
            raise CatalogError(f"catalog spec has no name: {spec!r}")
        graph = _build_from_spec(spec)
        with self._lock:
            self._graphs[name] = graph
            self._specs[name] = {k: v for k, v in spec.items() if k != "name"}
            self._dynamic.pop(name, None)  # re-adding resets mutations
        self._save_manifest()
        return graph

    def restore(self) -> List[str]:
        """Rebuild every entry recorded in the manifest (crash recovery).

        Returns the restored names; a manifest entry that no longer
        loads (its file was deleted) raises :class:`CatalogError` —
        serving a silently smaller catalog would turn graph queries
        into 404s with no explanation.
        """
        manifest = self._manifest_path()
        if manifest is None or not os.path.exists(manifest):
            return []
        with open(manifest, "r", encoding="utf-8") as fh:
            specs = json.load(fh)
        restored = []
        for name, spec in specs.items():
            self.add({"name": name, **spec})
            restored.append(name)
        return restored

    def _manifest_path(self) -> Optional[str]:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, self.MANIFEST)

    def _save_manifest(self) -> None:
        manifest = self._manifest_path()
        if manifest is None:
            return
        os.makedirs(self.data_dir, exist_ok=True)
        with self._lock:
            payload = json.dumps(self._specs, indent=2, sort_keys=True)
        tmp = manifest + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
        os.replace(tmp, manifest)  # atomic: readers never see a torn file

    # -- serving -----------------------------------------------------------------------

    def _entry_lock(self, name: str) -> threading.Lock:
        """The per-entry lock for ``name`` (caller holds ``_lock``)."""
        lock = self._entry_locks.get(name)
        if lock is None:
            lock = threading.Lock()
            self._entry_locks[name] = lock
        return lock

    def get(self, name: str) -> Graph:
        """The loaded graph (mutated entries serve their current merged
        snapshot), or :class:`CatalogError` naming what exists."""
        with self._lock:
            dynamic = self._dynamic.get(name)
            graph = self._graphs.get(name)
            entry_lock = self._entry_lock(name) if dynamic is not None else None
        if dynamic is not None:
            # The merge mutates the snapshot cache and reads the
            # overlay's insert log; serialize against mutations so a
            # concurrent apply() can't be observed at half-length.
            with entry_lock:
                return dynamic.graph()
        if graph is None:
            raise CatalogError(
                f"unknown graph {name!r}; catalog has {sorted(self.names())}"
            )
        return graph

    def epoch_of(self, name: str) -> int:
        """The entry's mutation epoch (0 while never mutated).

        The coherence token the result cache stores alongside each
        entry: a cached result computed at epoch e is stale the moment
        the graph reaches epoch e+1.
        """
        with self._lock:
            dynamic = self._dynamic.get(name)
        return 0 if dynamic is None else dynamic.epoch

    def mutate(self, name: str, *, insert=(), remove=()):
        """Apply one mutation batch to a catalog entry.

        The entry is wrapped in a
        :class:`~repro.dynamic.dynamic_graph.DynamicGraph` on first
        mutation (the pristine snapshot becomes its immutable base) and
        stays wrapped — subsequent :meth:`get` calls serve the merged
        snapshot, and :meth:`epoch_of` reports its epoch.  Mutations
        live in memory only: a restart restores the manifest's original
        spec, not the mutation history.

        Returns ``(epoch, batch)``.  Raises :class:`CatalogError` for
        unknown names; invalid batches (removing a non-existent edge)
        raise :class:`~repro.errors.GraphFormatError` with the entry
        unchanged.
        """
        from repro.dynamic import DynamicGraph

        with self._lock:
            graph = self._graphs.get(name)
            if graph is None:
                raise CatalogError(
                    f"unknown graph {name!r}; catalog has "
                    f"{sorted(self._graphs)}"
                )
            dynamic = self._dynamic.get(name)
            if dynamic is None:
                dynamic = DynamicGraph(graph)
                self._dynamic[name] = dynamic
            entry_lock = self._entry_lock(name)
        # The entry lock (not the catalog lock) covers the apply: two
        # concurrent mutates of one entry serialize, the epoch read
        # stays paired with its own batch, and other entries' queries
        # are untouched.
        with entry_lock:
            batch = dynamic.apply(insert=insert, remove=remove)
            return dynamic.epoch, batch

    def names(self) -> List[str]:
        """Catalog entry names, insertion-ordered."""
        with self._lock:
            return list(self._graphs)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._graphs

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Per-graph summary for the ``catalog`` op."""
        with self._lock:
            items = list(self._graphs.items())
            specs = dict(self._specs)
            dynamic = dict(self._dynamic)
        out = {}
        for name, g in items:
            dg = dynamic.get(name)
            if dg is None:
                entry = {
                    "n_vertices": g.n_vertices,
                    "n_edges": g.n_edges,
                    "epoch": 0,
                    "spec": specs.get(name, {}),
                }
            else:
                with self._lock:
                    entry_lock = self._entry_lock(name)
                # Under the entry lock so a mid-apply overlay can't
                # yield a torn (n_edges, epoch) pair.
                with entry_lock:
                    entry = {
                        "n_vertices": dg.n_vertices,
                        "n_edges": dg.n_edges,
                        "epoch": dg.epoch,
                        "spec": specs.get(name, {}),
                    }
            out[name] = entry
        return out
