"""The deadline-driven graph query service (``repro serve``).

The serving layer the paper's runtime work ultimately feeds: load a
graph catalog once, answer many concurrent queries, and stay honest
under overload and failure.  Pieces, each its own module:

* :mod:`~repro.service.protocol` — JSONL frames, status codes.
* :mod:`~repro.service.catalog` — graphs loaded once, manifest persisted.
* :mod:`~repro.service.admission` — bounded concurrency/queue/tenant caps.
* :mod:`~repro.service.breaker` — per-(graph, algorithm) circuit breaker.
* :mod:`~repro.service.cache` — LRU+TTL results, stale-while-error.
* :mod:`~repro.service.journal` — crash-recoverable query journal.
* :mod:`~repro.service.queries` — algorithm dispatch, wire-sized results.
* :mod:`~repro.service.observe` — per-query tracing, latency metrics,
  and the incident flight recorder (``observe=True``).
* :mod:`~repro.service.server` — the pipeline plus the TCP front end.
* :mod:`~repro.service.client` — the blocking JSONL client.

Deadlines ride on :mod:`repro.resilience.deadline` cancel tokens, which
the enactors, schedulers, and Pregel engine honor at their superstep /
bucket / quiescence boundaries — see ``docs/service.md``.
"""

from repro.service.admission import AdmissionController
from repro.service.breaker import BreakerBoard, CircuitBreaker
from repro.service.cache import ResultCache, cache_key
from repro.service.catalog import GraphCatalog, parse_graph_spec
from repro.service.client import ServiceClient
from repro.service.journal import QueryJournal
from repro.service.observe import (
    NullServiceObservability,
    ServiceObservability,
)
from repro.service.queries import execute_query
from repro.service.server import GraphQueryServer, QueryService, ServiceConfig

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "GraphCatalog",
    "GraphQueryServer",
    "NullServiceObservability",
    "QueryJournal",
    "QueryService",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceObservability",
    "cache_key",
    "execute_query",
    "parse_graph_spec",
]
