"""Machine-readable Table I: the TLAV capability matrix.

The paper's single table summarizes which models of each TLAV pillar the
abstraction captures, the abstraction element responsible, the concrete
mechanism, and the models deliberately ignored.  This module encodes
that matrix *and* binds every claimed mechanism to the module that
implements it here, so the Table I bench can both print the matrix and
assert (by import) that every claimed capability actually exists in the
codebase — the reproduction of the table is executable.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class PillarCapability:
    """One row of Table I."""

    pillar: str
    models_captured: Tuple[str, ...]
    abstraction: str
    mechanism: str
    models_ignored: Tuple[str, ...]
    #: ``(module, attribute)`` pairs proving each captured model exists.
    implementations: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)


TABLE_I: List[PillarCapability] = [
    PillarCapability(
        pillar="Timing",
        models_captured=("Bulk-Synchronous", "Asynchronous"),
        abstraction="Operators, Loop structure",
        mechanism="Execution policies",
        models_ignored=(),
        implementations=(
            ("repro.execution.policy", "par"),
            ("repro.execution.policy", "par_vector"),
            ("repro.execution.policy", "par_nosync"),
            ("repro.loop.enactor", "Enactor"),
            ("repro.loop.async_enactor", "AsyncEnactor"),
        ),
    ),
    PillarCapability(
        pillar="Communication",
        models_captured=("Shared-Memory", "Message Passing"),
        abstraction="Graph and Frontier Representations",
        mechanism="Queue-based (messages) or bitmap, sparse frontiers",
        models_ignored=("Active Messages",),
        implementations=(
            ("repro.frontier.sparse", "SparseFrontier"),
            ("repro.frontier.dense", "DenseFrontier"),
            ("repro.frontier.queue", "AsyncQueueFrontier"),
            ("repro.comm.mailbox", "MailboxRouter"),
            ("repro.comm.pregel", "PregelEngine"),
        ),
    ),
    PillarCapability(
        pillar="Execution Model",
        models_captured=("Vertex Programs", "Push vs. Pull"),
        abstraction="Operators, Frontiers and Graph Representations",
        mechanism=(
            "Vertex/edge-centric frontiers and compressed sparse "
            "row/column graph representations"
        ),
        models_ignored=(),
        implementations=(
            ("repro.operators.advance", "neighbors_expand"),
            ("repro.frontier.edge", "EdgeFrontier"),
            ("repro.graph.csr", "CSRMatrix"),
            ("repro.graph.csc", "CSCMatrix"),
            ("repro.comm.pregel", "VertexProgram"),
        ),
    ),
    PillarCapability(
        pillar="Partitioning",
        models_captured=("Heuristics (Mostly Unexplored)",),
        abstraction="Graph and Frontier Representations",
        mechanism="Random partitioning, METIS",
        models_ignored=("Streaming", "Vertex Cuts", "Dynamic Repartitioning"),
        implementations=(
            ("repro.partition.random_partition", "random_partition"),
            ("repro.partition.metis_like", "metis_like_partition"),
        ),
    ),
]


def verify_capabilities() -> List[str]:
    """Import every claimed implementation; return a list of failures
    (empty = the matrix is fully backed by code)."""
    failures = []
    for row in TABLE_I:
        for module_name, attr in row.implementations:
            try:
                module = importlib.import_module(module_name)
            except ImportError as exc:
                failures.append(f"{row.pillar}: cannot import {module_name}: {exc}")
                continue
            if not hasattr(module, attr):
                failures.append(
                    f"{row.pillar}: {module_name} has no attribute {attr!r}"
                )
    return failures


def format_table(width: int = 100) -> str:
    """Render Table I as aligned text (what the bench prints)."""
    lines = []
    header = (
        f"{'TLAV Pillar':<16} {'Models Captured':<34} "
        f"{'Mechanism':<36} Models Ignored"
    )
    lines.append(header)
    lines.append("-" * max(width, len(header)))
    for row in TABLE_I:
        captured = ", ".join(row.models_captured)
        ignored = ", ".join(row.models_ignored) or "-"
        lines.append(
            f"{row.pillar:<16} {captured:<34} {row.mechanism[:36]:<36} {ignored}"
        )
    return "\n".join(lines)
